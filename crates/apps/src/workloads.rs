//! The simulated applications as first-class [`Workload`]s, plus the
//! [`registry`] that collects them for named lookup.
//!
//! Each workload owns a [`ProcessArena`]: processes (a fresh [`SimWorld`]
//! with the native libraries loaded over it — the paper's developer-provided
//! start script) are built once and checked out per campaign case.  Returning
//! a checkout restores the process to its post-build snapshot and resets its
//! world via [`SimWorld::reset`], so every case still runs against pristine
//! application state while skipping the library-construction cost.  Each
//! pooled process closes over its *own* world, which is what lets the same
//! shared workload object drive concurrent cases; cloning a workload shares
//! its arena.
//!
//! [`SimWorld`]: crate::SimWorld
//! [`SimWorld::reset`]: crate::SimWorld::reset

use lfi_controller::{TestCase, Workload, WorkloadRegistry};
use lfi_runtime::{ExitStatus, PooledProcess, PreparedProcess, Process, ProcessArena, Signal};

use crate::apache::ab::run_ab;
use crate::apache::{ApacheServer, RequestKind};
use crate::mysql::MysqlServer;
use crate::native::{base_process, new_world};
use crate::pidgin::PidginApp;

/// Builds the arena shared by an app workload's cases: every pooled process
/// gets its own fresh world (library closures capture it), and the reset hook
/// rewinds that world whenever the process returns to the pool.
fn app_arena(with_apr: bool) -> ProcessArena {
    ProcessArena::new(move || {
        let world = new_world();
        let process = base_process(&world, with_apr);
        PreparedProcess::with_reset(process, move |_| world.lock().reset())
    })
}

/// Resolves every named function passively (no calls are dispatched, so the
/// interceptor's call ordinals are untouched) — the shared health-check
/// primitive of the app workloads.
fn resolves_all(process: &mut Process, functions: &[&str]) -> bool {
    functions.iter().all(|function| process.fnptr(function).is_ok())
}

/// The §6.1 Pidgin login sequence: resolver child + parent over a pipe,
/// with the unchecked-write bug intact.
#[derive(Debug, Clone)]
pub struct PidginLogin {
    /// Host names the login resolves (the number of resolver round trips).
    pub dns_requests: usize,
    arena: ProcessArena,
}

impl PidginLogin {
    /// The default login (4 resolutions, like [`PidginApp::new`]).
    pub fn new() -> Self {
        Self::with_dns_requests(PidginApp::new().dns_requests)
    }

    /// A login resolving `dns_requests` host names.
    pub fn with_dns_requests(dns_requests: usize) -> Self {
        Self { dns_requests, arena: app_arena(false) }
    }
}

impl Default for PidginLogin {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for PidginLogin {
    fn name(&self) -> &str {
        "pidgin-login"
    }

    fn setup(&self, _case: &TestCase) -> PooledProcess {
        self.arena.checkout()
    }

    fn health_check(&self, process: &mut Process) -> bool {
        resolves_all(process, &["pipe", "read", "write", "malloc", "free", "close"])
    }

    fn run(&self, process: &mut Process) -> ExitStatus {
        PidginApp { dns_requests: self.dns_requests }.login(process)
    }
}

/// The §6.1 MySQL regression test suite, folded to an exit status: SIGSEGV
/// when any unchecked allocation crashed a test case, success otherwise.
#[derive(Debug, Clone)]
pub struct MysqlSuite {
    /// Test cases the suite runs per campaign case.
    pub cases: usize,
    arena: ProcessArena,
}

impl MysqlSuite {
    /// The default suite length (200 cases, the §6.1 configuration).
    pub fn new() -> Self {
        Self::with_cases(200)
    }

    /// A suite running `cases` test cases per campaign case.
    pub fn with_cases(cases: usize) -> Self {
        Self { cases, arena: app_arena(false) }
    }
}

impl Default for MysqlSuite {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for MysqlSuite {
    fn name(&self) -> &str {
        "mysql-suite"
    }

    fn setup(&self, _case: &TestCase) -> PooledProcess {
        self.arena.checkout()
    }

    fn health_check(&self, process: &mut Process) -> bool {
        resolves_all(process, &["open", "socket", "read", "write", "send", "recv", "malloc", "free", "fsync"])
    }

    fn run(&self, process: &mut Process) -> ExitStatus {
        let mut server = MysqlServer::start(process);
        let report = server.run_test_suite(process, self.cases);
        if report.crashes > 0 {
            ExitStatus::Crashed(Signal::Segv)
        } else {
            ExitStatus::Exited(0)
        }
    }
}

/// The §6.4 Apache + AB load: a burst of requests of one kind, failing the
/// case when any request fails.
#[derive(Debug, Clone)]
pub struct ApacheLoad {
    name: String,
    /// The request flavour (static HTML or PHP).
    pub kind: RequestKind,
    /// Requests per campaign case.
    pub requests: u64,
    arena: ProcessArena,
}

impl ApacheLoad {
    /// A load of `requests` requests of the given kind.  The workload name
    /// is derived from the kind (`apache-static` / `apache-php`).
    pub fn new(kind: RequestKind, requests: u64) -> Self {
        let name = match kind {
            RequestKind::StaticHtml => "apache-static".to_owned(),
            RequestKind::Php => "apache-php".to_owned(),
        };
        Self { name, kind, requests, arena: app_arena(true) }
    }
}

impl Workload for ApacheLoad {
    fn name(&self) -> &str {
        &self.name
    }

    fn setup(&self, _case: &TestCase) -> PooledProcess {
        self.arena.checkout()
    }

    fn health_check(&self, process: &mut Process) -> bool {
        resolves_all(process, &["socket", "open", "read", "send", "close", "apr_palloc", "apr_file_read"])
    }

    fn run(&self, process: &mut Process) -> ExitStatus {
        let mut server = ApacheServer::start(process);
        let report = run_ab(&mut server, process, self.kind, self.requests);
        if report.completed == report.requests {
            ExitStatus::Exited(0)
        } else {
            ExitStatus::Exited(1)
        }
    }
}

/// The registry of every simulated-application workload, keyed by name:
/// `pidgin-login`, `mysql-suite`, `apache-static`, `apache-php`.
///
/// ```
/// let registry = lfi_apps::workloads::registry();
/// let pidgin = registry.get("pidgin-login").expect("registered");
/// assert_eq!(pidgin.name(), "pidgin-login");
/// ```
pub fn registry() -> WorkloadRegistry {
    let mut registry = WorkloadRegistry::new();
    registry.register(PidginLogin::new());
    registry.register(MysqlSuite::new());
    registry.register(ApacheLoad::new(RequestKind::StaticHtml, 200));
    registry.register(ApacheLoad::new(RequestKind::Php, 50));
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_controller::Campaign;
    use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};

    #[test]
    fn registry_collects_every_app_workload() {
        let registry = registry();
        assert_eq!(
            registry.names().collect::<Vec<_>>(),
            vec!["apache-php", "apache-static", "mysql-suite", "pidgin-login"]
        );
        for name in registry.names() {
            let workload = registry.get(name).expect("listed workloads resolve");
            let case = TestCase::new("health", Plan::new());
            let mut process = workload.setup(&case);
            assert!(workload.health_check(&mut process), "{name} health check on a pristine process");
        }
    }

    #[test]
    fn arena_checkouts_leave_no_state_behind() {
        let workload = PidginLogin::new();
        let case = TestCase::new("reuse", Plan::new());
        {
            let mut process = workload.setup(&case);
            assert!(workload.run(&mut process).is_success());
        }
        // The second case draws the same pooled process; the restore + world
        // reset must make it indistinguishable from a fresh build: errno is
        // clear and the first descriptor opened is 3 again.
        let mut process = workload.setup(&case);
        assert_eq!(process.state().errno(), 0, "process state rewound");
        assert_eq!(process.call("pipe", &[]).unwrap(), 3, "world descriptors rewound");
        assert_eq!(workload.arena.stats().builds, 1, "one build served both cases");
    }

    #[test]
    fn pidgin_login_workload_succeeds_clean_and_crashes_under_the_size_write_fault() {
        let baseline = Campaign::new()
            .case(TestCase::new("clean-login", Plan::new()))
            .run_workload(PidginLogin::new());
        assert!(baseline.outcomes[0].status.is_success());

        // The §6.1 fault: drop the resolver child's second write (the size
        // word) — the parent misreads the stream and g_malloc aborts.
        let fault = Plan::new().entry(PlanEntry {
            function: "write".into(),
            trigger: Trigger::on_call(2),
            action: FaultAction::return_value(-1).with_errno(4),
        });
        let report = Campaign::new()
            .case(TestCase::new("drop-size-write", fault))
            .run_workload(PidginLogin::new());
        assert_eq!(report.outcomes[0].status, ExitStatus::Crashed(Signal::Abort));
        assert!(!report.outcomes[0].replay.is_empty());
    }

    #[test]
    fn mysql_suite_workload_crashes_only_under_allocation_faults() {
        let report = Campaign::new()
            .case(TestCase::new("clean-suite", Plan::new()))
            .case(TestCase::new(
                "oom-suite",
                // Each suite case performs 4 allocations (2 inserts, 2
                // selects) and every 7th case leaves its inserts unchecked;
                // starving the 25th allocation hits case 6's first insert —
                // an unchecked call site that dereferences the null row
                // buffer (the §6.1 SIGSEGV).
                Plan::new().entry(PlanEntry {
                    function: "malloc".into(),
                    trigger: Trigger::on_call(25),
                    action: FaultAction::return_value(0).with_errno(12),
                }),
            ))
            .run_workload(MysqlSuite::with_cases(60));
        assert!(report.outcomes[0].status.is_success());
        assert_eq!(report.crashes().count(), 1);
    }

    #[test]
    fn apache_workloads_survive_clean_load_and_report_failed_requests() {
        let report = Campaign::new()
            .case(TestCase::new("clean-burst", Plan::new()))
            .case(TestCase::new(
                "failed-open",
                Plan::new().entry(PlanEntry {
                    function: "open".into(),
                    trigger: Trigger::on_call(2),
                    action: FaultAction::return_value(-1).with_errno(24),
                }),
            ))
            .run_workload(ApacheLoad::new(RequestKind::StaticHtml, 20));
        assert!(report.outcomes[0].status.is_success());
        assert_eq!(report.outcomes[1].status, ExitStatus::Exited(1), "one dropped request fails the burst");

        let php = Campaign::new()
            .case(TestCase::new("php-burst", Plan::new()))
            .run_workload(ApacheLoad::new(RequestKind::Php, 10));
        assert!(php.outcomes[0].status.is_success());
    }
}
