//! The [`ExplorationStore`]: a lossless XML snapshot of exploration state.
//!
//! Mirrors the role `ProfileStore` plays for profiling (and reuses the same
//! XML machinery from `lfi-profile`): persist it next to the profile store,
//! and a killed campaign resumes deterministically via
//! [`Explorer::resume`](crate::Explorer::resume).

use lfi_intern::Symbol;
use lfi_profile::xml::{self, XmlElement};
use lfi_profile::ProfileError;
use lfi_scenario::FaultCell;

use crate::explorer::{CrashCluster, FrontierCell, FunctionCoverage, OutcomeClass};

/// The complete serializable state of an [`Explorer`](crate::Explorer):
/// configuration, budgets, the frontier *in scheduling order*, the coverage
/// map (keyed by interned symbols in memory, by name on disk), the crash
/// cluster table, and the RNG stream position.  `to_xml`/`from_xml` are a
/// lossless round trip, so `Explorer::resume` continues with exactly the
/// remaining batch sequence of the snapshotted run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationStore {
    /// RNG seed of the exploration.
    pub seed: u64,
    /// Cells per batch.
    pub batch_size: usize,
    /// Worker threads per batch.
    pub parallelism: usize,
    /// Stop at the first crashing batch.
    pub halt_on_crash: bool,
    /// Remaining-case bound, if any (total, not remaining — `cases_executed`
    /// counts against it).
    pub case_budget: Option<u64>,
    /// Total-injection bound, if any.
    pub injection_budget: Option<u64>,
    /// Wall-clock bound in milliseconds, if any.
    pub time_budget_ms: Option<u64>,
    /// Size of the enumerated seed universe.
    pub universe: usize,
    /// Batches executed so far.
    pub batch_index: u64,
    /// Draws consumed from the RNG stream.
    pub rng_draws: u64,
    /// Whether the probe batch ran.
    pub probe_done: bool,
    /// Whether any batch produced a signal death.
    pub crash_found: bool,
    /// Cases executed so far (probe included).
    pub cases_executed: u64,
    /// Injections performed so far.
    pub injections_performed: u64,
    /// Wall-clock time spent so far, milliseconds.
    pub elapsed_ms: u64,
    /// Pending cells, in scheduling order, with priorities.
    pub frontier: Vec<FrontierCell>,
    /// Cells already run, sorted by cell key.
    pub executed: Vec<FaultCell>,
    /// Cells whose planned injection is known to never fire (executed
    /// without triggering, or depth-pruned), sorted by cell key.
    pub unreached: Vec<FaultCell>,
    /// Functions pruned wholesale, sorted by name.
    pub pruned_functions: Vec<Symbol>,
    /// Per-function coverage, sorted by name.
    pub coverage: Vec<(Symbol, FunctionCoverage)>,
    /// Crash clusters, in discovery order.
    pub clusters: Vec<CrashCluster>,
}

fn cell_element(name: &str, cell: &FaultCell) -> XmlElement {
    let mut element = XmlElement::new(name)
        .attr("function", cell.function.as_str())
        .attr("ordinal", cell.call_ordinal)
        .attr("retval", cell.retval);
    if let Some(errno) = cell.errno {
        element = element.attr("errno", errno);
    }
    element
}

fn required<'a>(element: &'a XmlElement, name: &str) -> Result<&'a str, ProfileError> {
    element
        .attribute(name)
        .ok_or_else(|| ProfileError::schema(format!("<{}> missing {name} attribute", element.name)))
}

fn parse_number<T: std::str::FromStr>(field: &str, text: &str) -> Result<T, ProfileError> {
    text.parse()
        .map_err(|_| ProfileError::InvalidNumber { field: field.into(), text: text.to_owned() })
}

fn attr_number<T: std::str::FromStr>(element: &XmlElement, name: &str) -> Result<T, ProfileError> {
    parse_number(name, required(element, name)?)
}

fn attr_number_opt<T: std::str::FromStr>(element: &XmlElement, name: &str) -> Result<Option<T>, ProfileError> {
    element.attribute(name).map(|text| parse_number(name, text)).transpose()
}

fn attr_flag(element: &XmlElement, name: &str) -> bool {
    element.attribute(name) == Some("true")
}

fn parse_cell(element: &XmlElement) -> Result<FaultCell, ProfileError> {
    Ok(FaultCell {
        function: Symbol::intern(required(element, "function")?),
        call_ordinal: attr_number(element, "ordinal")?,
        retval: attr_number(element, "retval")?,
        errno: attr_number_opt(element, "errno")?,
    })
}

impl ExplorationStore {
    /// Serializes the store as an `<exploration-store>` document.  Output is
    /// deterministic: the frontier keeps its scheduling order, every other
    /// collection is written pre-sorted by name/cell key.
    pub fn to_xml(&self) -> String {
        let mut root = XmlElement::new("exploration-store")
            .attr("seed", self.seed)
            .attr("batch-size", self.batch_size)
            .attr("parallelism", self.parallelism)
            .attr("halt-on-crash", self.halt_on_crash)
            .attr("universe", self.universe)
            .attr("batch-index", self.batch_index)
            .attr("rng-draws", self.rng_draws)
            .attr("probe-done", self.probe_done)
            .attr("crash-found", self.crash_found)
            .attr("cases-executed", self.cases_executed)
            .attr("injections-performed", self.injections_performed)
            .attr("elapsed-ms", self.elapsed_ms);

        let mut budget = XmlElement::new("budget");
        if let Some(cases) = self.case_budget {
            budget = budget.attr("cases", cases);
        }
        if let Some(injections) = self.injection_budget {
            budget = budget.attr("injections", injections);
        }
        if let Some(time_ms) = self.time_budget_ms {
            budget = budget.attr("time-ms", time_ms);
        }
        root = root.child(budget);

        let mut frontier = XmlElement::new("frontier");
        for entry in &self.frontier {
            frontier = frontier.child(cell_element("cell", &entry.cell).attr("priority", entry.priority));
        }
        root = root.child(frontier);

        let mut executed = XmlElement::new("executed");
        for cell in &self.executed {
            executed = executed.child(cell_element("cell", cell));
        }
        root = root.child(executed);

        let mut unreached = XmlElement::new("unreached");
        for cell in &self.unreached {
            unreached = unreached.child(cell_element("cell", cell));
        }
        root = root.child(unreached);

        let mut pruned = XmlElement::new("pruned");
        for symbol in &self.pruned_functions {
            pruned = pruned.child(XmlElement::new("function").attr("name", symbol.as_str()));
        }
        root = root.child(pruned);

        let mut coverage = XmlElement::new("coverage");
        for (symbol, function) in &self.coverage {
            let mut element = XmlElement::new("function")
                .attr("name", symbol.as_str())
                .attr("observed-calls", function.observed_calls);
            for (ordinal, retval, errno) in &function.triggered {
                let mut triggered = XmlElement::new("triggered").attr("ordinal", ordinal).attr("retval", retval);
                if let Some(errno) = errno {
                    triggered = triggered.attr("errno", errno);
                }
                element = element.child(triggered);
            }
            coverage = coverage.child(element);
        }
        root = root.child(coverage);

        let mut clusters = XmlElement::new("clusters");
        for cluster in &self.clusters {
            let mut element = XmlElement::new("cluster")
                .attr("function", cluster.function.as_str())
                .attr("outcome", cluster.outcome)
                .attr("count", cluster.count)
                .attr("example-case", &cluster.example_case)
                .attr("example-ordinal", cluster.example.call_ordinal)
                .attr("example-retval", cluster.example.retval);
            if let Some(errno) = cluster.example.errno {
                element = element.attr("example-errno", errno);
            }
            for frame in &cluster.stack {
                element = element.child(XmlElement::new("frame").attr("name", frame.as_str()));
            }
            clusters = clusters.child(element);
        }
        root = root.child(clusters);

        root.to_xml_string()
    }

    /// Parses a store from its XML form.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] when the document is not well-formed XML or
    /// does not follow the `<exploration-store>` schema.
    pub fn from_xml(text: &str) -> Result<ExplorationStore, ProfileError> {
        let root = xml::parse(text)?;
        if root.name != "exploration-store" {
            return Err(ProfileError::schema(format!("expected <exploration-store>, found <{}>", root.name)));
        }
        let budget = root.first_child("budget");
        let frontier = root
            .first_child("frontier")
            .map(|element| {
                element
                    .children_named("cell")
                    .map(|cell| Ok(FrontierCell { cell: parse_cell(cell)?, priority: attr_number(cell, "priority")? }))
                    .collect::<Result<Vec<_>, ProfileError>>()
            })
            .transpose()?
            .unwrap_or_default();
        let cells_of = |name: &str| -> Result<Vec<FaultCell>, ProfileError> {
            root.first_child(name)
                .map(|element| element.children_named("cell").map(parse_cell).collect())
                .transpose()
                .map(Option::unwrap_or_default)
        };
        let pruned_functions = root
            .first_child("pruned")
            .map(|element| {
                element
                    .children_named("function")
                    .map(|f| Ok(Symbol::intern(required(f, "name")?)))
                    .collect::<Result<Vec<_>, ProfileError>>()
            })
            .transpose()?
            .unwrap_or_default();
        let coverage = root
            .first_child("coverage")
            .map(|element| {
                element
                    .children_named("function")
                    .map(|f| {
                        let symbol = Symbol::intern(required(f, "name")?);
                        let mut function = FunctionCoverage {
                            observed_calls: attr_number(f, "observed-calls")?,
                            ..FunctionCoverage::default()
                        };
                        for triggered in f.children_named("triggered") {
                            function.triggered.insert((
                                attr_number(triggered, "ordinal")?,
                                attr_number(triggered, "retval")?,
                                attr_number_opt(triggered, "errno")?,
                            ));
                        }
                        Ok((symbol, function))
                    })
                    .collect::<Result<Vec<_>, ProfileError>>()
            })
            .transpose()?
            .unwrap_or_default();
        let clusters = root
            .first_child("clusters")
            .map(|element| {
                element
                    .children_named("cluster")
                    .map(|c| {
                        let function = Symbol::intern(required(c, "function")?);
                        let outcome_text = required(c, "outcome")?;
                        let outcome = OutcomeClass::parse(outcome_text)
                            .ok_or_else(|| ProfileError::schema(format!("unknown outcome class {outcome_text:?}")))?;
                        Ok(CrashCluster {
                            function,
                            stack: c
                                .children_named("frame")
                                .map(|f| Ok(Symbol::intern(required(f, "name")?)))
                                .collect::<Result<Vec<_>, ProfileError>>()?,
                            outcome,
                            count: attr_number(c, "count")?,
                            example: FaultCell {
                                function,
                                call_ordinal: attr_number(c, "example-ordinal")?,
                                retval: attr_number(c, "example-retval")?,
                                errno: attr_number_opt(c, "example-errno")?,
                            },
                            example_case: required(c, "example-case")?.to_owned(),
                        })
                    })
                    .collect::<Result<Vec<_>, ProfileError>>()
            })
            .transpose()?
            .unwrap_or_default();
        Ok(ExplorationStore {
            seed: attr_number(&root, "seed")?,
            batch_size: attr_number(&root, "batch-size")?,
            parallelism: attr_number(&root, "parallelism")?,
            halt_on_crash: attr_flag(&root, "halt-on-crash"),
            case_budget: budget.map(|b| attr_number_opt(b, "cases")).transpose()?.flatten(),
            injection_budget: budget.map(|b| attr_number_opt(b, "injections")).transpose()?.flatten(),
            time_budget_ms: budget.map(|b| attr_number_opt(b, "time-ms")).transpose()?.flatten(),
            universe: attr_number(&root, "universe")?,
            batch_index: attr_number(&root, "batch-index")?,
            rng_draws: attr_number(&root, "rng-draws")?,
            probe_done: attr_flag(&root, "probe-done"),
            crash_found: attr_flag(&root, "crash-found"),
            cases_executed: attr_number(&root, "cases-executed")?,
            injections_performed: attr_number(&root, "injections-performed")?,
            elapsed_ms: attr_number(&root, "elapsed-ms")?,
            frontier,
            executed: cells_of("executed")?,
            unreached: cells_of("unreached")?,
            pruned_functions,
            coverage,
            clusters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_runtime::Signal;

    fn cell(function: &str, ordinal: u64, retval: i64, errno: Option<i64>) -> FaultCell {
        FaultCell { function: Symbol::intern(function), call_ordinal: ordinal, retval, errno }
    }

    fn sample_store() -> ExplorationStore {
        let mut coverage = FunctionCoverage { observed_calls: 4, ..FunctionCoverage::default() };
        coverage.triggered.insert((1, -1, Some(9)));
        coverage.triggered.insert((2, -1, None));
        ExplorationStore {
            seed: 7,
            batch_size: 8,
            parallelism: 2,
            halt_on_crash: true,
            case_budget: Some(100),
            injection_budget: None,
            time_budget_ms: Some(60_000),
            universe: 42,
            batch_index: 3,
            rng_draws: 17,
            probe_done: true,
            crash_found: true,
            cases_executed: 20,
            injections_performed: 18,
            elapsed_ms: 12,
            frontier: vec![
                FrontierCell { cell: cell("read", 2, -1, Some(5)), priority: 100 },
                FrontierCell { cell: cell("write", 1, -1, None), priority: -50 },
            ],
            executed: vec![cell("close", 1, -1, Some(9))],
            unreached: vec![cell("close", 9, -1, Some(9))],
            pruned_functions: vec![Symbol::intern("getpid")],
            coverage: vec![(Symbol::intern("close"), coverage)],
            clusters: vec![CrashCluster {
                function: Symbol::intern("close"),
                stack: vec![Symbol::intern("flush_all"), Symbol::intern("close")],
                outcome: OutcomeClass::Crash(Signal::Segv),
                count: 2,
                example: cell("close", 1, -1, Some(5)),
                example_case: "b001-close-c1-r-1-e5".into(),
            }],
        }
    }

    #[test]
    fn xml_round_trip_is_lossless() {
        let store = sample_store();
        let xml = store.to_xml();
        assert!(xml.contains("<exploration-store"));
        assert!(xml.contains("rng-draws=\"17\""));
        assert!(xml.contains("crash:SIGSEGV"));
        let parsed = ExplorationStore::from_xml(&xml).unwrap();
        assert_eq!(parsed, store);
        // Round-tripping the parse again is stable.
        assert_eq!(parsed.to_xml(), xml);
    }

    #[test]
    fn optional_budgets_and_errnos_round_trip() {
        let mut store = sample_store();
        store.case_budget = None;
        store.time_budget_ms = None;
        store.injection_budget = Some(3);
        store.frontier[0].cell.errno = None;
        store.clusters[0].example.errno = None;
        store.clusters[0].outcome = OutcomeClass::Failure(3);
        store.clusters[0].stack.clear();
        store.crash_found = false;
        let parsed = ExplorationStore::from_xml(&store.to_xml()).unwrap();
        assert_eq!(parsed, store);
    }

    #[test]
    fn schema_violations_are_reported() {
        assert!(ExplorationStore::from_xml("<plan />").is_err());
        assert!(ExplorationStore::from_xml("not xml at all").is_err());
        // Missing the required counters.
        assert!(ExplorationStore::from_xml("<exploration-store />").is_err());
        // A frontier cell without a function name.
        let bad = sample_store().to_xml().replace("function=\"read\" ", "");
        assert!(ExplorationStore::from_xml(&bad).is_err());
        // A malformed number.
        let bad = sample_store().to_xml().replace("rng-draws=\"17\"", "rng-draws=\"xx\"");
        assert!(matches!(ExplorationStore::from_xml(&bad), Err(ProfileError::InvalidNumber { .. })));
        // An unknown outcome class.
        let bad = sample_store().to_xml().replace("crash:SIGSEGV", "melted");
        assert!(ExplorationStore::from_xml(&bad).is_err());
    }
}
