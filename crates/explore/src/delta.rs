//! The [`ExplorationDelta`]: what one batch changed, as a replayable record.
//!
//! A full [`ExplorationStore`] snapshot is O(state); a delta is O(what the
//! batch touched).  The explorer tracks every mutation it makes between two
//! [`Explorer::take_delta`](crate::Explorer::take_delta) calls and folds
//! them into one delta whose [`ExplorationDelta::apply`] is exact:
//!
//! ```text
//!   store(T0)  +  delta(T0→T1)  +  delta(T1→T2)  ==  store(T2)
//! ```
//!
//! byte for byte (the equation `lfi-store`'s write-ahead journal is built
//! on).  Touched entries carry *absolute* final values — a coverage record
//! replaces the function's whole entry, a frontier upsert carries the final
//! priority — so applying a delta never needs the intermediate states, and
//! re-applying the same delta is idempotent.

use std::collections::HashSet;

use lfi_intern::Symbol;
use lfi_scenario::FaultCell;

use crate::explorer::{CrashCluster, FrontierCell, FunctionCoverage};
use crate::ExplorationStore;

/// The state changes of one exploration step (or any span between two
/// [`Explorer::take_delta`](crate::Explorer::take_delta) calls).
///
/// Every collection is sorted by the process-independent cell/name key
/// (clusters keep discovery order), so a delta's serialized form is
/// byte-deterministic across runs and processes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExplorationDelta {
    /// Absolute batch counter after the span.
    pub batch_index: u64,
    /// Absolute RNG stream position after the span.
    pub rng_draws: u64,
    /// Whether the probe batch has run.
    pub probe_done: bool,
    /// Whether any batch has produced a signal death.
    pub crash_found: bool,
    /// Absolute cases-executed counter after the span.
    pub cases_executed: u64,
    /// Absolute injections-performed counter after the span.
    pub injections_performed: u64,
    /// Absolute wall-clock counter after the span, milliseconds.
    pub elapsed_ms: u64,
    /// Cells no longer pending (drained into a batch, pruned, or executed).
    pub frontier_remove: Vec<FaultCell>,
    /// Cells pending after the span whose presence or priority changed,
    /// with their absolute final priorities.
    pub frontier_upsert: Vec<FrontierCell>,
    /// Cells newly executed in the span.
    pub executed: Vec<FaultCell>,
    /// Cells newly proven unreachable in the span.
    pub unreached: Vec<FaultCell>,
    /// Functions newly pruned wholesale in the span.
    pub pruned_functions: Vec<Symbol>,
    /// Absolute replacement entries for every coverage record the span
    /// touched.
    pub coverage: Vec<(Symbol, FunctionCoverage)>,
    /// Absolute replacement entries for every cluster the span touched, in
    /// discovery order (new clusters appended in the order they appeared).
    pub clusters: Vec<CrashCluster>,
}

impl ExplorationDelta {
    /// True when the span changed nothing.
    pub fn is_empty(&self) -> bool {
        self.frontier_remove.is_empty()
            && self.frontier_upsert.is_empty()
            && self.executed.is_empty()
            && self.unreached.is_empty()
            && self.pruned_functions.is_empty()
            && self.coverage.is_empty()
            && self.clusters.is_empty()
    }

    /// Applies the delta to a snapshot, producing the post-span store.  The
    /// result is byte-identical to the [`Explorer::store`](crate::Explorer)
    /// snapshot taken at the matching
    /// [`take_delta`](crate::Explorer::take_delta) point.
    pub fn apply(&self, store: &mut ExplorationStore) {
        store.batch_index = self.batch_index;
        store.rng_draws = self.rng_draws;
        store.probe_done = self.probe_done;
        store.crash_found = self.crash_found;
        store.cases_executed = self.cases_executed;
        store.injections_performed = self.injections_performed;
        store.elapsed_ms = self.elapsed_ms;

        // The store's collections are kept in their canonical orders
        // (frontier: priority descending then cell key; everything else:
        // sorted by name/cell key), so a delta folds in with linear merge
        // passes — O(store + delta) with no re-sort of untouched entries.
        if !self.frontier_remove.is_empty() || !self.frontier_upsert.is_empty() {
            let mut dropped: HashSet<FaultCell> = self.frontier_remove.iter().copied().collect();
            dropped.extend(self.frontier_upsert.iter().map(|entry| entry.cell));
            store.frontier.retain(|entry| !dropped.contains(&entry.cell));
            if !self.frontier_upsert.is_empty() {
                let mut added = self.frontier_upsert.clone();
                added.sort_by(frontier_order);
                store.frontier = merge_sorted(std::mem::take(&mut store.frontier), added, frontier_order);
            }
        }

        merge_cells(&mut store.executed, &self.executed);
        merge_cells(&mut store.unreached, &self.unreached);
        if !self.pruned_functions.is_empty() {
            store.pruned_functions.extend(self.pruned_functions.iter().copied());
            store.pruned_functions.sort_by_key(|s| s.as_str());
            store.pruned_functions.dedup();
        }
        for (symbol, function) in &self.coverage {
            match store.coverage.binary_search_by_key(&symbol.as_str(), |(s, _)| s.as_str()) {
                Ok(index) => store.coverage[index].1 = function.clone(),
                Err(index) => store.coverage.insert(index, (*symbol, function.clone())),
            }
        }
        for cluster in &self.clusters {
            match store
                .clusters
                .iter_mut()
                .find(|c| c.function == cluster.function && c.stack == cluster.stack && c.outcome == cluster.outcome)
            {
                Some(existing) => *existing = cluster.clone(),
                None => store.clusters.push(cluster.clone()),
            }
        }
    }
}

/// The frontier's scheduling order: priority descending, then the total
/// cell key — the same order `Explorer::store` emits.
fn frontier_order(a: &FrontierCell, b: &FrontierCell) -> std::cmp::Ordering {
    b.priority.cmp(&a.priority).then_with(|| a.cell.sort_key().cmp(&b.cell.sort_key()))
}

/// Merges two lists sorted by `order` into one, in a single linear pass.
fn merge_sorted<T>(a: Vec<T>, b: Vec<T>, order: fn(&T, &T) -> std::cmp::Ordering) -> Vec<T> {
    let mut merged = Vec::with_capacity(a.len() + b.len());
    let (mut a, mut b) = (a.into_iter().peekable(), b.into_iter().peekable());
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => {
                if order(x, y) == std::cmp::Ordering::Greater {
                    merged.push(b.next().unwrap());
                } else {
                    merged.push(a.next().unwrap());
                }
            }
            (Some(_), None) => merged.push(a.next().unwrap()),
            (None, Some(_)) => merged.push(b.next().unwrap()),
            (None, None) => break,
        }
    }
    merged
}

/// Merges newly recorded cells into a sorted, deduplicated cell list with
/// one linear pass.
fn merge_cells(into: &mut Vec<FaultCell>, new: &[FaultCell]) {
    if new.is_empty() {
        return;
    }
    let mut added = new.to_vec();
    added.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    added.dedup();
    let old = std::mem::take(into);
    into.reserve(old.len() + added.len());
    let (mut old, mut added) = (old.into_iter().peekable(), added.into_iter().peekable());
    loop {
        match (old.peek(), added.peek()) {
            (Some(a), Some(b)) => match a.sort_key().cmp(&b.sort_key()) {
                std::cmp::Ordering::Less => into.push(old.next().unwrap()),
                std::cmp::Ordering::Greater => into.push(added.next().unwrap()),
                std::cmp::Ordering::Equal => {
                    into.push(old.next().unwrap());
                    added.next();
                }
            },
            (Some(_), None) => into.push(old.next().unwrap()),
            (None, Some(_)) => into.push(added.next().unwrap()),
            (None, None) => break,
        }
    }
}
