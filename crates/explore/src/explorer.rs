//! The [`Explorer`]: the generate → run → observe → refine loop.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lfi_controller::{
    Campaign, CampaignObserver, CampaignReport, CaseEvent, ExecutionPolicy, FnWorkload, TestCase, TestOutcome, Workload,
};
use lfi_intern::Symbol;
use lfi_profile::FaultProfile;
use lfi_runtime::{ExitStatus, Process, Signal};
use lfi_scenario::{FaultCell, Plan};

use crate::{ExplorationDelta, ExplorationStore};

/// Name of the injection-free probe case every exploration starts with.
pub const PROBE_CASE_NAME: &str = "probe-baseline";

/// Default number of fault cells per batch.
pub const DEFAULT_BATCH_SIZE: usize = 16;

/// Priority of a frontier cell that sits next to an observed crash.
pub const ESCALATED: i32 = 100;

/// Priority of a frontier cell whose ordinal lies beyond the call depth the
/// probe run observed for its function (kept, but visited last: an injection
/// can lengthen a retry loop, so "beyond the baseline depth" is a hint, not
/// proof of unreachability).
const DEPRIORITIZED: i32 = -50;

/// How a test-case run ended, folded to the classes crash clustering keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutcomeClass {
    /// The workload exited with status 0.
    Success,
    /// The workload exited with the given non-zero status.
    Failure(i32),
    /// The workload was killed by a signal.
    Crash(Signal),
}

impl OutcomeClass {
    /// Classifies an exit status.
    pub fn of(status: ExitStatus) -> Self {
        match status {
            ExitStatus::Exited(0) => OutcomeClass::Success,
            ExitStatus::Exited(code) => OutcomeClass::Failure(code),
            ExitStatus::Crashed(signal) => OutcomeClass::Crash(signal),
        }
    }

    /// True for signal deaths.
    pub fn is_crash(self) -> bool {
        matches!(self, OutcomeClass::Crash(_))
    }
}

impl fmt::Display for OutcomeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutcomeClass::Success => f.write_str("success"),
            OutcomeClass::Failure(code) => write!(f, "exit:{code}"),
            OutcomeClass::Crash(signal) => write!(f, "crash:{signal}"),
        }
    }
}

impl OutcomeClass {
    /// Parses the [`fmt::Display`] form back (used by the XML store).
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "success" => Some(OutcomeClass::Success),
            "crash:SIGABRT" => Some(OutcomeClass::Crash(Signal::Abort)),
            "crash:SIGSEGV" => Some(OutcomeClass::Crash(Signal::Segv)),
            _ => text.strip_prefix("exit:")?.parse().ok().map(OutcomeClass::Failure),
        }
    }
}

/// One cluster of deduplicated non-success outcomes, keyed by (injected
/// symbol, observed stack at injection time, outcome class) — the unit the
/// paper's "pinpoint bugs or weak spots" reporting works in.  Every further
/// outcome with the same key only bumps `count`.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashCluster {
    /// The function whose injected fault produced the outcome.
    pub function: Symbol,
    /// The call stack observed when the fault was injected, innermost frame
    /// last (empty when the case failed without its injection firing).
    pub stack: Vec<Symbol>,
    /// The outcome class (crash signal or exit code).
    pub outcome: OutcomeClass,
    /// How many outcomes were folded into this cluster.
    pub count: u64,
    /// The first cell that produced the cluster (its replay coordinates).
    pub example: FaultCell,
    /// The name of the first test case that produced the cluster.
    pub example_case: String,
}

impl CrashCluster {
    /// True when the cluster is a signal death (not just a non-zero exit).
    pub fn is_crash(&self) -> bool {
        self.outcome.is_crash()
    }
}

/// Per-function coverage accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FunctionCoverage {
    /// The deepest intercepted-call count observed for this function in any
    /// case so far (from the probe's dispatch call log, then per-case
    /// injector call totals).
    pub observed_calls: u64,
    /// Cells of this function whose injection actually fired, as
    /// (ordinal, retval, errno) — the *triggered* half of the coverage map.
    pub triggered: BTreeSet<(u64, i64, Option<i64>)>,
}

/// One pending cell of the exploration frontier, with its priority.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierCell {
    /// The pending fault-space cell.
    pub cell: FaultCell,
    /// Scheduling priority: higher runs earlier; ties are shuffled by the
    /// explorer's seeded RNG stream.
    pub priority: i32,
}

/// Aggregate coverage numbers for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageSummary {
    /// Cells enumerated from the seed plan.
    pub universe: usize,
    /// Cells actually run as test cases (probe excluded).
    pub executed: usize,
    /// Executed cells whose injection fired.
    pub triggered: usize,
    /// Cells whose planned injection is known to never fire: executed
    /// without triggering, or pruned because the observed call depth proves
    /// their ordinal unreachable.
    pub unreached: usize,
    /// Functions pruned wholesale because no run ever reached them.
    pub pruned_functions: usize,
    /// Cells still waiting on the frontier.
    pub frontier_remaining: usize,
}

/// The aggregate result of an exploration ([`Explorer::run`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationReport {
    /// One campaign report per executed batch (the probe is batch 0).
    pub batches: Vec<CampaignReport>,
    /// Total test cases executed, including the probe.
    pub cases_executed: u64,
    /// Total injections performed.
    pub injections_performed: u64,
    /// The deduplicated non-success clusters, in discovery order.
    pub clusters: Vec<CrashCluster>,
    /// Aggregate coverage numbers.
    pub coverage: CoverageSummary,
}

impl ExplorationReport {
    /// The clusters that are signal deaths.
    pub fn crash_clusters(&self) -> impl Iterator<Item = &CrashCluster> {
        self.clusters.iter().filter(|c| c.is_crash())
    }
}

/// Tunables of an exploration, all defaulted; see the setters on
/// [`Explorer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ExplorerConfig {
    pub seed: u64,
    pub batch_size: usize,
    pub parallelism: usize,
    pub halt_on_crash: bool,
    pub case_budget: Option<u64>,
    pub injection_budget: Option<u64>,
    pub time_budget: Option<Duration>,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            batch_size: DEFAULT_BATCH_SIZE,
            parallelism: 1,
            halt_on_crash: false,
            case_budget: None,
            injection_budget: None,
            time_budget: None,
        }
    }
}

/// Accumulates *which* parts of the exploration state mutated since the
/// last [`Explorer::take_delta`] call.  Tracking is always on — every mark
/// is an O(1) set insert bounded by what the span touched, and the tracked
/// keys are resolved to absolute values only when the delta is taken.
#[derive(Debug, Default)]
struct DeltaTracker {
    /// Cells whose frontier presence or priority may have changed.
    frontier: HashSet<FaultCell>,
    /// Cells executed in the span (each cell is consumed at most once).
    executed: Vec<FaultCell>,
    /// Cells proven unreachable in the span.
    unreached: HashSet<FaultCell>,
    /// Functions pruned wholesale in the span.
    pruned_functions: HashSet<Symbol>,
    /// Functions whose coverage entry mutated in the span.
    coverage: HashSet<Symbol>,
    /// Indices of clusters created or bumped in the span (cluster indices
    /// are stable: the table only appends).
    clusters: BTreeSet<usize>,
}

/// The coverage-guided exploration engine — see the [crate docs](crate) for
/// the loop it closes.
///
/// Batches run as streaming [`Campaign`] sessions: the explorer consumes
/// each batch's [`CaseEvent`] stream, so [`Explorer::halt_on_crash`] stops
/// scheduling *within* the batch that crashed (via the campaign's
/// stop-on-first-crash policy) and [`Explorer::time_budget`] cancels a
/// too-long batch mid-flight instead of only being checked at batch
/// boundaries.  Cells whose cases were skipped by such a halt return to the
/// frontier with their original priority, so nothing is silently lost.
///
/// # Determinism contract
///
/// Given the same seed plan and profiles, the same [`Explorer::seed`], and
/// the same configuration, the sequence of batches — case names, plans and
/// order — is identical from run to run and from process to process (cells
/// are ordered by function *name*, never by interning order).  The same
/// holds across a kill/resume boundary: an explorer rebuilt with
/// [`Explorer::resume`] from an [`ExplorationStore`] continues with exactly
/// the batch sequence the original explorer would have produced, because the
/// store carries the frontier in order, the full coverage/cluster state and
/// the RNG stream position.  With a deterministic workload the remaining
/// [`CampaignReport`]s are therefore byte-identical.  Two exceptions:
/// [`Explorer::time_budget`] depends on wall-clock time, and a mid-batch
/// [`Explorer::halt_on_crash`] stop under [`Explorer::parallelism`] `> 1`
/// skips a scheduling-dependent set of in-flight cases; the case/injection
/// budgets are exact counters and preserve the contract, and at the default
/// `parallelism(1)` the halt point is deterministic too.
pub struct Explorer {
    profiles: Vec<FaultProfile>,
    /// Size of the enumerated seed universe (for coverage reporting).
    universe: usize,
    frontier: Vec<FrontierCell>,
    executed: HashSet<FaultCell>,
    unreached: HashSet<FaultCell>,
    pruned_functions: HashSet<Symbol>,
    coverage: HashMap<Symbol, FunctionCoverage>,
    clusters: Vec<CrashCluster>,
    config: ExplorerConfig,
    rng: StdRng,
    rng_draws: u64,
    batch_index: u64,
    probe_done: bool,
    crash_found: bool,
    cases_executed: u64,
    injections_performed: u64,
    elapsed: Duration,
    /// Whether [`Explorer::consume`] runs the built-in crash-adjacent
    /// escalation heuristic (default).  A closed-loop driver disables it and
    /// re-expresses escalation as rules over [`Explorer::escalate_cell`].
    escalation_enabled: bool,
    /// Muted functions: their frontier cells are parked and no new cells of
    /// theirs are scheduled until [`Explorer::unmute`].
    muted: HashSet<Symbol>,
    /// Frontier cells parked by [`Explorer::mute`], restored verbatim (with
    /// their priorities) by [`Explorer::unmute`].
    parked: Vec<FrontierCell>,
    /// Observers attached to every batch campaign (probe included).  Not
    /// persisted in the [`ExplorationStore`] — re-attach after a resume.
    observers: Vec<Arc<dyn CampaignObserver>>,
    /// What mutated since the last [`Explorer::take_delta`].
    tracker: DeltaTracker,
}

impl Explorer {
    /// Creates an explorer over the cells of a seed plan (normally the
    /// output of a [`ScenarioGenerator`](lfi_scenario::ScenarioGenerator)
    /// over `profiles` — the [`lfi_core`-style facade] wires exactly that).
    /// The profiles stay with the explorer: crash escalation draws sibling
    /// errnos from their per-function error sets.
    ///
    /// [`lfi_core`-style facade]: crate
    pub fn new(seed_plan: &Plan, profiles: Vec<FaultProfile>) -> Self {
        let mut cells = seed_plan.compile().cells();
        cells.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        cells.dedup();
        let config = ExplorerConfig::default();
        Self {
            profiles,
            universe: cells.len(),
            frontier: cells.into_iter().map(|cell| FrontierCell { cell, priority: 0 }).collect(),
            executed: HashSet::new(),
            unreached: HashSet::new(),
            pruned_functions: HashSet::new(),
            coverage: HashMap::new(),
            clusters: Vec::new(),
            rng: StdRng::seed_from_u64(config.seed),
            rng_draws: 0,
            config,
            batch_index: 0,
            probe_done: false,
            crash_found: false,
            cases_executed: 0,
            injections_performed: 0,
            elapsed: Duration::ZERO,
            escalation_enabled: true,
            muted: HashSet::new(),
            parked: Vec::new(),
            observers: Vec::new(),
            tracker: DeltaTracker::default(),
        }
    }

    /// Rebuilds an explorer from a serialized [`ExplorationStore`], resuming
    /// exactly where the snapshot was taken: the frontier (in order),
    /// coverage, clusters, budgets, and the RNG stream advanced to its
    /// recorded position.  `profiles` must be the same profiles the original
    /// exploration ran over for escalation to propose the same siblings.
    pub fn resume(profiles: Vec<FaultProfile>, store: &ExplorationStore) -> Self {
        let mut rng = StdRng::seed_from_u64(store.seed);
        for _ in 0..store.rng_draws {
            let _: u64 = rng.gen();
        }
        Self {
            profiles,
            universe: store.universe,
            frontier: store.frontier.clone(),
            executed: store.executed.iter().copied().collect(),
            unreached: store.unreached.iter().copied().collect(),
            pruned_functions: store.pruned_functions.iter().copied().collect(),
            coverage: store.coverage.iter().cloned().collect(),
            clusters: store.clusters.clone(),
            config: ExplorerConfig {
                seed: store.seed,
                batch_size: store.batch_size,
                parallelism: store.parallelism,
                halt_on_crash: store.halt_on_crash,
                case_budget: store.case_budget,
                injection_budget: store.injection_budget,
                time_budget: store.time_budget_ms.map(Duration::from_millis),
            },
            rng,
            rng_draws: store.rng_draws,
            batch_index: store.batch_index,
            probe_done: store.probe_done,
            crash_found: store.crash_found,
            cases_executed: store.cases_executed,
            injections_performed: store.injections_performed,
            elapsed: Duration::from_millis(store.elapsed_ms),
            escalation_enabled: true,
            muted: HashSet::new(),
            parked: Vec::new(),
            observers: Vec::new(),
            tracker: DeltaTracker::default(),
        }
    }

    /// Snapshots the complete exploration state.  Serialize it with
    /// [`ExplorationStore::to_xml`] next to the profile store; a later
    /// process restores with [`ExplorationStore::from_xml`] +
    /// [`Explorer::resume`].
    pub fn store(&self) -> ExplorationStore {
        let by_name = |a: &FaultCell, b: &FaultCell| a.sort_key().cmp(&b.sort_key());
        let mut executed: Vec<FaultCell> = self.executed.iter().copied().collect();
        executed.sort_by(by_name);
        let mut unreached: Vec<FaultCell> = self.unreached.iter().copied().collect();
        unreached.sort_by(by_name);
        let mut pruned_functions: Vec<Symbol> = self.pruned_functions.iter().copied().collect();
        pruned_functions.sort_by_key(|s| s.as_str());
        let mut coverage: Vec<(Symbol, FunctionCoverage)> =
            self.coverage.iter().map(|(s, c)| (*s, c.clone())).collect();
        coverage.sort_by_key(|(s, _)| s.as_str());
        // Parked (muted) cells rejoin the frontier in the snapshot: mute
        // state is runtime-only and a resumed explorer starts with nothing
        // muted, so nothing is silently lost across a restore.  The snapshot
        // is canonicalized to scheduling order (priority descending, then
        // the total cell key): `select_batch` re-derives exactly this order
        // anyway, and a canonical order is what lets a delta-rebuilt
        // frontier match the snapshot byte for byte.
        let mut frontier: Vec<FrontierCell> = self.frontier.iter().chain(self.parked.iter()).cloned().collect();
        frontier.sort_by(|a, b| b.priority.cmp(&a.priority).then_with(|| a.cell.sort_key().cmp(&b.cell.sort_key())));
        ExplorationStore {
            seed: self.config.seed,
            batch_size: self.config.batch_size,
            parallelism: self.config.parallelism,
            halt_on_crash: self.config.halt_on_crash,
            case_budget: self.config.case_budget,
            injection_budget: self.config.injection_budget,
            time_budget_ms: self.config.time_budget.map(|d| d.as_millis() as u64),
            universe: self.universe,
            batch_index: self.batch_index,
            rng_draws: self.rng_draws,
            probe_done: self.probe_done,
            crash_found: self.crash_found,
            cases_executed: self.cases_executed,
            injections_performed: self.injections_performed,
            elapsed_ms: self.elapsed.as_millis() as u64,
            frontier,
            executed,
            unreached,
            pruned_functions,
            coverage,
            clusters: self.clusters.clone(),
        }
    }

    /// Drains everything that mutated since the last `take_delta` call (or
    /// since construction/resume) into one [`ExplorationDelta`] — the
    /// incremental-checkpoint primitive behind the `lfi-store` journal.
    ///
    /// Contract: applying the returned delta to the [`Explorer::store`]
    /// snapshot taken at the previous `take_delta` point reproduces the
    /// current [`Explorer::store`] exactly (byte-identical through either
    /// serialization), and the cost of the delta is proportional to what
    /// the span touched, not to the total state.
    pub fn take_delta(&mut self) -> ExplorationDelta {
        let tracker = std::mem::take(&mut self.tracker);
        let by_key = |a: &FaultCell, b: &FaultCell| a.sort_key().cmp(&b.sort_key());
        let pending: HashMap<FaultCell, i32> =
            self.frontier.iter().chain(self.parked.iter()).map(|f| (f.cell, f.priority)).collect();
        let mut frontier_remove = Vec::new();
        let mut frontier_upsert = Vec::new();
        for cell in tracker.frontier {
            match pending.get(&cell) {
                Some(&priority) => frontier_upsert.push(FrontierCell { cell, priority }),
                None => frontier_remove.push(cell),
            }
        }
        frontier_remove.sort_by(by_key);
        frontier_upsert.sort_by(|a, b| a.cell.sort_key().cmp(&b.cell.sort_key()));
        let mut executed = tracker.executed;
        executed.sort_by(by_key);
        executed.dedup();
        let mut unreached: Vec<FaultCell> = tracker.unreached.into_iter().collect();
        unreached.sort_by(by_key);
        let mut pruned_functions: Vec<Symbol> = tracker.pruned_functions.into_iter().collect();
        pruned_functions.sort_by_key(|s| s.as_str());
        let mut coverage: Vec<(Symbol, FunctionCoverage)> = tracker
            .coverage
            .into_iter()
            .filter_map(|symbol| self.coverage.get(&symbol).map(|c| (symbol, c.clone())))
            .collect();
        coverage.sort_by_key(|(s, _)| s.as_str());
        let clusters: Vec<CrashCluster> = tracker
            .clusters
            .into_iter()
            .filter_map(|index| self.clusters.get(index).cloned())
            .collect();
        ExplorationDelta {
            batch_index: self.batch_index,
            rng_draws: self.rng_draws,
            probe_done: self.probe_done,
            crash_found: self.crash_found,
            cases_executed: self.cases_executed,
            injections_performed: self.injections_performed,
            elapsed_ms: self.elapsed.as_millis() as u64,
            frontier_remove,
            frontier_upsert,
            executed,
            unreached,
            pruned_functions,
            coverage,
            clusters,
        }
    }

    // -- configuration ------------------------------------------------------

    /// Sets the RNG seed (part of the determinism contract; default 0).
    /// Configure before the first [`Explorer::step`] — the RNG stream
    /// restarts from the new seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self.rng = StdRng::seed_from_u64(seed);
        self.rng_draws = 0;
        self
    }

    /// Sets how many cells each batch runs (default
    /// [`DEFAULT_BATCH_SIZE`]; clamped to at least 1).
    pub fn batch_size(mut self, cells: usize) -> Self {
        self.config.batch_size = cells.max(1);
        self
    }

    /// Runs each batch's cases on up to `workers` threads (outcome order and
    /// reports are unaffected — campaign reports are slot-ordered).
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.config.parallelism = workers;
        self
    }

    /// Stops the exploration at the end of the first batch that produced a
    /// signal death (default: keep exploring).
    pub fn halt_on_crash(mut self, halt: bool) -> Self {
        self.config.halt_on_crash = halt;
        self
    }

    /// Bounds the total number of test cases (probe included).
    pub fn case_budget(mut self, cases: u64) -> Self {
        self.config.case_budget = Some(cases);
        self
    }

    /// Bounds the total number of injections, exactly: a cell's single-fault
    /// case fires its call-count trigger at most once, so batches are sized
    /// to the remaining budget and the exploration can never overshoot it.
    pub fn injection_budget(mut self, injections: u64) -> Self {
        self.config.injection_budget = Some(injections);
        self
    }

    /// Bounds the total wall-clock time spent in [`Explorer::step`].  Note
    /// this is the one knob that trades away strict determinism: where the
    /// cutoff lands depends on the machine.
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.config.time_budget = Some(budget);
        self
    }

    /// Enables or disables the built-in crash-adjacent escalation heuristic
    /// (default: enabled).  Disable it when an external policy — e.g. an
    /// `lfi-rules` engine issuing [`Explorer::escalate_cell`] — owns
    /// refinement, so crash neighborhoods are expanded exactly once.
    pub fn escalation(mut self, enabled: bool) -> Self {
        self.escalation_enabled = enabled;
        self
    }

    /// Attaches a [`CampaignObserver`] to every batch campaign this explorer
    /// runs (the probe included).  Hooks fire on the campaign worker
    /// threads, per the observer contract; at `parallelism(1)` they fire in
    /// deterministic case order.  Observers are runtime-only state: they are
    /// not captured by [`Explorer::store`], so re-attach after
    /// [`Explorer::resume`].
    pub fn attach_observer(mut self, observer: Arc<dyn CampaignObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    // -- accessors ----------------------------------------------------------

    /// Cells enumerated from the seed plan.
    pub fn universe_len(&self) -> usize {
        self.universe
    }

    /// Cells still pending on the frontier.
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }

    /// Test cases executed so far (probe included).
    pub fn cases_executed(&self) -> u64 {
        self.cases_executed
    }

    /// Injections performed so far.
    pub fn injections_performed(&self) -> u64 {
        self.injections_performed
    }

    /// Batches executed so far (the probe is batch 0).
    pub fn batch_index(&self) -> u64 {
        self.batch_index
    }

    /// True once any batch produced a signal death.
    pub fn crash_found(&self) -> bool {
        self.crash_found
    }

    /// The deduplicated non-success clusters, in discovery order.
    pub fn clusters(&self) -> &[CrashCluster] {
        &self.clusters
    }

    /// Aggregate coverage numbers so far.
    pub fn coverage_summary(&self) -> CoverageSummary {
        CoverageSummary {
            universe: self.universe,
            executed: self.executed.len(),
            triggered: self.coverage.values().map(|c| c.triggered.len()).sum(),
            unreached: self.unreached.len(),
            pruned_functions: self.pruned_functions.len(),
            frontier_remaining: self.frontier.len(),
        }
    }

    /// True when no further [`Explorer::step`] will run: the frontier is
    /// exhausted, a budget is spent, or (with
    /// [`Explorer::halt_on_crash`]) a crash was found.
    pub fn finished(&self) -> bool {
        if self.config.halt_on_crash && self.crash_found {
            return true;
        }
        if self.config.case_budget.is_some_and(|budget| self.cases_executed >= budget) {
            return true;
        }
        if self.config.injection_budget.is_some_and(|budget| self.injections_performed >= budget) {
            return true;
        }
        if self.config.time_budget.is_some_and(|budget| self.elapsed >= budget) {
            return true;
        }
        self.probe_done && self.frontier.is_empty()
    }

    // -- external control (closed loop) -------------------------------------

    /// The crash-adjacent neighborhood of a cell: the neighbouring call
    /// ordinals with the same fault, plus every sibling (retval, errno) pair
    /// the profiles list for the function at the same ordinal.  This is the
    /// candidate set the built-in escalation heuristic raises; exposed so
    /// external policies can reuse (or filter) it.
    pub fn adjacent_cells(&self, cell: FaultCell) -> Vec<FaultCell> {
        let mut candidates: Vec<FaultCell> = Vec::new();
        if cell.call_ordinal > 1 {
            candidates.push(FaultCell { call_ordinal: cell.call_ordinal - 1, ..cell });
        }
        candidates.push(FaultCell { call_ordinal: cell.call_ordinal + 1, ..cell });
        let name = cell.function.as_str();
        for profile in &self.profiles {
            let Some(function) = profile.function(name) else {
                continue;
            };
            for error in &function.error_returns {
                let errnos = error.errno_values();
                if errnos.is_empty() {
                    candidates.push(FaultCell { retval: error.retval, errno: None, ..cell });
                } else {
                    for errno in errnos {
                        candidates.push(FaultCell { retval: error.retval, errno: Some(errno), ..cell });
                    }
                }
            }
        }
        candidates
    }

    /// Raises every [`Explorer::adjacent_cells`] neighbour of `cell` onto
    /// the frontier at the escalated priority — the built-in crash heuristic
    /// as an externally drivable action (rule engines call this for
    /// `EscalateSiblings` decisions).
    pub fn escalate_cell(&mut self, cell: FaultCell) {
        self.escalate(cell);
    }

    /// Puts a single cell on the frontier at (at least) `priority`, unless
    /// it already ran or was proven unreachable.  Cells of muted functions
    /// are parked instead of scheduled.
    pub fn raise_cell(&mut self, cell: FaultCell, priority: i32) {
        self.raise(cell, priority);
    }

    /// Mutes a function: parks all of its pending frontier cells (keeping
    /// their priorities) and diverts any later
    /// [`Explorer::raise_cell`]/escalation of its cells to the parking lot,
    /// so no further case injecting into the function is scheduled until
    /// [`Explorer::unmute`].
    pub fn mute(&mut self, function: Symbol) {
        self.muted.insert(function);
        let parked = &mut self.parked;
        self.frontier.retain(|f| {
            let hit = f.cell.function == function;
            if hit {
                parked.push(*f);
            }
            !hit
        });
    }

    /// Lifts a [`Explorer::mute`], restoring the function's parked cells to
    /// the frontier with the priorities they were parked with.
    pub fn unmute(&mut self, function: Symbol) {
        self.muted.remove(&function);
        let mut restored = Vec::new();
        self.parked.retain(|f| {
            let hit = f.cell.function == function;
            if hit {
                restored.push(*f);
            }
            !hit
        });
        for cell in restored {
            self.restore(cell);
        }
    }

    /// True while `function` is muted.
    pub fn is_muted(&self, function: Symbol) -> bool {
        self.muted.contains(&function)
    }

    /// Cells currently parked by mutes.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// Shifts the priority of every pending frontier cell of `function` by
    /// `delta` (parked cells included, so a muted generator keeps its
    /// weighting when unmuted).
    pub fn reweight(&mut self, function: Symbol, delta: i32) {
        let tracker = &mut self.tracker;
        for f in self.frontier.iter_mut().chain(self.parked.iter_mut()) {
            if f.cell.function == function {
                f.priority = f.priority.saturating_add(delta);
                tracker.frontier.insert(f.cell);
            }
        }
    }

    // -- the loop -----------------------------------------------------------

    /// Runs the whole exploration: the probe batch, then frontier batches
    /// until [`Explorer::finished`].  `setup` builds a fresh process per
    /// case, `workload` exercises it — the same pair a
    /// [`Campaign::run`] takes; the pair is adapted through [`FnWorkload`]
    /// and driven by [`Explorer::run_workload`].
    pub fn run<S, W>(&mut self, setup: S, workload: W) -> ExplorationReport
    where
        S: Fn() -> Process + Send + Sync + 'static,
        W: Fn(&mut Process) -> ExitStatus + Send + Sync + 'static,
    {
        self.run_workload(&FnWorkload::shared("explorer-closures", setup, workload))
    }

    /// Runs the whole exploration over a shared [`Workload`] (e.g. one from
    /// a `WorkloadRegistry`): the probe batch, then frontier batches until
    /// [`Explorer::finished`].
    pub fn run_workload(&mut self, workload: &Arc<dyn Workload>) -> ExplorationReport {
        let mut batches = Vec::new();
        while let Some(report) = self.step_workload(workload) {
            batches.push(report);
        }
        self.report(batches)
    }

    /// Runs exactly one batch (the probe first, then one frontier batch per
    /// call) and returns its campaign report, or `None` when
    /// [`Explorer::finished`].  Snapshot [`Explorer::store`] between steps
    /// to make the exploration killable.  The closure-pair twin of
    /// [`Explorer::step_workload`].
    pub fn step<S, W>(&mut self, setup: S, workload: W) -> Option<CampaignReport>
    where
        S: Fn() -> Process + Send + Sync + 'static,
        W: Fn(&mut Process) -> ExitStatus + Send + Sync + 'static,
    {
        self.step_workload(&FnWorkload::shared("explorer-closures", setup, workload))
    }

    /// Runs exactly one batch of the exploration over a shared
    /// [`Workload`], consuming the batch campaign's event stream as it runs
    /// (mid-batch crash halts and time-budget cancellation).
    pub fn step_workload(&mut self, workload: &Arc<dyn Workload>) -> Option<CampaignReport> {
        if self.finished() {
            return None;
        }
        let started = Instant::now();
        let report = if self.probe_done {
            let cells = self.select_batch();
            if cells.is_empty() {
                return None;
            }
            self.run_batch(cells, workload, started)
        } else {
            self.run_probe(workload)
        };
        self.elapsed += started.elapsed();
        self.batch_index += 1;
        Some(report)
    }

    /// Assembles the aggregate report from per-batch campaign reports (the
    /// ones [`Explorer::step`] returned).
    pub fn report(&self, batches: Vec<CampaignReport>) -> ExplorationReport {
        ExplorationReport {
            batches,
            cases_executed: self.cases_executed,
            injections_performed: self.injections_performed,
            clusters: self.clusters.clone(),
            coverage: self.coverage_summary(),
        }
    }

    /// One tracked draw from the seeded RNG stream — the only randomness the
    /// explorer uses, so the stream position in the store is exact.
    fn rng_u64(&mut self) -> u64 {
        self.rng_draws += 1;
        self.rng.gen()
    }

    /// The injection-free probe: one baseline case with the dispatch call
    /// log captured.  Functions the workload never dispatches are pruned
    /// from the frontier wholesale; cells beyond a function's observed call
    /// depth are deprioritized (not pruned — injections can lengthen retry
    /// loops).
    fn run_probe(&mut self, workload: &Arc<dyn Workload>) -> CampaignReport {
        let mut campaign = Campaign::new().case(TestCase::new(PROBE_CASE_NAME, Plan::new())).capture_call_log(true);
        for observer in &self.observers {
            campaign = campaign.observer_arc(Arc::clone(observer));
        }
        let report = campaign.start_arc(Arc::clone(workload)).into_report();
        if let Some(outcome) = report.outcomes.first() {
            self.cases_executed += 1;
            let mut counts: HashMap<Symbol, u64> = HashMap::new();
            for &symbol in &outcome.calls {
                *counts.entry(symbol).or_insert(0) += 1;
            }
            for (&symbol, &count) in &counts {
                let coverage = self.coverage.entry(symbol).or_default();
                coverage.observed_calls = coverage.observed_calls.max(count);
                self.tracker.coverage.insert(symbol);
            }
            if outcome.calls_dropped == 0 {
                // A complete call log proves absence: prune every cell of a
                // function the workload never dispatched.  A truncated log
                // (bounded capacity overflowed) proves nothing about absent
                // functions, so wholesale pruning is skipped and those cells
                // are left for their own cases to rule out.
                let pruned = &mut self.pruned_functions;
                let tracker = &mut self.tracker;
                self.frontier.retain(|f| {
                    let reached = counts.contains_key(&f.cell.function);
                    if !reached {
                        pruned.insert(f.cell.function);
                        tracker.pruned_functions.insert(f.cell.function);
                        tracker.frontier.insert(f.cell);
                    }
                    reached
                });
                for f in &mut self.frontier {
                    if f.cell.call_ordinal > counts.get(&f.cell.function).copied().unwrap_or(0) {
                        f.priority = f.priority.min(DEPRIORITIZED);
                        self.tracker.frontier.insert(f.cell);
                    }
                }
            }
        }
        self.probe_done = true;
        report
    }

    /// Orders the frontier (priority first, then the process-independent
    /// cell key, ties within a priority class shuffled from the tracked RNG
    /// stream) and takes the next batch.  Priorities ride along so cells a
    /// halted batch never executed can return to the frontier unchanged.
    fn select_batch(&mut self) -> Vec<FrontierCell> {
        self.frontier
            .sort_by(|a, b| b.priority.cmp(&a.priority).then_with(|| a.cell.sort_key().cmp(&b.cell.sort_key())));
        let mut take = self.config.batch_size.min(self.frontier.len());
        if let Some(budget) = self.config.case_budget {
            take = take.min(budget.saturating_sub(self.cases_executed) as usize);
        }
        if let Some(budget) = self.config.injection_budget {
            // Each cell case injects at most once (a single call-count
            // trigger), so capping the batch at the remaining budget makes
            // the injection bound exact, not just checked between batches.
            take = take.min(budget.saturating_sub(self.injections_performed) as usize);
        }
        // Partial Fisher–Yates: only the `take` selected positions draw from
        // the RNG stream (each drawn uniformly from the rest of its
        // equal-priority run), so the tracked draw count grows with the
        // batch size, not with the frontier size — a resume replays at most
        // one draw per case ever scheduled.
        let mut start = 0;
        while start < self.frontier.len() && start < take {
            let priority = self.frontier[start].priority;
            let mut end = start + 1;
            while end < self.frontier.len() && self.frontier[end].priority == priority {
                end += 1;
            }
            for i in start..end.min(take) {
                let j = i + (self.rng_u64() as usize) % (end - i);
                self.frontier.swap(i, j);
            }
            start = end;
        }
        let selected: Vec<FrontierCell> = self.frontier.drain(..take).collect();
        for f in &selected {
            self.tracker.frontier.insert(f.cell);
        }
        selected
    }

    /// Runs one batch of cells as a streaming campaign session and folds
    /// every outcome back into coverage, clusters, pruning and escalation.
    ///
    /// The event stream is consumed live: with [`Explorer::halt_on_crash`]
    /// the campaign's stop-on-first-crash policy halts scheduling inside the
    /// batch, and a spent [`Explorer::time_budget`] cancels the session
    /// mid-flight (in-flight cases still finish and are folded in).  For
    /// determinism, outcomes are *folded* in case order after the stream
    /// drains — completion order under `parallelism(n)` never leaks into the
    /// coverage, cluster or frontier state.  Cells whose cases were skipped
    /// return to the frontier with their original priority.
    fn run_batch(
        &mut self,
        cells: Vec<FrontierCell>,
        workload: &Arc<dyn Workload>,
        started: Instant,
    ) -> CampaignReport {
        let cases: Vec<TestCase> = cells
            .iter()
            .map(|f| TestCase::new(self.case_name(&f.cell), Plan::new().entry(f.cell.plan_entry())))
            .collect();
        let mut policy = ExecutionPolicy::run_all();
        if self.config.halt_on_crash {
            policy = policy.stop_on_first_crash();
        }
        let mut campaign = Campaign::new().cases(cases).policy(policy).parallelism(self.config.parallelism);
        for observer in &self.observers {
            campaign = campaign.observer_arc(Arc::clone(observer));
        }
        let mut run = campaign.start_arc(Arc::clone(workload));
        let cancel = run.cancel_handle();
        let mut outcomes: Vec<(usize, TestOutcome)> = Vec::new();
        let mut skipped: Vec<usize> = Vec::new();
        for event in run.by_ref() {
            match event {
                CaseEvent::Outcome { index, outcome } => outcomes.push((index, outcome)),
                CaseEvent::Skipped { index, .. } => skipped.push(index),
                _ => {}
            }
            if let Some(budget) = self.config.time_budget {
                if self.elapsed + started.elapsed() >= budget {
                    cancel.cancel();
                }
            }
        }
        let report = run.into_report();
        outcomes.sort_by_key(|(index, _)| *index);
        for (index, outcome) in &outcomes {
            self.consume(cells[*index].cell, outcome);
        }
        skipped.sort_unstable();
        for index in skipped {
            self.restore(cells[index]);
        }
        report
    }

    /// Puts a cell a halted batch never executed back on the frontier at
    /// (at least) its original priority — unless something already ruled it
    /// out or re-raised it in the meantime.
    fn restore(&mut self, cell: FrontierCell) {
        if self.executed.contains(&cell.cell) || self.unreached.contains(&cell.cell) {
            return;
        }
        self.tracker.frontier.insert(cell.cell);
        let lane = if self.muted.contains(&cell.cell.function) {
            &mut self.parked
        } else {
            &mut self.frontier
        };
        if let Some(existing) = lane.iter_mut().find(|f| f.cell == cell.cell) {
            existing.priority = existing.priority.max(cell.priority);
            return;
        }
        lane.push(cell);
    }

    /// The stable, human-greppable name of a cell's test case.
    fn case_name(&self, cell: &FaultCell) -> String {
        let errno = cell.errno.map_or_else(|| "-".to_owned(), |e| e.to_string());
        format!(
            "b{:03}-{}-c{}-r{}-e{}",
            self.batch_index,
            cell.function.as_str(),
            cell.call_ordinal,
            cell.retval,
            errno
        )
    }

    /// Folds one case outcome into the exploration state.
    fn consume(&mut self, cell: FaultCell, outcome: &TestOutcome) {
        self.executed.insert(cell);
        self.tracker.executed.push(cell);
        self.tracker.coverage.insert(cell.function);
        self.cases_executed += 1;
        let calls = outcome.log.calls_to_sym(cell.function);
        let coverage = self.coverage.entry(cell.function).or_default();
        coverage.observed_calls = coverage.observed_calls.max(calls);
        let injected = outcome.log.injection_count() as u64;
        self.injections_performed += injected;
        if injected > 0 {
            coverage.triggered.insert((cell.call_ordinal, cell.retval, cell.errno));
        } else {
            // The planned injection never fired: the workload made only
            // `calls` calls to the function, so every pending cell of the
            // same function beyond that depth is unreachable too — prune
            // them, and *record* them as unreached so a later crash
            // escalation cannot resurrect a cell already proven dead.
            self.unreached.insert(cell);
            self.tracker.unreached.insert(cell);
            let unreached = &mut self.unreached;
            let tracker = &mut self.tracker;
            self.frontier.retain(|f| {
                let dead = f.cell.function == cell.function && f.cell.call_ordinal > calls;
                if dead {
                    unreached.insert(f.cell);
                    tracker.unreached.insert(f.cell);
                    tracker.frontier.insert(f.cell);
                }
                !dead
            });
        }
        let class = OutcomeClass::of(outcome.status);
        if class != OutcomeClass::Success {
            let stack = outcome.log.injections.first().map(|r| r.stack.clone()).unwrap_or_default();
            self.cluster(cell, &outcome.name, stack, class);
        }
        if class.is_crash() {
            self.crash_found = true;
            if self.escalation_enabled {
                self.escalate(cell);
            }
        }
    }

    /// Deduplicates a non-success outcome into the cluster table.
    fn cluster(&mut self, cell: FaultCell, case: &str, stack: Vec<Symbol>, outcome: OutcomeClass) {
        if let Some(index) = self
            .clusters
            .iter()
            .position(|c| c.function == cell.function && c.stack == stack && c.outcome == outcome)
        {
            self.clusters[index].count += 1;
            self.tracker.clusters.insert(index);
            return;
        }
        self.tracker.clusters.insert(self.clusters.len());
        self.clusters.push(CrashCluster {
            function: cell.function,
            stack,
            outcome,
            count: 1,
            example: cell,
            example_case: case.to_owned(),
        });
    }

    /// Raises the priority of every cell adjacent to a crash: the
    /// neighbouring call ordinals with the same fault, and the sibling
    /// (retval, errno) pairs the profiles list for the function, at the same
    /// ordinal.  Cells not yet on the frontier are added.
    fn escalate(&mut self, cell: FaultCell) {
        for candidate in self.adjacent_cells(cell) {
            self.raise(candidate, ESCALATED);
        }
    }

    /// Puts a cell on the frontier at (at least) the given priority, unless
    /// it already ran.  Cells of muted functions are parked instead.
    fn raise(&mut self, cell: FaultCell, priority: i32) {
        if self.executed.contains(&cell) || self.unreached.contains(&cell) {
            return;
        }
        self.tracker.frontier.insert(cell);
        let lane = if self.muted.contains(&cell.function) { &mut self.parked } else { &mut self.frontier };
        if let Some(existing) = lane.iter_mut().find(|f| f.cell == cell) {
            existing.priority = existing.priority.max(priority);
            return;
        }
        lane.push(FrontierCell { cell, priority });
    }
}

impl fmt::Debug for Explorer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Explorer")
            .field("universe", &self.universe)
            .field("frontier", &self.frontier.len())
            .field("executed", &self.executed.len())
            .field("clusters", &self.clusters.len())
            .field("batch_index", &self.batch_index)
            .field("cases_executed", &self.cases_executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_profile::{ErrorReturn, FunctionProfile};
    use lfi_runtime::NativeLibrary;
    use lfi_scenario::{Exhaustive, ScenarioGenerator};

    /// Profiles for a toy libc: `read` fails with -1 or returns a short
    /// count of 4, `malloc` fails with NULL, and `unused_fn` exists in the
    /// profile but is never called by the workload.
    fn profiles() -> Vec<FaultProfile> {
        let mut profile = FaultProfile::new("libc.so.6");
        profile.push_function(FunctionProfile {
            name: "read".into(),
            error_returns: vec![ErrorReturn::bare(-1), ErrorReturn::bare(4)],
        });
        profile.push_function(FunctionProfile { name: "malloc".into(), error_returns: vec![ErrorReturn::bare(0)] });
        profile.push_function(FunctionProfile { name: "unused_fn".into(), error_returns: vec![ErrorReturn::bare(-1)] });
        vec![profile]
    }

    fn setup() -> Process {
        let mut process = Process::new();
        process.load(
            NativeLibrary::builder("libc.so.6")
                .function("read", |ctx| ctx.arg(2))
                .function("malloc", |ctx| if ctx.arg(0) > 1 << 30 { 0 } else { 0x1000 })
                .function("unused_fn", |_| 0)
                .build(),
        );
        process
    }

    /// Read an 8-byte header, allocate accordingly; a failed read is a clean
    /// error exit, a short read provokes a huge allocation whose failure
    /// aborts.
    fn workload(process: &mut Process) -> ExitStatus {
        let header = process.call("read", &[3, 0, 8]).unwrap_or(-1);
        if header < 0 {
            return ExitStatus::Exited(1);
        }
        let size = if header == 8 { 64 } else { 1 << 40 };
        if process.call("malloc", &[size]).unwrap_or(0) == 0 {
            return ExitStatus::Crashed(Signal::Abort);
        }
        ExitStatus::Exited(0)
    }

    fn explorer() -> Explorer {
        let profiles = profiles();
        let plan = Exhaustive.generate(&profiles);
        Explorer::new(&plan, profiles).seed(11).batch_size(4)
    }

    #[test]
    fn exploration_prunes_probes_and_clusters() {
        let mut explorer = explorer();
        assert_eq!(explorer.universe_len(), 4);
        assert_eq!(explorer.frontier_len(), 4);
        let report = explorer.run(setup, workload);
        assert!(explorer.finished());

        // unused_fn was pruned by the probe and never executed.
        assert_eq!(report.coverage.pruned_functions, 1);
        // The short-read cell sits at read's call #2 and the escalated
        // malloc#2 neighbour needs a second malloc; the workload makes one
        // call to each, so both are planned-but-unreached.
        assert_eq!(report.coverage.unreached, 2);
        // read#1 (-1), read#2 (unreached), malloc#1 (NULL), plus the
        // escalated malloc#2 neighbour which also turns out unreached.
        assert_eq!(report.coverage.executed, 4);
        assert_eq!(report.coverage.triggered, 2);
        assert_eq!(report.coverage.frontier_remaining, 0);
        assert_eq!(report.cases_executed, 5, "probe + 4 cells");
        assert_eq!(report.injections_performed, 2);

        // Outcomes deduplicate into one failure cluster and one crash
        // cluster; the crash carries the malloc stack.
        assert_eq!(report.clusters.len(), 2);
        let crash = report.crash_clusters().next().expect("the NULL malloc crashes");
        assert_eq!(crash.function.as_str(), "malloc");
        assert_eq!(crash.outcome, OutcomeClass::Crash(Signal::Abort));
        assert_eq!(crash.example.retval, 0);
        assert_eq!(crash.stack.last().map(|s| s.as_str()), Some("malloc"));
        let failure = report.clusters.iter().find(|c| !c.is_crash()).unwrap();
        assert_eq!(failure.function.as_str(), "read");
        assert_eq!(failure.outcome, OutcomeClass::Failure(1));
        assert!(explorer.crash_found());
    }

    #[test]
    fn same_seed_same_batches() {
        let a = explorer().run(setup, workload);
        let b = explorer().run(setup, workload);
        assert_eq!(a, b);
        // A different seed still finds the same clusters here (the space is
        // tiny), but the report need not be batch-for-batch identical.
        let c = {
            let profiles = profiles();
            let plan = Exhaustive.generate(&profiles);
            Explorer::new(&plan, profiles).seed(99).batch_size(4).run(setup, workload)
        };
        assert_eq!(c.clusters.len(), a.clusters.len());
    }

    #[test]
    fn halt_on_crash_and_budgets_bound_the_loop() {
        let mut halted = explorer().halt_on_crash(true);
        let report = halted.run(setup, workload);
        assert!(halted.crash_found());
        assert!(halted.finished());
        assert!(report.cases_executed < 5, "halts before exhausting the frontier");
        // The halt is mid-batch (stop-on-first-crash inside the batch
        // campaign): cases the halted batch never executed return to the
        // frontier instead of vanishing, so every universe cell is either
        // executed or still pending.
        let coverage = halted.coverage_summary();
        let skipped_in_batch = report.batches.iter().map(|b| b.cases_skipped).sum::<usize>();
        assert!(skipped_in_batch > 0, "the crash halts scheduling inside its batch");
        // Restored skips plus whatever the crash escalated sit on the
        // frontier; nothing the batch skipped is lost.
        assert!(coverage.frontier_remaining >= skipped_in_batch);
        assert_eq!(coverage.executed + skipped_in_batch, 3, "every scheduled cell is accounted for");

        let mut capped = explorer().case_budget(2);
        let report = capped.run(setup, workload);
        assert_eq!(report.cases_executed, 2, "probe + one case");
        assert!(capped.finished());

        // The injection bound is exact, not just checked between batches:
        // with a budget of 1 every batch is capped at one cell, so the run
        // performs exactly one injection even though batch_size is 4.
        let mut strangled = explorer().injection_budget(1);
        let report = strangled.run(setup, workload);
        assert_eq!(report.injections_performed, 1);
        assert!(report.batches.iter().all(|b| b.outcomes.len() <= 1));
        assert!(strangled.finished());

        let mut timed = explorer().time_budget(Duration::ZERO);
        let report = timed.run(setup, workload);
        assert_eq!(report.cases_executed, 0, "a zero time budget is spent before the probe");
        assert!(timed.finished());
    }

    #[test]
    fn store_snapshot_resumes_with_identical_remaining_batches() {
        // Full run, collecting every batch report.
        let mut full = explorer();
        let mut full_reports = Vec::new();
        while let Some(report) = full.step(setup, workload) {
            full_reports.push(report);
        }

        // Killed run: two steps, then snapshot through the XML round trip.
        let mut killed = explorer();
        let mut killed_reports = Vec::new();
        for _ in 0..2 {
            killed_reports.push(killed.step(setup, workload).unwrap());
        }
        let xml = killed.store().to_xml();
        let store = crate::ExplorationStore::from_xml(&xml).unwrap();
        let mut resumed = Explorer::resume(profiles(), &store);
        while let Some(report) = resumed.step(setup, workload) {
            killed_reports.push(report);
        }

        assert_eq!(killed_reports, full_reports, "resume reproduces the identical remaining batch sequence");
        assert_eq!(resumed.coverage_summary(), full.coverage_summary());
        assert_eq!(resumed.clusters(), full.clusters());
        assert_eq!(resumed.cases_executed(), full.cases_executed());
        // And the final stores agree on everything but wall-clock time.
        let mut final_a = full.store();
        let mut final_b = resumed.store();
        final_a.elapsed_ms = 0;
        final_b.elapsed_ms = 0;
        assert_eq!(final_a, final_b);
    }

    #[test]
    fn deltas_reconstruct_the_snapshot_exactly() {
        let mut live = explorer();
        let mut shadow = live.store();
        assert!(live.take_delta().is_empty(), "nothing has mutated yet");
        while live.step(setup, workload).is_some() {
            let delta = live.take_delta();
            delta.apply(&mut shadow);
            assert_eq!(shadow, live.store(), "snapshot + deltas == live store after every step");
            // Deltas carry absolute values, so re-applying one is a no-op.
            let mut again = shadow.clone();
            delta.apply(&mut again);
            assert_eq!(again, shadow);
        }
        assert_eq!(shadow.to_xml(), live.store().to_xml(), "byte-identical through serialization");
        assert!(live.take_delta().is_empty(), "taking a delta drains the tracker");

        // External control mutations are tracked too.
        let mut controlled = explorer();
        let mut shadow = controlled.store();
        controlled.step(setup, workload).unwrap();
        let read = controlled.store().frontier[0].cell.function;
        controlled.reweight(read, 7);
        controlled.mute(read);
        controlled.unmute(read);
        controlled.take_delta().apply(&mut shadow);
        assert_eq!(shadow, controlled.store());
    }

    #[test]
    fn outcome_classes_render_and_parse() {
        for class in [
            OutcomeClass::Success,
            OutcomeClass::Failure(3),
            OutcomeClass::Crash(Signal::Abort),
            OutcomeClass::Crash(Signal::Segv),
        ] {
            assert_eq!(OutcomeClass::parse(&class.to_string()), Some(class));
        }
        assert_eq!(OutcomeClass::parse("melted"), None);
        assert_eq!(OutcomeClass::of(ExitStatus::Exited(0)), OutcomeClass::Success);
        assert_eq!(OutcomeClass::of(ExitStatus::Exited(7)), OutcomeClass::Failure(7));
        assert!(OutcomeClass::of(ExitStatus::Crashed(Signal::Segv)).is_crash());
        assert!(format!("{:?}", explorer()).contains("universe: 4"));
    }
}
