//! # lfi-explore — coverage-guided fault-space exploration
//!
//! The core problem of the paper is fault-space explosion: exhaustive
//! injection over every (function, errno, call-site) triple is intractable
//! for real libraries (§4, §6.4), so the paper prunes the space with
//! profiler knowledge and runtime feedback.  This crate closes that loop as
//! a subsystem: an [`Explorer`] drives successive
//! [`Campaign`](lfi_controller::Campaign) batches from a seed faultload,
//! consumes each [`CampaignReport`](lfi_controller::CampaignReport) plus the
//! drained injector/call logs, and decides what to inject next:
//!
//! ```text
//!            ┌────────────────────────────────────────────────────┐
//!            │                                                    │
//!            ▼                                                    │
//!   seed ScenarioGenerator ──► fault-space cells ──► frontier     │
//!                                                      │          │
//!                                                      ▼          │
//!                                          batch of TestCases     │
//!                                                      │          │
//!                                                      ▼          │
//!                                          Campaign (run/observe) │
//!                                                      │          │
//!                              coverage ◄──────────────┤          │
//!                       (triggered cells,              ▼          │
//!                        per-function calls)   crash clusters     │
//!                                                      │          │
//!                                         prune unreached cells,  │
//!                                         escalate crash          │
//!                                         neighbours ─────────────┘
//! ```
//!
//! * **Coverage** — which (function, errno, nth-call) cells were actually
//!   *triggered*, versus merely planned, computed from the per-case
//!   injection logs and per-function intercepted-call totals.
//! * **Pruning** — a probe run's dispatch call log removes cells for
//!   functions the workload never reaches; a planned cell whose injection
//!   did not fire prunes its function's deeper call ordinals.
//! * **Escalation** — cells adjacent to a crash (neighbouring call indices,
//!   sibling errnos from the profiler's per-function error sets) jump to the
//!   front of the frontier.
//! * **Budgets** — a global case/injection/time budget bounds the whole
//!   exploration.
//! * **Resumability** — the complete exploration state (frontier, coverage,
//!   cluster table, RNG stream position) round-trips through an XML
//!   [`ExplorationStore`], so a killed exploration resumes deterministically
//!   — see the determinism contract on [`Explorer`].
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delta;
mod explorer;
mod store;

pub use delta::ExplorationDelta;
pub use explorer::{
    CoverageSummary, CrashCluster, ExplorationReport, Explorer, FrontierCell, FunctionCoverage, OutcomeClass,
    DEFAULT_BATCH_SIZE, ESCALATED, PROBE_CASE_NAME,
};
pub use store::ExplorationStore;
