use std::error::Error;
use std::fmt;

/// Errors produced by the simulated process runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// No loaded library defines the requested symbol.
    UnresolvedSymbol {
        /// The symbol name.
        name: String,
    },
    /// `call_next` was invoked but there is no further definition of the
    /// symbol in the resolution chain.
    ChainExhausted {
        /// The symbol name.
        name: String,
    },
    /// Nested library calls exceeded the recursion limit.
    CallDepthExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// An indirect call went through a value that is not a function pointer
    /// obtained from [`Process::fnptr`](crate::Process::fnptr).
    InvalidFunctionPointer {
        /// The raw pointer value.
        value: u64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnresolvedSymbol { name } => write!(f, "undefined symbol: {name}"),
            RuntimeError::ChainExhausted { name } => {
                write!(f, "no next definition of {name} in the resolution chain")
            }
            RuntimeError::CallDepthExceeded { limit } => {
                write!(f, "nested library calls exceeded the depth limit of {limit}")
            }
            RuntimeError::InvalidFunctionPointer { value } => {
                write!(f, "call through invalid function pointer {value:#x}")
            }
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty() {
        assert!(RuntimeError::UnresolvedSymbol { name: "read".into() }.to_string().contains("read"));
        assert!(RuntimeError::ChainExhausted { name: "read".into() }.to_string().contains("read"));
        assert!(RuntimeError::CallDepthExceeded { limit: 3 }.to_string().contains('3'));
        assert!(RuntimeError::InvalidFunctionPointer { value: 0xbad }.to_string().contains("0xbad"));
    }
}
