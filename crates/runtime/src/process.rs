use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use lfi_intern::Symbol;

use crate::{NativeFn, NativeLibrary, RuntimeError};

/// Default bound on the recorded call log (see
/// [`ProcessState::set_call_log_capacity`]): generous enough for every
/// workload in this repo, small enough that a long overhead campaign cannot
/// grow memory without limit.
pub const DEFAULT_CALL_LOG_CAPACITY: usize = 1 << 20;

/// The mutable state of a simulated process that library behaviours can
/// observe and modify: `errno`, per-module TLS and global data, and the call
/// stack used by stack-trace triggers.
///
/// Module names and stack frames are stored as interned [`Symbol`]s; the
/// string-keyed accessors intern (writes) or look up (reads) once at the
/// call boundary, and symbol-keyed twins skip even that.
#[derive(Debug, Clone)]
pub struct ProcessState {
    errno: i64,
    tls: HashMap<(Symbol, u32), i64>,
    globals: HashMap<(Symbol, u32), i64>,
    stack: Vec<Symbol>,
    call_log: Vec<Symbol>,
    call_log_enabled: bool,
    call_log_capacity: usize,
    call_log_dropped: u64,
}

impl Default for ProcessState {
    fn default() -> Self {
        Self {
            errno: 0,
            tls: HashMap::new(),
            globals: HashMap::new(),
            stack: Vec::new(),
            call_log: Vec::new(),
            call_log_enabled: false,
            call_log_capacity: DEFAULT_CALL_LOG_CAPACITY,
            call_log_dropped: 0,
        }
    }
}

impl ProcessState {
    /// Current `errno` value.
    pub fn errno(&self) -> i64 {
        self.errno
    }

    /// Sets `errno`.
    pub fn set_errno(&mut self, value: i64) {
        self.errno = value;
    }

    /// Reads a TLS slot of a module (0 if never written).
    pub fn tls(&self, module: &str, offset: u32) -> i64 {
        Symbol::lookup(module).map_or(0, |module| self.tls_sym(module, offset))
    }

    /// Reads a TLS slot of an interned module (0 if never written).
    pub fn tls_sym(&self, module: Symbol, offset: u32) -> i64 {
        *self.tls.get(&(module, offset)).unwrap_or(&0)
    }

    /// Writes a TLS slot of a module.
    pub fn set_tls(&mut self, module: &str, offset: u32, value: i64) {
        self.set_tls_sym(Symbol::intern(module), offset, value);
    }

    /// Writes a TLS slot of an interned module — the allocation-free path
    /// fault side effects use per call.
    pub fn set_tls_sym(&mut self, module: Symbol, offset: u32, value: i64) {
        self.tls.insert((module, offset), value);
    }

    /// Reads a global slot of a module (0 if never written).
    pub fn global(&self, module: &str, offset: u32) -> i64 {
        Symbol::lookup(module).map_or(0, |module| self.global_sym(module, offset))
    }

    /// Reads a global slot of an interned module (0 if never written).
    pub fn global_sym(&self, module: Symbol, offset: u32) -> i64 {
        *self.globals.get(&(module, offset)).unwrap_or(&0)
    }

    /// Writes a global slot of a module.
    pub fn set_global(&mut self, module: &str, offset: u32, value: i64) {
        self.set_global_sym(Symbol::intern(module), offset, value);
    }

    /// Writes a global slot of an interned module.
    pub fn set_global_sym(&mut self, module: Symbol, offset: u32, value: i64) {
        self.globals.insert((module, offset), value);
    }

    /// The current call stack, innermost frame last.
    pub fn stack(&self) -> &[Symbol] {
        &self.stack
    }

    /// The current call stack resolved to names, innermost frame last.
    pub fn stack_names(&self) -> Vec<&'static str> {
        self.stack.iter().map(|frame| frame.as_str()).collect()
    }

    /// When enabled, every dispatched library call is appended to
    /// [`ProcessState::call_log`]; used by the controller to find the
    /// most-called functions for the overhead experiments.
    pub fn set_call_log_enabled(&mut self, enabled: bool) {
        self.call_log_enabled = enabled;
    }

    /// Bounds the call log at `capacity` entries.  Once full, further calls
    /// are counted in [`ProcessState::call_log_dropped`] instead of recorded,
    /// so long overhead campaigns cannot grow memory without limit; drain
    /// periodically with [`ProcessState::drain_call_log`] if you need the
    /// full stream.  The default is [`DEFAULT_CALL_LOG_CAPACITY`].
    pub fn set_call_log_capacity(&mut self, capacity: usize) {
        self.call_log_capacity = capacity;
        if self.call_log.len() > capacity {
            // Shrinking discards the newest recorded entries; count them as
            // dropped so `len() + dropped()` keeps reflecting total volume.
            self.call_log_dropped += (self.call_log.len() - capacity) as u64;
            self.call_log.truncate(capacity);
        }
    }

    /// The configured call-log bound.
    pub fn call_log_capacity(&self) -> usize {
        self.call_log_capacity
    }

    /// Number of calls dropped because the log was at capacity.
    pub fn call_log_dropped(&self) -> u64 {
        self.call_log_dropped
    }

    /// The recorded library calls, in order.
    pub fn call_log(&self) -> &[Symbol] {
        &self.call_log
    }

    /// The recorded library calls resolved to names, in order.
    pub fn call_log_names(&self) -> Vec<&'static str> {
        self.call_log.iter().map(|symbol| symbol.as_str()).collect()
    }

    /// Takes the recorded calls out of the log, resetting it (and the
    /// dropped-call counter) so recording can continue from a clean slate.
    pub fn drain_call_log(&mut self) -> Vec<Symbol> {
        self.call_log_dropped = 0;
        std::mem::take(&mut self.call_log)
    }

    /// Clears the recorded library calls.
    pub fn clear_call_log(&mut self) {
        self.call_log.clear();
        self.call_log_dropped = 0;
    }

    fn record_call(&mut self, symbol: Symbol) {
        if self.call_log.len() < self.call_log_capacity {
            self.call_log.push(symbol);
        } else {
            self.call_log_dropped += 1;
        }
    }
}

/// An opaque function-pointer value handed out by [`Process::fnptr`].
///
/// Programs (and library behaviours) can stash these and later call through
/// them with [`Process::call_ptr`] / [`CallContext::call_ptr`]; the pointer is
/// resolved back to its symbol *at call time*, so preloaded interceptors see
/// indirect calls exactly like direct ones.  This is the runtime counterpart
/// of §3.1's observation that "the LFI controller could dynamically resolve
/// indirect calls at runtime and inject the return codes corresponding to the
/// function being called".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FnPtr(u64);

impl FnPtr {
    /// The raw pointer value (useful for storing in simulated memory or logs).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Base value of simulated function-pointer handles, chosen to resemble a
/// shared-library load address.
const FNPTR_BASE: u64 = 0x7f00_0000_0000;

/// A simulated process: an ordered set of loaded libraries and the state the
/// program and its libraries share.
///
/// Symbol resolution follows load order, so a library loaded with
/// [`Process::preload`] shadows later definitions exactly as `LD_PRELOAD`
/// makes the LFI interceptor shadow the original library (§5.1); the shadowed
/// definition remains reachable through [`CallContext::call_next`].
///
/// Dispatch is keyed by interned [`Symbol`] ids end to end: the string-taking
/// [`Process::call`] looks its argument up once at the boundary (a name no
/// library ever defined resolves to nothing without growing the symbol
/// table), and [`Process::call_sym`] lets callers that resolved the symbol at
/// setup time (benches, interceptor stubs, tight workload loops) skip even
/// that hash.  Resolution chains are cached per symbol and invalidated when
/// the library list changes, so a repeated call allocates nothing for
/// resolution.
///
/// Processes are `Send + Sync + Clone`: a clone shares the (immutable)
/// library behaviours but owns its own state, so independent clones can run
/// concurrently on different threads — the contract parallel campaign
/// execution (`lfi-controller`'s `Campaign::parallelism`) builds on.
#[derive(Clone, Default)]
pub struct Process {
    libraries: Vec<Arc<NativeLibrary>>,
    state: ProcessState,
    max_call_depth: usize,
    fnptrs: Vec<Symbol>,
    /// Memoized resolution chains, rebuilt lazily after every load/preload.
    chain_cache: HashMap<Symbol, Arc<[NativeFn]>>,
    /// Memoized name→symbol resolutions, so string-keyed calls hash only a
    /// process-local map instead of taking the global table's lock.  Never
    /// needs invalidation: interning is append-only, so a hit can't go stale.
    name_cache: HashMap<String, Symbol>,
}

impl Process {
    /// Creates an empty process.
    pub fn new() -> Self {
        Self {
            libraries: Vec::new(),
            state: ProcessState::default(),
            max_call_depth: 256,
            fnptrs: Vec::new(),
            chain_cache: HashMap::new(),
            name_cache: HashMap::new(),
        }
    }

    /// Resolves a caller-supplied name to its symbol without growing the
    /// global table (a miss proves no library defines it, since every
    /// definable name was interned at library build time).  Hits are
    /// memoized per process so the global table's lock stays off the
    /// call path.
    fn lookup_name(&mut self, name: &str) -> Option<Symbol> {
        if let Some(&symbol) = self.name_cache.get(name) {
            return Some(symbol);
        }
        let symbol = Symbol::lookup(name)?;
        self.name_cache.insert(name.to_owned(), symbol);
        Some(symbol)
    }

    /// Loads a library at the *end* of the resolution order (a normal
    /// `DT_NEEDED` dependency).
    pub fn load(&mut self, library: NativeLibrary) {
        self.libraries.push(Arc::new(library));
        self.chain_cache.clear();
    }

    /// Loads a library at the *front* of the resolution order
    /// (the `LD_PRELOAD` slot used by interceptor libraries).
    pub fn preload(&mut self, library: NativeLibrary) {
        self.libraries.insert(0, Arc::new(library));
        self.chain_cache.clear();
    }

    /// The libraries currently loaded, in resolution order.
    pub fn loaded_libraries(&self) -> impl Iterator<Item = &str> {
        self.libraries.iter().map(|library| library.name())
    }

    /// Shared process state.
    pub fn state(&self) -> &ProcessState {
        &self.state
    }

    /// Mutable access to shared process state.
    pub fn state_mut(&mut self) -> &mut ProcessState {
        &mut self.state
    }

    /// Enables or disables the dispatch call log — the process-level twin of
    /// [`ProcessState::set_call_log_enabled`], used by campaign drivers that
    /// only hold the process.
    pub fn set_call_log_enabled(&mut self, enabled: bool) {
        self.state.set_call_log_enabled(enabled);
    }

    /// Takes the recorded calls out of the log, resetting it — the
    /// process-level twin of [`ProcessState::drain_call_log`].  Campaign
    /// drivers drain here after each workload run so per-case call streams
    /// never accumulate across cases.
    pub fn drain_call_log(&mut self) -> Vec<Symbol> {
        self.state.drain_call_log()
    }

    /// Pushes an application-level stack frame (e.g. `refresh_files`), so that
    /// stack-trace triggers can match application call sites.
    pub fn push_frame(&mut self, frame: impl AsRef<str>) {
        self.state.stack.push(Symbol::intern(frame.as_ref()));
    }

    /// Pops the innermost application-level stack frame.
    pub fn pop_frame(&mut self) {
        self.state.stack.pop();
    }

    /// The resolution chain for a symbol: every definition in load order,
    /// memoized per symbol (libraries are immutable between loads, so the
    /// cached chain stays valid until the next load/preload).
    fn resolution_chain(&mut self, symbol: Symbol) -> Arc<[NativeFn]> {
        if let Some(chain) = self.chain_cache.get(&symbol) {
            return Arc::clone(chain);
        }
        let chain: Arc<[NativeFn]> =
            self.libraries.iter().filter_map(|lib| lib.function_sym(symbol).cloned()).collect();
        self.chain_cache.insert(symbol, Arc::clone(&chain));
        chain
    }

    /// Calls a library function by name, dispatching to the first definition
    /// in load order (interceptors first).  The name is looked up (never
    /// interned) once here; everything downstream operates on the [`Symbol`]
    /// id.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnresolvedSymbol`] when no loaded library
    /// defines the symbol, and [`RuntimeError::CallDepthExceeded`] on runaway
    /// recursion.
    pub fn call(&mut self, symbol: &str, args: &[i64]) -> Result<i64, RuntimeError> {
        match self.lookup_name(symbol) {
            Some(symbol) => self.call_at_depth(symbol, args, 0),
            None => Err(RuntimeError::UnresolvedSymbol { name: symbol.to_owned() }),
        }
    }

    /// Calls a library function by interned symbol — the string-free
    /// entry point for callers that resolved the name at setup time.
    ///
    /// # Errors
    ///
    /// As for [`Process::call`].
    pub fn call_sym(&mut self, symbol: Symbol, args: &[i64]) -> Result<i64, RuntimeError> {
        self.call_at_depth(symbol, args, 0)
    }

    /// Resolves a symbol to an opaque function pointer — the `dlsym` analogue
    /// for programs that call libraries through pointers (callback tables,
    /// vtables, plugin registries).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnresolvedSymbol`] when no loaded library
    /// defines the symbol at resolution time.
    pub fn fnptr(&mut self, symbol: &str) -> Result<FnPtr, RuntimeError> {
        match self.lookup_name(symbol) {
            Some(symbol) => self.fnptr_sym(symbol),
            None => Err(RuntimeError::UnresolvedSymbol { name: symbol.to_owned() }),
        }
    }

    /// Resolves an interned symbol to an opaque function pointer.
    ///
    /// # Errors
    ///
    /// As for [`Process::fnptr`].
    pub fn fnptr_sym(&mut self, symbol: Symbol) -> Result<FnPtr, RuntimeError> {
        if self.resolution_chain(symbol).is_empty() {
            return Err(RuntimeError::UnresolvedSymbol { name: symbol.as_str().to_owned() });
        }
        if let Some(existing) = self.fnptrs.iter().position(|&s| s == symbol) {
            return Ok(FnPtr(FNPTR_BASE + existing as u64 * 16));
        }
        self.fnptrs.push(symbol);
        Ok(FnPtr(FNPTR_BASE + (self.fnptrs.len() as u64 - 1) * 16))
    }

    /// The symbol a function pointer refers to, if it was produced by
    /// [`Process::fnptr`].
    pub fn fnptr_symbol(&self, ptr: FnPtr) -> Option<&'static str> {
        self.fnptr_symbol_id(ptr).map(Symbol::as_str)
    }

    /// The interned symbol a function pointer refers to, if it was produced
    /// by [`Process::fnptr`].
    pub fn fnptr_symbol_id(&self, ptr: FnPtr) -> Option<Symbol> {
        let index = ptr.0.checked_sub(FNPTR_BASE)? / 16;
        self.fnptrs.get(index as usize).copied()
    }

    /// Calls through a function pointer.  The pointer is resolved back to its
    /// symbol *now*, at call time, and the call then goes through the regular
    /// resolution chain — so interceptors synthesized by the controller apply
    /// to indirect calls too, injecting the error codes of whichever function
    /// the pointer currently designates.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidFunctionPointer`] when the value was not
    /// produced by [`Process::fnptr`], plus any error the resolved call can
    /// produce.
    pub fn call_ptr(&mut self, ptr: FnPtr, args: &[i64]) -> Result<i64, RuntimeError> {
        self.call_ptr_at_depth(ptr, args, 0)
    }

    fn call_ptr_at_depth(&mut self, ptr: FnPtr, args: &[i64], depth: usize) -> Result<i64, RuntimeError> {
        let Some(symbol) = self.fnptr_symbol_id(ptr) else {
            return Err(RuntimeError::InvalidFunctionPointer { value: ptr.0 });
        };
        self.call_at_depth(symbol, args, depth)
    }

    /// Records the process's complete observable state — loaded libraries
    /// (by identity), `errno`/TLS/global data, the call stack, the call log
    /// and its configuration, and the function-pointer table — as a baseline
    /// for [`Process::restore`].
    ///
    /// Libraries are captured by reference (they are immutable once built),
    /// so a snapshot is cheap to take and to hold.
    pub fn snapshot(&self) -> ProcessSnapshot {
        ProcessSnapshot {
            libraries: self.libraries.clone(),
            state: self.state.clone(),
            max_call_depth: self.max_call_depth,
            fnptrs: self.fnptrs.clone(),
        }
    }

    /// Restores the process to a previously recorded [`ProcessSnapshot`].
    ///
    /// # Determinism contract
    ///
    /// After `restore`, the process is *observably identical* to what it was
    /// when the snapshot was taken: the same libraries resolve in the same
    /// order, every TLS/global slot, `errno`, the call stack, the call log
    /// (contents, capacity, enablement, dropped-call counter) and the
    /// function-pointer table hold the values they held then.  Internal
    /// memo caches are performance-only and never observable: the resolution
    /// chain cache is invalidated if the library list changed (and kept warm
    /// otherwise, which is what makes an arena checkout cheap), and the
    /// name→symbol cache survives because interning is append-only, so a hit
    /// can never go stale.  A campaign may therefore interleave restored and
    /// freshly built processes in any order without affecting a fixed-seed
    /// run's outcome — the contract `ProcessArena` and parallel campaign
    /// execution build on.
    ///
    /// State held *outside* the process — e.g. a simulated world captured by
    /// library closures — is not covered; pair `restore` with a workload
    /// reset hook (see `ProcessArena`) for that.
    pub fn restore(&mut self, snapshot: &ProcessSnapshot) {
        let libraries_unchanged = self.libraries.len() == snapshot.libraries.len()
            && self.libraries.iter().zip(&snapshot.libraries).all(|(a, b)| Arc::ptr_eq(a, b));
        if !libraries_unchanged {
            self.libraries = snapshot.libraries.clone();
            self.chain_cache.clear();
        }
        self.state = snapshot.state.clone();
        self.max_call_depth = snapshot.max_call_depth;
        self.fnptrs.clone_from(&snapshot.fnptrs);
    }

    fn call_at_depth(&mut self, symbol: Symbol, args: &[i64], depth: usize) -> Result<i64, RuntimeError> {
        if depth > self.max_call_depth {
            return Err(RuntimeError::CallDepthExceeded { limit: self.max_call_depth });
        }
        let chain = self.resolution_chain(symbol);
        if chain.is_empty() {
            return Err(RuntimeError::UnresolvedSymbol { name: symbol.as_str().to_owned() });
        }
        if self.state.call_log_enabled {
            self.state.record_call(symbol);
        }
        self.state.stack.push(symbol);
        let mut context = CallContext { process: self, symbol, chain, chain_index: 0, args: args.to_vec(), depth };
        let result = context.invoke_current();
        self.state.stack.pop();
        result
    }
}

/// A recorded baseline of a [`Process`], produced by [`Process::snapshot`]
/// and consumed by [`Process::restore`].  See the restore documentation for
/// the determinism contract.
#[derive(Debug, Clone)]
pub struct ProcessSnapshot {
    libraries: Vec<Arc<NativeLibrary>>,
    state: ProcessState,
    max_call_depth: usize,
    fnptrs: Vec<Symbol>,
}

impl fmt::Debug for Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Process")
            .field("libraries", &self.libraries)
            .field("state", &self.state)
            .field("max_call_depth", &self.max_call_depth)
            .field("fnptrs", &self.fnptrs)
            .field("cached_chains", &self.chain_cache.len())
            .finish()
    }
}

/// The view a library behaviour gets of the call it is servicing.
pub struct CallContext<'p> {
    process: &'p mut Process,
    symbol: Symbol,
    chain: Arc<[NativeFn]>,
    chain_index: usize,
    args: Vec<i64>,
    depth: usize,
}

impl CallContext<'_> {
    fn invoke_current(&mut self) -> Result<i64, RuntimeError> {
        let handler = self.chain[self.chain_index].clone();
        Ok(handler(self))
    }

    /// The name of the intercepted symbol.
    pub fn symbol(&self) -> &'static str {
        self.symbol.as_str()
    }

    /// The interned id of the intercepted symbol.
    pub fn symbol_id(&self) -> Symbol {
        self.symbol
    }

    /// The call arguments (possibly already modified by an interceptor).
    pub fn args(&self) -> &[i64] {
        &self.args
    }

    /// The `index`-th argument, or 0 when absent.
    pub fn arg(&self, index: usize) -> i64 {
        self.args.get(index).copied().unwrap_or(0)
    }

    /// Overwrites the `index`-th argument (extending with zeros if needed), as
    /// the scenario language's `<modify>` element requires.
    pub fn set_arg(&mut self, index: usize, value: i64) {
        if self.args.len() <= index {
            self.args.resize(index + 1, 0);
        }
        self.args[index] = value;
    }

    /// Current `errno`.
    pub fn errno(&self) -> i64 {
        self.process.state.errno()
    }

    /// Sets `errno`.
    pub fn set_errno(&mut self, value: i64) {
        self.process.state.set_errno(value);
    }

    /// Shared process state.
    pub fn state(&mut self) -> &mut ProcessState {
        &mut self.process.state
    }

    /// The current call stack, innermost frame last (includes this call).
    pub fn stack(&self) -> &[Symbol] {
        self.process.state.stack()
    }

    /// Invokes the next definition of the same symbol in the resolution chain
    /// with the (possibly modified) arguments — the `dlsym(RTLD_NEXT)` +
    /// `jmp` path of the paper's stub.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ChainExhausted`] when there is no further
    /// definition (the interceptor was loaded without the original library).
    pub fn call_next(&mut self) -> Result<i64, RuntimeError> {
        if self.chain_index + 1 >= self.chain.len() {
            return Err(RuntimeError::ChainExhausted { name: self.symbol.as_str().to_owned() });
        }
        self.chain_index += 1;
        let result = self.invoke_current();
        self.chain_index -= 1;
        result
    }

    /// Makes a fresh call to another library function (a nested call with its
    /// own resolution chain).
    ///
    /// # Errors
    ///
    /// Propagates resolution and recursion errors from the nested call.
    pub fn call(&mut self, symbol: &str, args: &[i64]) -> Result<i64, RuntimeError> {
        match self.process.lookup_name(symbol) {
            Some(symbol) => self.process.call_at_depth(symbol, args, self.depth + 1),
            None => Err(RuntimeError::UnresolvedSymbol { name: symbol.to_owned() }),
        }
    }

    /// Makes a fresh call to another library function by interned symbol.
    ///
    /// # Errors
    ///
    /// As for [`CallContext::call`].
    pub fn call_sym(&mut self, symbol: Symbol, args: &[i64]) -> Result<i64, RuntimeError> {
        self.process.call_at_depth(symbol, args, self.depth + 1)
    }

    /// Resolves a symbol to a function pointer (see [`Process::fnptr`]).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnresolvedSymbol`] when the symbol is not
    /// defined by any loaded library.
    pub fn fnptr(&mut self, symbol: &str) -> Result<FnPtr, RuntimeError> {
        self.process.fnptr(symbol)
    }

    /// Makes a fresh call through a function pointer (see
    /// [`Process::call_ptr`]).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidFunctionPointer`] for values not
    /// produced by [`Process::fnptr`], plus any error from the resolved call.
    pub fn call_ptr(&mut self, ptr: FnPtr, args: &[i64]) -> Result<i64, RuntimeError> {
        self.process.call_ptr_at_depth(ptr, args, self.depth + 1)
    }
}

impl std::fmt::Debug for CallContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CallContext")
            .field("symbol", &self.symbol)
            .field("args", &self.args)
            .field("chain_len", &self.chain.len())
            .field("chain_index", &self.chain_index)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn libc() -> NativeLibrary {
        NativeLibrary::builder("libc.so.6")
            .constant("getpid", 1234)
            .function("read", |ctx| {
                // "read" returns the requested byte count and clears errno.
                ctx.set_errno(0);
                ctx.arg(2)
            })
            .function("checked_read", |ctx| {
                // A libc function calling another libc function.
                let args = ctx.args().to_vec();
                let n = ctx.call("read", &args).unwrap_or(-1);
                if n < 0 {
                    ctx.set_errno(5);
                }
                n
            })
            .build()
    }

    #[test]
    fn plain_calls_resolve_to_the_loaded_library() {
        let mut process = Process::new();
        process.load(libc());
        assert_eq!(process.call("getpid", &[]).unwrap(), 1234);
        assert_eq!(process.call("read", &[3, 0x1000, 64]).unwrap(), 64);
        assert_eq!(process.state().errno(), 0);
        assert!(matches!(process.call("write", &[]), Err(RuntimeError::UnresolvedSymbol { .. })));
    }

    #[test]
    fn symbol_calls_match_name_calls() {
        let mut process = Process::new();
        process.load(libc());
        let read = Symbol::intern("read");
        assert_eq!(process.call_sym(read, &[3, 0, 64]).unwrap(), 64);
        assert_eq!(process.call_sym(read, &[3, 0, 64]).unwrap(), process.call("read", &[3, 0, 64]).unwrap());
        let missing = Symbol::intern("never_defined_anywhere");
        assert!(
            matches!(process.call_sym(missing, &[]), Err(RuntimeError::UnresolvedSymbol { name }) if name == "never_defined_anywhere")
        );
    }

    #[test]
    fn preloaded_interceptor_shadows_and_chains_to_the_original() {
        let mut process = Process::new();
        process.load(libc());
        let interceptor = NativeLibrary::builder("lfi_interceptor.so")
            .function("read", |ctx| {
                // Inject a short read on the first argument value 7, otherwise
                // pass through to the original definition.
                if ctx.arg(0) == 7 {
                    ctx.set_errno(4);
                    -1
                } else {
                    ctx.call_next().unwrap()
                }
            })
            .build();
        process.preload(interceptor);
        assert_eq!(process.loaded_libraries().next(), Some("lfi_interceptor.so"));
        assert_eq!(process.call("read", &[3, 0, 64]).unwrap(), 64);
        assert_eq!(process.call("read", &[7, 0, 64]).unwrap(), -1);
        assert_eq!(process.state().errno(), 4);
        // Symbols the interceptor does not define still resolve normally.
        assert_eq!(process.call("getpid", &[]).unwrap(), 1234);
    }

    #[test]
    fn chain_exhaustion_is_reported() {
        let mut process = Process::new();
        process.preload(
            NativeLibrary::builder("lonely.so")
                .function("read", |ctx| ctx.call_next().map_or(-99, |v| v))
                .build(),
        );
        assert_eq!(process.call("read", &[]).unwrap(), -99);
    }

    #[test]
    fn nested_calls_and_stack_frames() {
        let mut process = Process::new();
        process.load(libc());
        process.push_frame("refresh_files");
        // During the call the stack is [refresh_files, checked_read, read];
        // verify via an interceptor that captures it.
        let seen = std::sync::Arc::new(parking_lot::Mutex::new(Vec::<Symbol>::new()));
        let seen_clone = std::sync::Arc::clone(&seen);
        process.preload(
            NativeLibrary::builder("spy.so")
                .function("read", move |ctx| {
                    *seen_clone.lock() = ctx.stack().to_vec();
                    ctx.call_next().unwrap()
                })
                .build(),
        );
        assert_eq!(process.call("checked_read", &[1, 0, 8]).unwrap(), 8);
        process.pop_frame();
        let frames: Vec<&str> = seen.lock().iter().map(|s| s.as_str()).collect();
        assert_eq!(frames, vec!["refresh_files", "checked_read", "read"]);
        assert!(process.state().stack().is_empty());
        assert!(process.state().stack_names().is_empty());
    }

    #[test]
    fn call_log_records_dispatches_when_enabled() {
        let mut process = Process::new();
        process.load(libc());
        process.state_mut().set_call_log_enabled(true);
        process.call("getpid", &[]).unwrap();
        process.call("checked_read", &[1, 0, 4]).unwrap();
        assert_eq!(process.state().call_log_names(), vec!["getpid", "checked_read", "read"]);
        assert_eq!(process.state().call_log().len(), 3);
        process.state_mut().clear_call_log();
        assert!(process.state().call_log().is_empty());
    }

    #[test]
    fn call_log_capacity_bounds_memory_and_drain_resets() {
        let mut process = Process::new();
        process.load(libc());
        process.state_mut().set_call_log_enabled(true);
        process.state_mut().set_call_log_capacity(2);
        assert_eq!(process.state().call_log_capacity(), 2);
        for _ in 0..5 {
            process.call("getpid", &[]).unwrap();
        }
        assert_eq!(process.state().call_log().len(), 2, "log is capped");
        assert_eq!(process.state().call_log_dropped(), 3, "overflow is counted, not stored");

        let drained = process.state_mut().drain_call_log();
        assert_eq!(drained.len(), 2);
        assert_eq!(process.state().call_log_dropped(), 0);
        assert!(process.state().call_log().is_empty());
        // Recording continues after a drain.
        process.call("getpid", &[]).unwrap();
        assert_eq!(process.state().call_log().len(), 1);

        // Shrinking the capacity truncates an over-full log, and the
        // discarded entries are counted as dropped.
        process.state_mut().set_call_log_capacity(0);
        assert!(process.state().call_log().is_empty());
        assert_eq!(process.state().call_log_dropped(), 1);
    }

    #[test]
    fn argument_modification_is_visible_to_the_original() {
        let mut process = Process::new();
        process.load(libc());
        process.preload(
            NativeLibrary::builder("modify.so")
                .function("read", |ctx| {
                    let shorter = ctx.arg(2) - 10;
                    ctx.set_arg(2, shorter);
                    ctx.call_next().unwrap()
                })
                .build(),
        );
        assert_eq!(process.call("read", &[3, 0, 64]).unwrap(), 54);
    }

    #[test]
    fn runaway_recursion_is_stopped() {
        let mut process = Process::new();
        process.load(
            NativeLibrary::builder("librec.so")
                .function("spin", |ctx| ctx.call("spin", &[]).unwrap_or(-1))
                .build(),
        );
        assert_eq!(process.call("spin", &[]).unwrap(), -1);
    }

    #[test]
    fn function_pointers_resolve_at_call_time_through_the_chain() {
        let mut process = Process::new();
        process.load(libc());
        // The program obtains the pointer *before* the interceptor is loaded,
        // the way a long-lived callback table would.
        let read_ptr = process.fnptr("read").unwrap();
        let getpid_ptr = process.fnptr_sym(Symbol::intern("getpid")).unwrap();
        assert_ne!(read_ptr, getpid_ptr);
        assert_eq!(process.fnptr("read").unwrap(), read_ptr, "same symbol yields the same pointer");
        assert_eq!(process.fnptr_symbol(read_ptr), Some("read"));
        assert_eq!(process.fnptr_symbol_id(read_ptr), Some(Symbol::intern("read")));
        assert_eq!(process.call_ptr(read_ptr, &[3, 0, 64]).unwrap(), 64);

        // Loading an interceptor afterwards still affects indirect calls,
        // because resolution happens when the pointer is invoked.
        process.preload(
            NativeLibrary::builder("lfi_interceptor.so")
                .function("read", |ctx| {
                    ctx.set_errno(9);
                    -1
                })
                .build(),
        );
        assert_eq!(process.call_ptr(read_ptr, &[3, 0, 64]).unwrap(), -1);
        assert_eq!(process.state().errno(), 9);
        // A pointer to an unintercepted function is unaffected.
        assert_eq!(process.call_ptr(getpid_ptr, &[]).unwrap(), 1234);
    }

    #[test]
    fn invalid_and_unresolved_function_pointers_are_rejected() {
        let mut process = Process::new();
        process.load(libc());
        assert!(matches!(process.fnptr("no_such_symbol"), Err(RuntimeError::UnresolvedSymbol { .. })));
        let bogus = FnPtr(0xdead_beef);
        assert!(matches!(
            process.call_ptr(bogus, &[]),
            Err(RuntimeError::InvalidFunctionPointer { value: 0xdead_beef })
        ));
        assert_eq!(process.fnptr_symbol(bogus), None);
    }

    #[test]
    fn library_behaviours_can_make_indirect_calls() {
        let mut process = Process::new();
        process.load(libc());
        process.load(
            NativeLibrary::builder("libplugin.so")
                .function("invoke_callback", |ctx| {
                    // Resolve and call `read` through a pointer from inside a
                    // library behaviour (depth-tracked nested call).
                    let ptr = ctx.fnptr("read").unwrap();
                    let args = ctx.args().to_vec();
                    ctx.call_ptr(ptr, &args).unwrap_or(-1)
                })
                .build(),
        );
        assert_eq!(process.call("invoke_callback", &[1, 0, 32]).unwrap(), 32);
    }

    #[test]
    fn fnptr_raw_values_look_like_addresses_and_round_trip() {
        let mut process = Process::new();
        process.load(libc());
        let ptr = process.fnptr("getpid").unwrap();
        assert!(ptr.raw() >= 0x7f00_0000_0000);
        assert_eq!(process.fnptr_symbol(ptr), Some("getpid"));
    }

    #[test]
    fn cloned_processes_run_independently_on_their_own_threads() {
        // The contract parallel campaigns rely on: clones share library
        // behaviours but own their state, and can run on worker threads.
        let mut template = Process::new();
        template.load(libc());
        template.state_mut().set_call_log_enabled(true);
        let results: Vec<(i64, i64, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let mut process = template.clone();
                    scope.spawn(move || {
                        let value = process.call("read", &[3, 0, 10 + i]).unwrap();
                        (value, process.state().errno(), process.state().call_log().len())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, (value, errno, calls)) in results.into_iter().enumerate() {
            assert_eq!(value, 10 + i as i64);
            assert_eq!(errno, 0);
            assert_eq!(calls, 1, "each clone has its own call log");
        }
        // The template never ran anything.
        assert!(template.state().call_log().is_empty());
    }

    #[test]
    fn tls_and_global_state_are_per_module() {
        let mut process = Process::new();
        process.state_mut().set_tls("libc.so.6", 0x12fff4, 9);
        process.state_mut().set_global("libapp.so", 0x10, 3);
        assert_eq!(process.state().tls("libc.so.6", 0x12fff4), 9);
        assert_eq!(process.state().tls("libm_never_written.so", 0x12fff4), 0);
        assert_eq!(process.state().global("libapp.so", 0x10), 3);
        assert_eq!(process.state().global("libapp.so", 0x18), 0);
        // The symbol-keyed twins observe the same slots.
        let libc = Symbol::intern("libc.so.6");
        assert_eq!(process.state().tls_sym(libc, 0x12fff4), 9);
        process.state_mut().set_tls_sym(libc, 0x12fff4, 11);
        assert_eq!(process.state().tls("libc.so.6", 0x12fff4), 11);
        process.state_mut().set_global_sym(libc, 0x20, 5);
        assert_eq!(process.state().global_sym(libc, 0x20), 5);
    }
}
