//! # lfi-runtime — the simulated process the LFI controller instruments
//!
//! The real LFI controller shims a synthesized interceptor library between a
//! program and its shared libraries using `LD_PRELOAD` (Linux/Solaris) or
//! `CreateRemoteThread`/`LoadLibrary` (Windows).  This crate provides the
//! process model that substitution needs: libraries are sets of named
//! behaviours ([`NativeLibrary`]), a [`Process`] resolves symbols by load
//! order (preloads first, so interceptors shadow originals), a shadowed
//! definition stays reachable via [`CallContext::call_next`] (the
//! `dlsym(RTLD_NEXT)` path of the paper's stub), and the process carries the
//! `errno`/TLS/global state and call stack that fault side effects and
//! stack-trace triggers operate on.
//!
//! ```
//! use lfi_runtime::{NativeLibrary, Process};
//!
//! let mut process = Process::new();
//! process.load(NativeLibrary::builder("libc.so.6").constant("getpid", 42).build());
//! assert_eq!(process.call("getpid", &[]).unwrap(), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod error;
mod library;
mod process;
mod status;

pub use arena::{ArenaStats, PooledProcess, PreparedProcess, ProcessArena};
pub use error::RuntimeError;
pub use lfi_intern::{Symbol, SymbolTable};
pub use library::{NativeFn, NativeLibrary, NativeLibraryBuilder};
pub use process::{CallContext, FnPtr, Process, ProcessSnapshot, ProcessState, DEFAULT_CALL_LOG_CAPACITY};
pub use status::{ExitStatus, Signal};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Process>();
        assert_send_sync::<NativeLibrary>();
        assert_send_sync::<RuntimeError>();
        assert_send_sync::<ExitStatus>();
    }
}
