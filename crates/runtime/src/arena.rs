//! A pre-warmed pool of [`Process`]es: build once, check out per case,
//! restore on return.
//!
//! A fault-injection campaign runs thousands of short cases, and before this
//! module existed every case paid a full `Process::new()` + library build in
//! its `Workload::setup`.  A [`ProcessArena`] amortises that cost: processes
//! are built once by the arena's builder (library load done, resolution-chain
//! memos warmed by use), handed out as [`PooledProcess`] guards, and restored
//! to their recorded [`ProcessSnapshot`] baseline when the guard drops — TLS,
//! globals, `errno`, call log, call stack and function-pointer table all
//! return to their built state (see [`Process::restore`] for the determinism
//! contract).  The restore runs even when the case panicked mid-run, so a
//! process can never re-enter the pool dirty.
//!
//! State that lives *outside* the process — a simulated world captured by the
//! library closures, say — is reset by an optional per-process reset hook
//! supplied via [`PreparedProcess::with_reset`].
//!
//! ```
//! use lfi_runtime::{NativeLibrary, ProcessArena, Process};
//!
//! let arena = ProcessArena::new(|| {
//!     let mut process = Process::new();
//!     process.load(NativeLibrary::builder("libc.so.6").constant("getpid", 42).build());
//!     process
//! });
//! {
//!     let mut process = arena.checkout();
//!     assert_eq!(process.call("getpid", &[]).unwrap(), 42);
//! } // guard drops: the process is restored and returned to the pool
//! let mut again = arena.checkout();
//! assert!(again.state().call_log().is_empty());
//! assert_eq!(arena.stats().builds, 1, "the second checkout reused the first process");
//! ```

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::{Process, ProcessSnapshot};

type ResetFn = Arc<dyn Fn(&mut Process) + Send + Sync>;
type BuildFn = Box<dyn Fn() -> PreparedProcess + Send + Sync>;

/// What an arena builder produces: a ready-to-run [`Process`] plus an
/// optional reset hook for state the process itself does not own.
pub struct PreparedProcess {
    process: Process,
    reset: Option<ResetFn>,
}

impl PreparedProcess {
    /// A prepared process whose observable state is fully covered by
    /// [`Process::restore`].
    pub fn new(process: Process) -> Self {
        Self { process, reset: None }
    }

    /// A prepared process with a reset hook, run after every restore, for
    /// state the snapshot cannot see (e.g. a simulated world captured by the
    /// library closures).  The hook must leave that state exactly as the
    /// builder created it, or pooled and freshly built processes diverge.
    pub fn with_reset(process: Process, reset: impl Fn(&mut Process) + Send + Sync + 'static) -> Self {
        Self { process, reset: Some(Arc::new(reset)) }
    }
}

impl From<Process> for PreparedProcess {
    fn from(process: Process) -> Self {
        Self::new(process)
    }
}

impl fmt::Debug for PreparedProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreparedProcess")
            .field("process", &self.process)
            .field("has_reset", &self.reset.is_some())
            .finish()
    }
}

/// One pooled entry: the process together with its personal baseline and
/// reset hook (each built process may capture its own external world).
struct Entry {
    process: Process,
    snapshot: ProcessSnapshot,
    reset: Option<ResetFn>,
}

/// Point-in-time counters of an arena (see [`ProcessArena::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Processes built from scratch by the builder.
    pub builds: u64,
    /// Total checkouts served (builds + reuses).
    pub checkouts: u64,
}

impl ArenaStats {
    /// Checkouts served from the pool without building.
    pub fn reuses(&self) -> u64 {
        self.checkouts - self.builds
    }
}

struct ArenaInner {
    builder: BuildFn,
    pool: Mutex<Vec<Entry>>,
    max_pooled: usize,
    builds: AtomicU64,
    checkouts: AtomicU64,
}

/// A shared, thread-safe pool of pre-built [`Process`]es.
///
/// Clones share the same pool, so one arena can feed every worker of a
/// parallel campaign (and every lease of a fabric fleet).  Checked-out
/// processes are independent — each was built by its own builder call and
/// owns its own state — so fixed-seed parallel == serial determinism is
/// unaffected by which worker drew which pooled process.
#[derive(Clone)]
pub struct ProcessArena {
    inner: Arc<ArenaInner>,
}

impl ProcessArena {
    /// Default bound on idle pooled processes.
    pub const DEFAULT_MAX_POOLED: usize = 32;

    /// An arena building processes with `builder`.  The builder may return a
    /// bare [`Process`] or a [`PreparedProcess`] carrying a reset hook.
    pub fn new<R, F>(builder: F) -> Self
    where
        F: Fn() -> R + Send + Sync + 'static,
        R: Into<PreparedProcess>,
    {
        Self::with_max_pooled(Self::DEFAULT_MAX_POOLED, builder)
    }

    /// An arena keeping at most `max_pooled` idle processes; returns beyond
    /// the bound drop the process instead of pooling it.
    pub fn with_max_pooled<R, F>(max_pooled: usize, builder: F) -> Self
    where
        F: Fn() -> R + Send + Sync + 'static,
        R: Into<PreparedProcess>,
    {
        Self {
            inner: Arc::new(ArenaInner {
                builder: Box::new(move || builder().into()),
                pool: Mutex::new(Vec::new()),
                max_pooled,
                builds: AtomicU64::new(0),
                checkouts: AtomicU64::new(0),
            }),
        }
    }

    /// Checks a process out of the pool, building one only when the pool is
    /// empty.  The returned guard dereferences to [`Process`]; dropping it
    /// restores the process to its built state and returns it to the pool
    /// (even when the drop happens during a panic unwind).
    pub fn checkout(&self) -> PooledProcess {
        self.inner.checkouts.fetch_add(1, Ordering::Relaxed);
        let pooled = self.inner.pool.lock().unwrap_or_else(|e| e.into_inner()).pop();
        let entry = match pooled {
            Some(entry) => entry,
            None => {
                self.inner.builds.fetch_add(1, Ordering::Relaxed);
                let PreparedProcess { process, reset } = (self.inner.builder)();
                let snapshot = process.snapshot();
                Entry { process, snapshot, reset }
            }
        };
        PooledProcess {
            process: Some(entry.process),
            home: Some(Home { arena: Arc::clone(&self.inner), snapshot: entry.snapshot, reset: entry.reset }),
        }
    }

    /// Builds `count` processes ahead of time so the first `count` checkouts
    /// are pool hits.
    pub fn prewarm(&self, count: usize) {
        let warmed: Vec<PooledProcess> = (0..count).map(|_| self.checkout()).collect();
        drop(warmed);
        // Prewarm checkouts are bookkeeping, not service: keep the counters
        // reflecting real demand.
        self.inner.checkouts.fetch_sub(count as u64, Ordering::Relaxed);
    }

    /// Number of idle processes currently in the pool.
    pub fn pooled(&self) -> usize {
        self.inner.pool.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Point-in-time build/checkout counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            builds: self.inner.builds.load(Ordering::Relaxed),
            checkouts: self.inner.checkouts.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for ProcessArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("ProcessArena")
            .field("pooled", &self.pooled())
            .field("max_pooled", &self.inner.max_pooled)
            .field("builds", &stats.builds)
            .field("checkouts", &stats.checkouts)
            .finish()
    }
}

struct Home {
    arena: Arc<ArenaInner>,
    snapshot: ProcessSnapshot,
    reset: Option<ResetFn>,
}

/// A [`Process`] checked out of a [`ProcessArena`] — or a detached process
/// wrapped via `From<Process>`, so workloads without an arena satisfy the
/// same `setup` signature.
///
/// Dereferences to [`Process`].  On drop, an arena-owned process is restored
/// to its recorded baseline (restore + reset hook) and returned to the pool;
/// a detached process is simply dropped.
pub struct PooledProcess {
    process: Option<Process>,
    home: Option<Home>,
}

impl PooledProcess {
    /// Detaches the process from its arena: the process is returned as-is
    /// and will *not* be restored or pooled.
    pub fn into_inner(mut self) -> Process {
        self.home = None;
        self.process.take().expect("process present until drop")
    }

    /// True when dropping this guard returns the process to an arena.
    pub fn is_pooled(&self) -> bool {
        self.home.is_some()
    }
}

impl From<Process> for PooledProcess {
    fn from(process: Process) -> Self {
        Self { process: Some(process), home: None }
    }
}

impl Deref for PooledProcess {
    type Target = Process;

    fn deref(&self) -> &Process {
        self.process.as_ref().expect("process present until drop")
    }
}

impl DerefMut for PooledProcess {
    fn deref_mut(&mut self) -> &mut Process {
        self.process.as_mut().expect("process present until drop")
    }
}

impl fmt::Debug for PooledProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PooledProcess")
            .field("pooled", &self.is_pooled())
            .field("process", &self.process)
            .finish()
    }
}

impl Drop for PooledProcess {
    fn drop(&mut self) {
        let Some(mut process) = self.process.take() else { return };
        let Some(home) = self.home.take() else { return };
        process.restore(&home.snapshot);
        if let Some(reset) = &home.reset {
            reset(&mut process);
        }
        let mut pool = home.arena.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < home.arena.max_pooled {
            pool.push(Entry { process, snapshot: home.snapshot, reset: home.reset });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NativeLibrary;

    fn libc() -> NativeLibrary {
        NativeLibrary::builder("libc.so.6")
            .constant("getpid", 1234)
            .function("read", |ctx| {
                ctx.set_errno(0);
                ctx.arg(2)
            })
            .build()
    }

    fn arena() -> ProcessArena {
        ProcessArena::new(|| {
            let mut process = Process::new();
            process.load(libc());
            process.set_call_log_enabled(true);
            process
        })
    }

    #[test]
    fn checkout_reuses_restored_processes() {
        let arena = arena();
        for round in 0..5 {
            let mut process = arena.checkout();
            assert!(process.state().call_log().is_empty(), "round {round} saw a dirty process");
            assert_eq!(process.state().errno(), 0);
            process.call("read", &[3, 0, 64]).unwrap();
            process.state_mut().set_errno(7);
            process.state_mut().set_tls("libc.so.6", 0x10, 9);
        }
        let stats = arena.stats();
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.checkouts, 5);
        assert_eq!(stats.reuses(), 4);
    }

    #[test]
    fn preloaded_interceptors_are_unloaded_on_return() {
        let arena = arena();
        {
            let mut process = arena.checkout();
            process.preload(NativeLibrary::builder("lfi_interceptor.so").constant("getpid", -1).build());
            assert_eq!(process.call("getpid", &[]).unwrap(), -1);
        }
        let mut process = arena.checkout();
        assert_eq!(process.loaded_libraries().collect::<Vec<_>>(), vec!["libc.so.6"]);
        assert_eq!(process.call("getpid", &[]).unwrap(), 1234);
    }

    #[test]
    fn panicked_cases_still_return_clean_processes() {
        let arena = arena();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut process = arena.checkout();
            process.call("read", &[1, 0, 8]).unwrap();
            process.state_mut().set_errno(13);
            panic!("case blew up mid-run");
        }));
        assert!(result.is_err());
        let process = arena.checkout();
        assert!(process.state().call_log().is_empty());
        assert_eq!(process.state().errno(), 0);
        assert_eq!(arena.stats().builds, 1, "the panicked case's process was reused");
    }

    #[test]
    fn reset_hook_runs_on_every_return() {
        use std::sync::atomic::AtomicUsize;
        let resets = Arc::new(AtomicUsize::new(0));
        let resets_in_builder = Arc::clone(&resets);
        let arena = ProcessArena::new(move || {
            let resets = Arc::clone(&resets_in_builder);
            PreparedProcess::with_reset(Process::new(), move |_| {
                resets.fetch_add(1, Ordering::SeqCst);
            })
        });
        drop(arena.checkout());
        drop(arena.checkout());
        assert_eq!(resets.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn detached_processes_skip_the_pool() {
        let arena = arena();
        let detached: PooledProcess = Process::new().into();
        assert!(!detached.is_pooled());
        drop(detached);
        assert_eq!(arena.pooled(), 0);

        let checked_out = arena.checkout();
        assert!(checked_out.is_pooled());
        let process = checked_out.into_inner();
        drop(process);
        assert_eq!(arena.pooled(), 0, "into_inner detaches from the pool");
        assert_eq!(arena.stats().builds, 1);
    }

    #[test]
    fn max_pooled_bounds_idle_processes() {
        let arena = ProcessArena::with_max_pooled(1, Process::new);
        let a = arena.checkout();
        let b = arena.checkout();
        drop(a);
        drop(b);
        assert_eq!(arena.pooled(), 1);
    }

    #[test]
    fn prewarm_fills_the_pool_without_counting_demand() {
        let arena = arena();
        arena.prewarm(3);
        assert_eq!(arena.pooled(), 3);
        let stats = arena.stats();
        assert_eq!(stats.builds, 3);
        assert_eq!(stats.checkouts, 0);
        // Subsequent checkouts are all pool hits.
        let p = arena.checkout();
        drop(p);
        assert_eq!(arena.stats().builds, 3);
    }

    #[test]
    fn shared_clones_draw_from_one_pool() {
        let arena = arena();
        let clone = arena.clone();
        drop(arena.checkout());
        drop(clone.checkout());
        assert_eq!(arena.stats().builds, 1);
        assert_eq!(clone.stats().checkouts, 2);
    }
}
