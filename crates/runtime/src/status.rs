use std::fmt;

/// The signals the simulated applications can die with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signal {
    /// `SIGABRT` — e.g. a failed allocation assertion (the Pidgin crash in
    /// §6.1).
    Abort,
    /// `SIGSEGV` — e.g. dereferencing a null pointer returned by an injected
    /// fault (the MySQL crashes in §6.1).
    Segv,
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Signal::Abort => f.write_str("SIGABRT"),
            Signal::Segv => f.write_str("SIGSEGV"),
        }
    }
}

/// How a simulated program run ended.  The LFI controller's monitoring script
/// records exactly this: "whether it terminates normally or with an error
/// exit code" (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitStatus {
    /// The program exited with the given status code.
    Exited(i32),
    /// The program was killed by a signal.
    Crashed(Signal),
}

impl ExitStatus {
    /// True when the program exited with status 0.
    pub fn is_success(&self) -> bool {
        matches!(self, ExitStatus::Exited(0))
    }

    /// True when the program was killed by a signal.
    pub fn is_crash(&self) -> bool {
        matches!(self, ExitStatus::Crashed(_))
    }
}

impl fmt::Display for ExitStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitStatus::Exited(code) => write!(f, "exited with status {code}"),
            ExitStatus::Crashed(signal) => write!(f, "killed by {signal}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(ExitStatus::Exited(0).is_success());
        assert!(!ExitStatus::Exited(1).is_success());
        assert!(!ExitStatus::Exited(0).is_crash());
        assert!(ExitStatus::Crashed(Signal::Abort).is_crash());
        assert!(!ExitStatus::Crashed(Signal::Segv).is_success());
    }

    #[test]
    fn display() {
        assert_eq!(ExitStatus::Exited(2).to_string(), "exited with status 2");
        assert_eq!(ExitStatus::Crashed(Signal::Abort).to_string(), "killed by SIGABRT");
        assert_eq!(ExitStatus::Crashed(Signal::Segv).to_string(), "killed by SIGSEGV");
    }
}
