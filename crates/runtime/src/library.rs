use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use lfi_intern::Symbol;

use crate::CallContext;

/// The run-time behaviour of one library function, analogous to the machine
/// code the dynamic linker would map into a real process.
///
/// Behaviours receive a [`CallContext`] giving access to the call arguments,
/// the process's `errno`/TLS/global state, the call stack, and the ability to
/// invoke the next definition of the same symbol in the resolution chain
/// (`dlsym(RTLD_NEXT)` in the paper's stubs).
pub type NativeFn = Arc<dyn Fn(&mut CallContext<'_>) -> i64 + Send + Sync>;

/// A loadable library: a name plus the behaviours of the symbols it defines.
///
/// Interceptor libraries synthesized by the LFI controller and the "original"
/// libraries from the corpus are both [`NativeLibrary`] values; interposition
/// is purely a matter of load order (see [`crate::Process::preload`]).
///
/// Symbol names are interned into the shared [`lfi_intern`] table when the
/// library is built, so per-call dispatch looks behaviours up by [`Symbol`]
/// id and never hashes a string.
#[derive(Clone)]
pub struct NativeLibrary {
    name: String,
    functions: HashMap<Symbol, NativeFn>,
}

impl NativeLibrary {
    /// Starts building a library with the given name.
    pub fn builder(name: impl Into<String>) -> NativeLibraryBuilder {
        NativeLibraryBuilder { library: NativeLibrary { name: name.into(), functions: HashMap::new() } }
    }

    /// The library's file name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The behaviour registered for `symbol`, if any.
    pub fn function(&self, symbol: &str) -> Option<&NativeFn> {
        self.functions.get(&Symbol::lookup(symbol)?)
    }

    /// The behaviour registered for an interned symbol, if any — the
    /// string-free lookup the per-call dispatch path uses.
    pub fn function_sym(&self, symbol: Symbol) -> Option<&NativeFn> {
        self.functions.get(&symbol)
    }

    /// Names of the symbols this library defines, in arbitrary order.
    pub fn symbols(&self) -> impl Iterator<Item = &str> {
        self.functions.keys().map(|symbol| symbol.as_str())
    }

    /// Interned ids of the symbols this library defines, in arbitrary order.
    pub fn symbol_ids(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.functions.keys().copied()
    }

    /// Number of defined symbols.
    pub fn symbol_count(&self) -> usize {
        self.functions.len()
    }
}

impl fmt::Debug for NativeLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeLibrary")
            .field("name", &self.name)
            .field("symbols", &self.functions.len())
            .finish()
    }
}

/// Builder for [`NativeLibrary`].
pub struct NativeLibraryBuilder {
    library: NativeLibrary,
}

impl NativeLibraryBuilder {
    /// Registers a behaviour for a symbol (interning its name).  Registering
    /// the same symbol twice replaces the earlier behaviour.
    pub fn function<F>(self, symbol: impl AsRef<str>, behaviour: F) -> Self
    where
        F: Fn(&mut CallContext<'_>) -> i64 + Send + Sync + 'static,
    {
        self.function_sym(Symbol::intern(symbol.as_ref()), behaviour)
    }

    /// Registers a behaviour for an already-interned symbol.
    pub fn function_sym<F>(mut self, symbol: Symbol, behaviour: F) -> Self
    where
        F: Fn(&mut CallContext<'_>) -> i64 + Send + Sync + 'static,
    {
        self.library.functions.insert(symbol, Arc::new(behaviour));
        self
    }

    /// Registers a behaviour that ignores its context and returns a constant.
    pub fn constant(self, symbol: impl AsRef<str>, value: i64) -> Self {
        self.function(symbol.as_ref(), move |_| value)
    }

    /// Finishes the library.
    pub fn build(self) -> NativeLibrary {
        self.library
    }
}

impl fmt::Debug for NativeLibraryBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeLibraryBuilder").field("library", &self.library).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_registers_and_replaces_symbols() {
        let lib = NativeLibrary::builder("libc.so.6")
            .constant("getpid", 1234)
            .constant("getpid", 4321)
            .function("read", |ctx| ctx.arg(2))
            .build();
        assert_eq!(lib.name(), "libc.so.6");
        assert_eq!(lib.symbol_count(), 2);
        assert!(lib.function("read").is_some());
        assert!(lib.function("write_never_interned_here").is_none());
        assert!(lib.function_sym(Symbol::intern("read")).is_some());
        let mut symbols: Vec<&str> = lib.symbols().collect();
        symbols.sort_unstable();
        assert_eq!(symbols, vec!["getpid", "read"]);
        assert_eq!(lib.symbol_ids().count(), 2);
        assert!(format!("{lib:?}").contains("libc.so.6"));
    }
}
