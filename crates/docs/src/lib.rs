//! # lfi-docs — structured library documentation, its parser, and combined profiles
//!
//! The LFI profiler works from binaries precisely because documentation is an
//! unreliable oracle (§3.1): man pages can be vague, defer to other pages, or
//! omit error codes entirely.  The paper nevertheless uses documentation in
//! two ways — as the scalable ground truth for the Table 2 accuracy
//! evaluation ("we wrote documentation parsers for each of the measured
//! libraries", §6.3) and as an optional *additional* source that "can be
//! combined with LFI's static analysis to yield higher accuracy".
//!
//! This crate provides all three pieces:
//!
//! * [`ManPage`] / [`DocumentationSet`] — a structured reference-manual model
//!   and renderer, including the imperfections real manuals have
//!   ([`ReturnValueStyle::Vague`], [`ReturnValueStyle::CrossReference`],
//!   spurious values);
//! * [`DocParser`] — a parser that recovers error return values, errno
//!   constants and cross-references from rendered pages and flags what it
//!   cannot recover;
//! * [`CombinedProfile`] — the union of a static-analysis
//!   [`FaultProfile`](lfi_profile::FaultProfile) and parsed documentation,
//!   with per-value [`Provenance`].
//!
//! ```
//! use lfi_docs::{CombinedProfile, DocParser, DocumentationSet, ManPage};
//! use lfi_profile::{ErrorReturn, FaultProfile, FunctionProfile};
//!
//! // A static profile that found close() → -1 …
//! let mut statics = FaultProfile::new("libc.so.6");
//! statics.push_function(FunctionProfile {
//!     name: "close".into(),
//!     error_returns: vec![ErrorReturn::bare(-1)],
//! });
//!
//! // … and a manual that additionally documents close() → -2.
//! let mut manual = DocumentationSet::new("libc.so.6");
//! manual.push(ManPage::new("libc.so.6", "close").with_error_return(-1).with_error_return(-2));
//! let parsed = DocParser::new().parse_set("libc.so.6", &manual.render()).unwrap();
//!
//! let combined = CombinedProfile::combine(&statics, &parsed);
//! assert_eq!(combined.error_sets()["close"].len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod combine;
mod error;
mod manpage;
mod parser;

pub use combine::{CombinedProfile, Provenance, ProvenanceCounts};
pub use error::DocError;
pub use manpage::{DocumentationSet, ManPage, ReturnValueStyle, StylePolicy};
pub use parser::{DocParser, ParsedDocumentation, ParsedPage};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ManPage>();
        assert_send_sync::<DocumentationSet>();
        assert_send_sync::<DocParser>();
        assert_send_sync::<ParsedDocumentation>();
        assert_send_sync::<CombinedProfile>();
        assert_send_sync::<DocError>();
    }
}

#[cfg(test)]
mod proptests {
    use std::collections::{BTreeMap, BTreeSet};

    use proptest::prelude::*;

    use crate::{DocParser, DocumentationSet, StylePolicy};

    fn error_map_strategy() -> impl Strategy<Value = BTreeMap<String, BTreeSet<i64>>> {
        prop::collection::btree_map("[a-z][a-z0-9_]{1,12}", prop::collection::btree_set(-5000i64..-1, 1..6), 1..20)
    }

    proptest! {
        /// A losslessly rendered manual parses back to exactly the same
        /// per-function error sets.
        #[test]
        fn perfect_manual_round_trips(map in error_map_strategy(), seed in 0u64..1000) {
            let set = DocumentationSet::from_error_map("libprop.so", &map, StylePolicy::perfect(), seed);
            let parsed = DocParser::new().parse_set("libprop.so", &set.render()).unwrap();
            prop_assert_eq!(parsed.error_sets(), map);
        }

        /// Whatever the policy, parsing never invents values that are in
        /// neither the truth map nor the deliberately spurious set, and
        /// resolving cross-references never fails for generated manuals.
        #[test]
        fn realistic_manual_never_invents_values(map in error_map_strategy(), seed in 0u64..1000) {
            let set = DocumentationSet::from_error_map("libprop.so", &map, StylePolicy::realistic(), seed);
            let mut parsed = DocParser::new().parse_set("libprop.so", &set.render()).unwrap();
            parsed.resolve_cross_references().unwrap();
            let all_truth: BTreeSet<i64> = map.values().flatten().copied().collect();
            let all_spurious: BTreeSet<i64> = set.pages.iter().flat_map(|p| p.spurious_returns.iter().copied()).collect();
            for values in parsed.error_sets().values() {
                for value in values {
                    prop_assert!(
                        all_truth.contains(value) || all_spurious.contains(value),
                        "parsed value {} appears in no page's source data", value
                    );
                }
            }
        }
    }
}
