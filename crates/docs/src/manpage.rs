//! A structured man-page model and renderer.
//!
//! The paper compares the profiler against *documentation* (§6.3, Table 2)
//! and points out that natural-language documentation is an unreliable
//! oracle: it can be vague ("returns 0 if successful, a positive error code
//! otherwise"), indirect ("the same errors that occur for link(2) can also
//! occur for linkat()"), or simply out of date.  This module models a library
//! reference manual as a set of [`ManPage`]s and renders them in the familiar
//! NAME / SYNOPSIS / RETURN VALUE / ERRORS layout, deliberately reproducing
//! those imperfections so the parser and the combined static+documentation
//! profile (see [`combine`](crate::combine)) are exercised against realistic
//! text rather than against a lossless serialization.

use std::collections::BTreeSet;

use lfi_scenario::errno::errno_name;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a page's RETURN VALUE section describes the function's error returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReturnValueStyle {
    /// Every error return value is listed explicitly:
    /// "On error, f() returns -1."
    Enumerated,
    /// The page only says that *some* error indication exists:
    /// "On failure, f() returns a negative error code."  The parser cannot
    /// recover concrete values from such a page.
    Vague,
    /// The page defers to another page: "The same errors that occur for g()
    /// can also occur for f()."
    CrossReference(String),
}

/// One reference-manual page for a single exported function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManPage {
    /// The documented function.
    pub function: String,
    /// The library the function belongs to (used in the NAME line).
    pub library: String,
    /// Free-text one-line description.
    pub description: String,
    /// Error return values the page intends to document.
    pub error_returns: BTreeSet<i64>,
    /// errno values listed in the ERRORS section (rendered by symbolic name).
    pub errnos: BTreeSet<i64>,
    /// Error return values the page documents although the function can
    /// never actually return them (stale or copy-pasted documentation).
    pub spurious_returns: BTreeSet<i64>,
    /// How the RETURN VALUE section is phrased.
    pub style: ReturnValueStyle,
}

impl ManPage {
    /// Creates an enumerated page with no errno entries and no spurious
    /// values.
    pub fn new(library: impl Into<String>, function: impl Into<String>) -> Self {
        let function = function.into();
        ManPage {
            description: format!("{function} - exported library function"),
            function,
            library: library.into(),
            error_returns: BTreeSet::new(),
            errnos: BTreeSet::new(),
            spurious_returns: BTreeSet::new(),
            style: ReturnValueStyle::Enumerated,
        }
    }

    /// Adds a documented error return value.
    #[must_use]
    pub fn with_error_return(mut self, value: i64) -> Self {
        self.error_returns.insert(value);
        self
    }

    /// Adds an errno constant to the ERRORS section.
    #[must_use]
    pub fn with_errno(mut self, errno: i64) -> Self {
        self.errnos.insert(errno);
        self
    }

    /// Adds a documented-but-impossible error return value.
    #[must_use]
    pub fn with_spurious_return(mut self, value: i64) -> Self {
        self.spurious_returns.insert(value);
        self
    }

    /// Sets the RETURN VALUE phrasing style.
    #[must_use]
    pub fn with_style(mut self, style: ReturnValueStyle) -> Self {
        self.style = style;
        self
    }

    /// Renders the page as man-page-like text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("NAME\n");
        out.push_str(&format!("       {} - {}\n\n", self.function, self.description));
        out.push_str("SYNOPSIS\n");
        out.push_str(&format!("       int {}(...);   /* from {} */\n\n", self.function, self.library));
        out.push_str("RETURN VALUE\n");
        out.push_str(&format!("       On success, {}() returns 0.\n", self.function));
        match &self.style {
            ReturnValueStyle::Enumerated => {
                for value in self.error_returns.iter().chain(self.spurious_returns.iter()) {
                    out.push_str(&format!("       On error, {}() returns {value}.\n", self.function));
                }
                if self.error_returns.is_empty() && self.spurious_returns.is_empty() {
                    out.push_str(&format!("       {}() always succeeds.\n", self.function));
                }
            }
            ReturnValueStyle::Vague => {
                out.push_str(&format!("       On failure, {}() returns a negative error code.\n", self.function));
            }
            ReturnValueStyle::CrossReference(target) => {
                out.push_str(&format!(
                    "       The same errors that occur for {target}() can also occur for {}().\n",
                    self.function
                ));
            }
        }
        out.push('\n');
        if !self.errnos.is_empty() {
            out.push_str("ERRORS\n");
            for errno in &self.errnos {
                let name = errno_name(*errno).map_or_else(|| format!("E{errno}"), str::to_owned);
                out.push_str(&format!("       {name:<16}error condition {errno}.\n"));
            }
            out.push('\n');
        }
        out
    }
}

/// Policy controlling how realistic (i.e. how imperfect) the rendered manual
/// is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StylePolicy {
    /// Fraction of pages phrased vaguely instead of enumerating values.
    pub vague_fraction: f64,
    /// Fraction of pages that defer to another page via a cross-reference.
    pub cross_reference_fraction: f64,
    /// Number of pages (at most) that additionally document a value the
    /// function can never return.
    pub spurious_pages: usize,
}

impl StylePolicy {
    /// A lossless manual: every page enumerates every value.
    pub fn perfect() -> Self {
        StylePolicy { vague_fraction: 0.0, cross_reference_fraction: 0.0, spurious_pages: 0 }
    }

    /// The default "realistic" manual: roughly a quarter of the pages are
    /// vague, a tenth defer to another page and a few document impossible
    /// values — the mix §3.1 and §7 complain about.
    pub fn realistic() -> Self {
        StylePolicy { vague_fraction: 0.25, cross_reference_fraction: 0.10, spurious_pages: 2 }
    }
}

impl Default for StylePolicy {
    fn default() -> Self {
        StylePolicy::realistic()
    }
}

/// The reference manual for one library: one page per documented function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DocumentationSet {
    /// The library the manual documents.
    pub library: String,
    /// The pages, in insertion order.
    pub pages: Vec<ManPage>,
}

impl DocumentationSet {
    /// Creates an empty manual.
    pub fn new(library: impl Into<String>) -> Self {
        DocumentationSet { library: library.into(), pages: Vec::new() }
    }

    /// Adds a page.
    pub fn push(&mut self, page: ManPage) {
        self.pages.push(page);
    }

    /// Looks up the page for a function.
    pub fn page(&self, function: &str) -> Option<&ManPage> {
        self.pages.iter().find(|p| p.function == function)
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the manual has no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Builds a manual from a per-function error-code map (the corpus
    /// libraries' documentation model), applying `policy` to decide which
    /// pages are vague, which cross-reference another page, and which gain a
    /// spurious value.  Deterministic for a given `seed`.
    pub fn from_error_map<'a, I>(library: impl Into<String>, entries: I, policy: StylePolicy, seed: u64) -> Self
    where
        I: IntoIterator<Item = (&'a String, &'a BTreeSet<i64>)>,
    {
        let library = library.into();
        let mut rng = StdRng::seed_from_u64(seed);
        let entries: Vec<(&String, &BTreeSet<i64>)> = entries.into_iter().collect();
        let mut set = DocumentationSet::new(library.clone());
        let mut spurious_left = policy.spurious_pages;
        for (index, (function, values)) in entries.iter().enumerate() {
            let mut page = ManPage::new(library.clone(), (*function).clone());
            page.error_returns = (*values).clone();
            let roll: f64 = rng.gen();
            if roll < policy.vague_fraction && !values.is_empty() {
                page.style = ReturnValueStyle::Vague;
            } else if roll < policy.vague_fraction + policy.cross_reference_fraction && index > 0 {
                // Refer to the previous documented function, which is
                // guaranteed to have a page, keeping the manual resolvable.
                page.style = ReturnValueStyle::CrossReference(entries[index - 1].0.clone());
            } else if spurious_left > 0 && rng.gen_bool(0.2) {
                // A stale value well outside the range the generators use for
                // genuine error codes.
                let spurious = -(1000 + index as i64);
                page.spurious_returns.insert(spurious);
                spurious_left -= 1;
            }
            set.push(page);
        }
        set
    }

    /// Renders the whole manual: pages separated by a form-feed marker, the
    /// way `man` concatenates preformatted pages.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for page in &self.pages {
            out.push_str(&format!("MANPAGE {}\n", page.function));
            out.push_str(&page.render());
            out.push_str("\u{c}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerated_page_lists_every_value() {
        let page = ManPage::new("libc.so.6", "close").with_error_return(-1).with_errno(9).with_errno(5);
        let text = page.render();
        assert!(text.contains("On error, close() returns -1."));
        assert!(text.contains("EBADF"));
        assert!(text.contains("EIO"));
        assert!(text.contains("RETURN VALUE"));
        assert!(text.contains("ERRORS"));
    }

    #[test]
    fn vague_page_does_not_leak_values() {
        let page = ManPage::new("libc.so.6", "frob")
            .with_error_return(-42)
            .with_style(ReturnValueStyle::Vague);
        let text = page.render();
        assert!(text.contains("negative error code"));
        assert!(!text.contains("-42"));
    }

    #[test]
    fn cross_reference_page_names_the_target() {
        let page = ManPage::new("libc.so.6", "linkat").with_style(ReturnValueStyle::CrossReference("link".into()));
        let text = page.render();
        assert!(text.contains("The same errors that occur for link()"));
    }

    #[test]
    fn unknown_errno_values_render_with_a_numeric_fallback() {
        let page = ManPage::new("libx.so", "f").with_errno(9999);
        assert!(page.render().contains("E9999"));
    }

    #[test]
    fn empty_page_says_always_succeeds() {
        let page = ManPage::new("libx.so", "noop");
        assert!(page.render().contains("always succeeds"));
    }

    #[test]
    fn spurious_values_are_rendered_like_genuine_ones() {
        let page = ManPage::new("libx.so", "f").with_error_return(-1).with_spurious_return(-77);
        let text = page.render();
        assert!(text.contains("returns -1"));
        assert!(text.contains("returns -77"));
    }

    #[test]
    fn documentation_set_lookup_and_render() {
        let mut set = DocumentationSet::new("libx.so");
        assert!(set.is_empty());
        set.push(ManPage::new("libx.so", "a").with_error_return(-1));
        set.push(ManPage::new("libx.so", "b").with_error_return(-2));
        assert_eq!(set.len(), 2);
        assert!(set.page("a").is_some());
        assert!(set.page("missing").is_none());
        let text = set.render();
        assert!(text.contains("MANPAGE a"));
        assert!(text.contains("MANPAGE b"));
    }

    #[test]
    fn perfect_policy_enumerates_everything() {
        let mut map = std::collections::BTreeMap::new();
        for i in 0..20i64 {
            map.insert(format!("fn_{i}"), BTreeSet::from([-1, -i - 2]));
        }
        let set = DocumentationSet::from_error_map("libx.so", &map, StylePolicy::perfect(), 1);
        assert_eq!(set.len(), 20);
        assert!(set.pages.iter().all(|p| p.style == ReturnValueStyle::Enumerated));
        assert!(set.pages.iter().all(|p| p.spurious_returns.is_empty()));
    }

    #[test]
    fn realistic_policy_mixes_styles_deterministically() {
        let mut map = std::collections::BTreeMap::new();
        for i in 0..200i64 {
            map.insert(format!("fn_{i:03}"), BTreeSet::from([-1, -i - 2]));
        }
        let a = DocumentationSet::from_error_map("libx.so", &map, StylePolicy::realistic(), 7);
        let b = DocumentationSet::from_error_map("libx.so", &map, StylePolicy::realistic(), 7);
        assert_eq!(a, b, "same seed must give the same manual");
        let vague = a.pages.iter().filter(|p| p.style == ReturnValueStyle::Vague).count();
        let refs = a.pages.iter().filter(|p| matches!(p.style, ReturnValueStyle::CrossReference(_))).count();
        assert!(vague > 0, "some pages should be vague");
        assert!(refs > 0, "some pages should cross-reference");
        assert!(vague + refs < a.len(), "most pages remain enumerated");
    }
}
