use std::error::Error;
use std::fmt;

/// Errors produced while rendering or parsing library documentation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DocError {
    /// The page text has no recognizable section headers at all.
    NoSections {
        /// Name of the page (function) being parsed.
        function: String,
    },
    /// An `ERRORS` entry names an errno constant the parser does not know.
    UnknownErrno {
        /// Name of the page (function) being parsed.
        function: String,
        /// The unrecognized constant, e.g. `EFROBNICATE`.
        name: String,
    },
    /// A cross-reference ("the same errors that occur for …") points to a
    /// function that has no page in the documentation set.
    UnresolvedCrossReference {
        /// The referring function.
        function: String,
        /// The missing referent.
        target: String,
    },
    /// Cross-references form a cycle that never bottoms out in an enumerated
    /// page.
    CyclicCrossReference {
        /// One function on the cycle.
        function: String,
    },
}

impl fmt::Display for DocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocError::NoSections { function } => {
                write!(f, "page for {function} has no recognizable sections")
            }
            DocError::UnknownErrno { function, name } => {
                write!(f, "page for {function} names unknown errno constant {name}")
            }
            DocError::UnresolvedCrossReference { function, target } => {
                write!(f, "page for {function} refers to {target}, which has no page")
            }
            DocError::CyclicCrossReference { function } => {
                write!(f, "cross-references through {function} form a cycle")
            }
        }
    }
}

impl Error for DocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_function() {
        let errors = [
            DocError::NoSections { function: "close".into() },
            DocError::UnknownErrno { function: "close".into(), name: "EFROBNICATE".into() },
            DocError::UnresolvedCrossReference { function: "linkat".into(), target: "link".into() },
            DocError::CyclicCrossReference { function: "a".into() },
        ];
        for error in errors {
            let text = error.to_string();
            assert!(!text.is_empty());
        }
        assert!(DocError::UnknownErrno { function: "close".into(), name: "EFROBNICATE".into() }
            .to_string()
            .contains("EFROBNICATE"));
    }
}
