//! Combining static-analysis profiles with parsed documentation.
//!
//! The paper's profiler deliberately avoids relying on documentation (§3.1),
//! but notes that "should structured documentation exist and a documentation
//! parser be available, it can be combined with LFI's static analysis to
//! yield higher accuracy" (§6.3).  This module implements that combination:
//! the union of the two sources, with per-value provenance so a tester can
//! see which faults are vouched for by the binary, which only by the manual,
//! and which by both.

use std::collections::{BTreeMap, BTreeSet};

use lfi_profile::{ErrorReturn, FaultProfile, FunctionProfile};

use crate::parser::ParsedDocumentation;

/// Where a combined error value came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Provenance {
    /// Found only by static analysis of the binary.
    StaticAnalysis,
    /// Found only in the documentation.
    Documentation,
    /// Found by both sources (the highest-confidence class).
    Both,
}

/// A fault profile whose values carry provenance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CombinedProfile {
    /// The profiled library.
    pub library: String,
    /// Per-function error values with their provenance.
    pub functions: BTreeMap<String, BTreeMap<i64, Provenance>>,
}

impl CombinedProfile {
    /// Builds the combined profile from a static-analysis profile and parsed
    /// documentation.  Side effects recorded by the static profile are kept;
    /// values contributed only by the documentation have none (the manual
    /// does not say at which TLS offset errno lives).
    pub fn combine(static_profile: &FaultProfile, docs: &ParsedDocumentation) -> Self {
        let mut functions: BTreeMap<String, BTreeMap<i64, Provenance>> = BTreeMap::new();
        for function in &static_profile.functions {
            let entry = functions.entry(function.name.clone()).or_default();
            for value in function.error_values() {
                entry.insert(value, Provenance::StaticAnalysis);
            }
        }
        for (name, values) in docs.error_sets() {
            let entry = functions.entry(name).or_default();
            for value in values {
                entry
                    .entry(value)
                    .and_modify(|p| *p = Provenance::Both)
                    .or_insert(Provenance::Documentation);
            }
        }
        CombinedProfile { library: static_profile.library.clone(), functions }
    }

    /// The per-function error sets (for accuracy scoring).
    pub fn error_sets(&self) -> BTreeMap<String, BTreeSet<i64>> {
        self.functions
            .iter()
            .filter(|(_, values)| !values.is_empty())
            .map(|(name, values)| (name.clone(), values.keys().copied().collect()))
            .collect()
    }

    /// Counts of values by provenance, over the whole library.
    pub fn provenance_counts(&self) -> ProvenanceCounts {
        let mut counts = ProvenanceCounts::default();
        for values in self.functions.values() {
            for provenance in values.values() {
                match provenance {
                    Provenance::StaticAnalysis => counts.static_only += 1,
                    Provenance::Documentation => counts.documentation_only += 1,
                    Provenance::Both => counts.both += 1,
                }
            }
        }
        counts
    }

    /// Lowers the combined profile back into a [`FaultProfile`] that the
    /// controller can consume: static values keep the side effects recorded
    /// by the profiler, documentation-only values become bare error returns.
    pub fn to_fault_profile(&self, static_profile: &FaultProfile) -> FaultProfile {
        let mut out = FaultProfile::new(self.library.clone());
        out.platform = static_profile.platform.clone();
        for (name, values) in &self.functions {
            let mut function = FunctionProfile::new(name.clone());
            let existing = static_profile.function(name);
            for &value in values.keys() {
                let from_static = existing.and_then(|f| f.error_returns.iter().find(|r| r.retval == value)).cloned();
                function.error_returns.push(from_static.unwrap_or_else(|| ErrorReturn::bare(value)));
            }
            out.push_function(function);
        }
        out
    }
}

/// Per-provenance value counts for one combined profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProvenanceCounts {
    /// Values only static analysis found.
    pub static_only: usize,
    /// Values only the documentation mentioned.
    pub documentation_only: usize,
    /// Values both sources agree on.
    pub both: usize,
}

impl ProvenanceCounts {
    /// Total number of distinct (function, value) pairs.
    pub fn total(&self) -> usize {
        self.static_only + self.documentation_only + self.both
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manpage::{DocumentationSet, ManPage};
    use crate::parser::DocParser;
    use lfi_profile::SideEffect;

    fn static_profile() -> FaultProfile {
        let mut profile = FaultProfile::new("libc.so.6");
        profile.push_function(FunctionProfile {
            name: "close".into(),
            error_returns: vec![ErrorReturn {
                retval: -1,
                side_effects: vec![SideEffect::tls("libc.so.6", 0x12fff4, 9)],
            }],
        });
        profile.push_function(FunctionProfile { name: "read".into(), error_returns: vec![ErrorReturn::bare(-1)] });
        profile
    }

    fn docs_with(pages: Vec<ManPage>) -> ParsedDocumentation {
        let mut set = DocumentationSet::new("libc.so.6");
        for page in pages {
            set.push(page);
        }
        DocParser::new().parse_set("libc.so.6", &set.render()).unwrap()
    }

    #[test]
    fn union_with_provenance() {
        let docs = docs_with(vec![
            ManPage::new("libc.so.6", "close").with_error_return(-1),
            ManPage::new("libc.so.6", "write").with_error_return(-1).with_error_return(-2),
        ]);
        let combined = CombinedProfile::combine(&static_profile(), &docs);
        assert_eq!(combined.functions["close"][&-1], Provenance::Both);
        assert_eq!(combined.functions["read"][&-1], Provenance::StaticAnalysis);
        assert_eq!(combined.functions["write"][&-1], Provenance::Documentation);
        assert_eq!(combined.functions["write"][&-2], Provenance::Documentation);
        let counts = combined.provenance_counts();
        assert_eq!(counts, ProvenanceCounts { static_only: 1, documentation_only: 2, both: 1 });
        assert_eq!(counts.total(), 4);
    }

    #[test]
    fn error_sets_union_both_sources() {
        let docs = docs_with(vec![ManPage::new("libc.so.6", "read").with_error_return(-5)]);
        let combined = CombinedProfile::combine(&static_profile(), &docs);
        let sets = combined.error_sets();
        assert_eq!(sets["read"], BTreeSet::from([-5, -1]));
        assert_eq!(sets["close"], BTreeSet::from([-1]));
    }

    #[test]
    fn lowering_keeps_static_side_effects_and_adds_bare_doc_values() {
        let docs = docs_with(vec![ManPage::new("libc.so.6", "close").with_error_return(-2)]);
        let statics = static_profile();
        let combined = CombinedProfile::combine(&statics, &docs);
        let profile = combined.to_fault_profile(&statics);
        let close = profile.function("close").unwrap();
        let minus_one = close.error_returns.iter().find(|r| r.retval == -1).unwrap();
        assert_eq!(minus_one.side_effects.len(), 1, "static side effects survive the merge");
        let minus_two = close.error_returns.iter().find(|r| r.retval == -2).unwrap();
        assert!(minus_two.side_effects.is_empty(), "documentation-only values are bare");
    }

    #[test]
    fn empty_documentation_reduces_to_the_static_profile() {
        let statics = static_profile();
        let combined = CombinedProfile::combine(&statics, &ParsedDocumentation::default());
        let lowered = combined.to_fault_profile(&statics);
        assert_eq!(lowered.function_count(), statics.function_count());
        let counts = combined.provenance_counts();
        assert_eq!(counts.documentation_only, 0);
        assert_eq!(counts.both, 0);
    }

    #[test]
    fn combination_never_loses_a_static_value() {
        let docs = docs_with(vec![ManPage::new("libc.so.6", "close").with_error_return(-7)]);
        let statics = static_profile();
        let combined = CombinedProfile::combine(&statics, &docs);
        for function in &statics.functions {
            for value in function.error_values() {
                assert!(
                    combined.functions[&function.name].contains_key(&value),
                    "static value {value} of {} lost",
                    function.name
                );
            }
        }
    }
}
