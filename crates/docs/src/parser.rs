//! A parser for the man-page-like documentation rendered by
//! [`manpage`](crate::manpage).
//!
//! §6.3 of the paper scales the accuracy evaluation by writing
//! "documentation parsers for each of the measured libraries"; §3.1 warns
//! that such parsing "cannot be accurate, because documentation often uses
//! natural language that is potentially confusing".  This parser recovers
//! what *can* be recovered mechanically — explicit "returns N" sentences,
//! ERRORS-section errno constants, and "same errors as g()" cross-references
//! — and flags the rest (vague phrasing) as imprecise instead of guessing.

use std::collections::{BTreeMap, BTreeSet};

use lfi_scenario::errno::errno_value;

use crate::error::DocError;

/// What the parser recovered from a single page.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedPage {
    /// The documented function.
    pub function: String,
    /// Error return values named explicitly by the RETURN VALUE section.
    pub error_returns: BTreeSet<i64>,
    /// errno values recovered from the ERRORS section.
    pub errnos: BTreeSet<i64>,
    /// Functions this page defers to ("the same errors that occur for …").
    pub cross_references: Vec<String>,
    /// True when the page uses vague phrasing the parser cannot turn into
    /// concrete values ("a negative error code", "a positive error code").
    pub imprecise: bool,
}

/// Everything the parser recovered from one library's manual.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedDocumentation {
    /// The documented library.
    pub library: String,
    /// Per-function parse results.
    pub pages: BTreeMap<String, ParsedPage>,
}

impl ParsedDocumentation {
    /// Looks up the parse result for one function.
    pub fn page(&self, function: &str) -> Option<&ParsedPage> {
        self.pages.get(function)
    }

    /// Number of parsed pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether nothing was parsed.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// The fraction of pages whose error values could not be recovered
    /// because of vague phrasing — the parser's own estimate of how much the
    /// manual leaves on the table.
    pub fn imprecise_fraction(&self) -> f64 {
        if self.pages.is_empty() {
            return 0.0;
        }
        let imprecise = self.pages.values().filter(|p| p.imprecise).count();
        imprecise as f64 / self.pages.len() as f64
    }

    /// Resolves cross-references: each page that defers to another page
    /// inherits that page's (transitively resolved) error values.  Returns an
    /// error if a reference points at a missing page or the references form a
    /// cycle with no enumerated page on it.
    pub fn resolve_cross_references(&mut self) -> Result<(), DocError> {
        let functions: Vec<String> = self.pages.keys().cloned().collect();
        for function in functions {
            let mut resolved = BTreeSet::new();
            let mut resolved_errnos = BTreeSet::new();
            let mut visited = BTreeSet::new();
            self.collect(&function, &mut resolved, &mut resolved_errnos, &mut visited)?;
            let page = self.pages.get_mut(&function).expect("page exists");
            page.error_returns.extend(resolved);
            page.errnos.extend(resolved_errnos);
        }
        Ok(())
    }

    fn collect(
        &self,
        function: &str,
        returns: &mut BTreeSet<i64>,
        errnos: &mut BTreeSet<i64>,
        visited: &mut BTreeSet<String>,
    ) -> Result<(), DocError> {
        if !visited.insert(function.to_owned()) {
            return Err(DocError::CyclicCrossReference { function: function.to_owned() });
        }
        let Some(page) = self.pages.get(function) else {
            return Err(DocError::UnresolvedCrossReference {
                function: visited.iter().next().cloned().unwrap_or_default(),
                target: function.to_owned(),
            });
        };
        returns.extend(page.error_returns.iter().copied());
        errnos.extend(page.errnos.iter().copied());
        for target in &page.cross_references {
            self.collect(target, returns, errnos, visited)?;
        }
        Ok(())
    }

    /// The per-function error-return sets, in the shape the accuracy scorer
    /// and the combiner expect.  Call [`resolve_cross_references`] first if
    /// the manual uses them.
    ///
    /// [`resolve_cross_references`]: ParsedDocumentation::resolve_cross_references
    pub fn error_sets(&self) -> BTreeMap<String, BTreeSet<i64>> {
        self.pages
            .iter()
            .filter(|(_, page)| !page.error_returns.is_empty())
            .map(|(name, page)| (name.clone(), page.error_returns.clone()))
            .collect()
    }
}

/// Parses a rendered [`DocumentationSet`](crate::manpage::DocumentationSet) (or
/// any text in the same layout).
#[derive(Debug, Clone, Default)]
pub struct DocParser {
    /// When true, unknown errno names abort the parse; when false (default)
    /// they are skipped, mirroring how a human reader shrugs at a constant
    /// they do not recognize.
    pub strict_errno: bool,
}

impl DocParser {
    /// Creates a parser with default (lenient) settings.
    pub fn new() -> Self {
        DocParser::default()
    }

    /// Makes unknown errno constants a hard error.
    #[must_use]
    pub fn strict(mut self) -> Self {
        self.strict_errno = true;
        self
    }

    /// Parses a whole manual that was rendered with
    /// [`DocumentationSet::render`](crate::manpage::DocumentationSet::render).
    pub fn parse_set(&self, library: &str, text: &str) -> Result<ParsedDocumentation, DocError> {
        let mut parsed = ParsedDocumentation { library: library.to_owned(), pages: BTreeMap::new() };
        for chunk in text.split('\u{c}') {
            let chunk = chunk.trim();
            if chunk.is_empty() {
                continue;
            }
            let page = self.parse_page(chunk)?;
            parsed.pages.insert(page.function.clone(), page);
        }
        Ok(parsed)
    }

    /// Parses the rendered text of a single page.
    pub fn parse_page(&self, text: &str) -> Result<ParsedPage, DocError> {
        let mut page = ParsedPage::default();
        let mut section = "";
        let mut saw_section = false;
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(name) = trimmed.strip_prefix("MANPAGE ") {
                page.function = name.trim().to_owned();
                continue;
            }
            if is_section_header(line) {
                section = trimmed;
                saw_section = true;
                continue;
            }
            match section {
                "NAME" if page.function.is_empty() => {
                    if let Some((name, _)) = trimmed.split_once(" - ") {
                        page.function = name.trim().to_owned();
                    }
                }
                "RETURN VALUE" => self.parse_return_value_line(trimmed, &mut page),
                "ERRORS" => self.parse_errors_line(trimmed, &mut page)?,
                _ => {}
            }
        }
        if !saw_section {
            return Err(DocError::NoSections { function: page.function });
        }
        Ok(page)
    }

    fn parse_return_value_line(&self, line: &str, page: &mut ParsedPage) {
        let lower = line.to_lowercase();
        if lower.contains("a negative error code") || lower.contains("a positive error code") {
            page.imprecise = true;
            return;
        }
        if let Some(rest) = line.split("same errors that occur for ").nth(1) {
            if let Some(target) = rest.split("()").next() {
                let target = target.trim();
                if !target.is_empty() {
                    page.cross_references.push(target.to_owned());
                }
            }
            return;
        }
        // Only sentences that talk about errors contribute error values; the
        // "On success, f() returns 0." sentence must not.
        if !(lower.contains("on error") || lower.contains("on failure") || lower.contains("if an error")) {
            return;
        }
        // The value is the token immediately after "returns"; anything else
        // on the line (the function name, offsets quoted in prose) is noise.
        let mut words = line.split_whitespace().peekable();
        while let Some(word) = words.next() {
            if word != "returns" {
                continue;
            }
            if let Some(next) = words.peek() {
                let candidate = next.trim_end_matches(['.', ',', ';']);
                if let Ok(value) = candidate.parse::<i64>() {
                    page.error_returns.insert(value);
                }
            }
        }
    }

    fn parse_errors_line(&self, line: &str, page: &mut ParsedPage) -> Result<(), DocError> {
        let Some(first) = line.split_whitespace().next() else {
            return Ok(());
        };
        if !first.starts_with('E') || !first.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit()) {
            return Ok(());
        }
        match errno_value(first) {
            Some(value) => {
                page.errnos.insert(value);
            }
            None => {
                // "E" followed by digits is the renderer's numeric fallback.
                if let Ok(value) = first[1..].parse::<i64>() {
                    page.errnos.insert(value);
                } else if self.strict_errno {
                    return Err(DocError::UnknownErrno { function: page.function.clone(), name: first.to_owned() });
                }
            }
        }
        Ok(())
    }
}

fn is_section_header(line: &str) -> bool {
    !line.starts_with(' ') && !line.trim().is_empty() && line.trim().chars().all(|c| c.is_ascii_uppercase() || c == ' ')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manpage::{DocumentationSet, ManPage, ReturnValueStyle, StylePolicy};

    fn parse_one(page: &ManPage) -> ParsedPage {
        DocParser::new().parse_page(&page.render()).expect("page parses")
    }

    #[test]
    fn enumerated_values_round_trip() {
        let page = ManPage::new("libc.so.6", "close").with_error_return(-1).with_errno(9).with_errno(5);
        let parsed = parse_one(&page);
        assert_eq!(parsed.function, "close");
        assert_eq!(parsed.error_returns, BTreeSet::from([-1]));
        assert_eq!(parsed.errnos, BTreeSet::from([5, 9]));
        assert!(!parsed.imprecise);
    }

    #[test]
    fn success_sentence_is_not_an_error_value() {
        let page = ManPage::new("libx.so", "f").with_error_return(-3);
        let parsed = parse_one(&page);
        assert!(!parsed.error_returns.contains(&0), "the success return must not be parsed as an error");
        assert_eq!(parsed.error_returns, BTreeSet::from([-3]));
    }

    #[test]
    fn vague_pages_are_flagged_not_guessed() {
        let page = ManPage::new("libx.so", "f").with_error_return(-9).with_style(ReturnValueStyle::Vague);
        let parsed = parse_one(&page);
        assert!(parsed.imprecise);
        assert!(parsed.error_returns.is_empty());
    }

    #[test]
    fn cross_references_are_recorded_and_resolved() {
        let mut set = DocumentationSet::new("libc.so.6");
        set.push(ManPage::new("libc.so.6", "link").with_error_return(-1).with_errno(13));
        set.push(ManPage::new("libc.so.6", "linkat").with_style(ReturnValueStyle::CrossReference("link".into())));
        let mut parsed = DocParser::new().parse_set("libc.so.6", &set.render()).unwrap();
        assert_eq!(parsed.page("linkat").unwrap().cross_references, vec!["link".to_owned()]);
        parsed.resolve_cross_references().unwrap();
        assert_eq!(parsed.page("linkat").unwrap().error_returns, BTreeSet::from([-1]));
        assert_eq!(parsed.page("linkat").unwrap().errnos, BTreeSet::from([13]));
    }

    #[test]
    fn unresolved_cross_reference_is_an_error() {
        let mut set = DocumentationSet::new("libx.so");
        set.push(ManPage::new("libx.so", "orphan").with_style(ReturnValueStyle::CrossReference("ghost".into())));
        let mut parsed = DocParser::new().parse_set("libx.so", &set.render()).unwrap();
        let error = parsed.resolve_cross_references().unwrap_err();
        assert!(matches!(error, DocError::UnresolvedCrossReference { .. }));
    }

    #[test]
    fn cyclic_cross_references_are_detected() {
        let mut parsed = ParsedDocumentation { library: "libx.so".into(), pages: BTreeMap::new() };
        parsed.pages.insert(
            "a".into(),
            ParsedPage { function: "a".into(), cross_references: vec!["b".into()], ..ParsedPage::default() },
        );
        parsed.pages.insert(
            "b".into(),
            ParsedPage { function: "b".into(), cross_references: vec!["a".into()], ..ParsedPage::default() },
        );
        assert!(matches!(parsed.resolve_cross_references(), Err(DocError::CyclicCrossReference { .. })));
    }

    #[test]
    fn garbage_text_reports_missing_sections() {
        let error = DocParser::new().parse_page("this is not a man page").unwrap_err();
        assert!(matches!(error, DocError::NoSections { .. }));
    }

    #[test]
    fn strict_parser_rejects_unknown_errno_names() {
        let text = "MANPAGE f\nNAME\n       f - x\n\nRETURN VALUE\n       On error, f() returns -1.\n\nERRORS\n       EFROBNICATE    bogus.\n";
        assert!(DocParser::new().parse_page(text).is_ok());
        let error = DocParser::new().strict().parse_page(text).unwrap_err();
        assert!(matches!(error, DocError::UnknownErrno { .. }));
    }

    #[test]
    fn numeric_fallback_errno_names_parse_back() {
        let page = ManPage::new("libx.so", "f").with_errno(9999);
        let parsed = parse_one(&page);
        assert!(parsed.errnos.contains(&9999));
    }

    #[test]
    fn spurious_values_are_parsed_as_documented() {
        // The parser has no way to know a documented value is impossible;
        // that is exactly why combined profiles can contain false positives.
        let page = ManPage::new("libx.so", "f").with_error_return(-1).with_spurious_return(-1001);
        let parsed = parse_one(&page);
        assert_eq!(parsed.error_returns, BTreeSet::from([-1001, -1]));
    }

    #[test]
    fn error_sets_skip_functions_without_values() {
        let mut set = DocumentationSet::new("libx.so");
        set.push(ManPage::new("libx.so", "a").with_error_return(-1));
        set.push(ManPage::new("libx.so", "b")); // always succeeds
        let parsed = DocParser::new().parse_set("libx.so", &set.render()).unwrap();
        let sets = parsed.error_sets();
        assert!(sets.contains_key("a"));
        assert!(!sets.contains_key("b"));
    }

    #[test]
    fn perfect_manual_round_trips_exactly() {
        let mut map = std::collections::BTreeMap::new();
        for i in 0..50i64 {
            map.insert(format!("fn_{i:02}"), BTreeSet::from([-1, -i - 2]));
        }
        let set = DocumentationSet::from_error_map("libx.so", &map, StylePolicy::perfect(), 3);
        let parsed = DocParser::new().parse_set("libx.so", &set.render()).unwrap();
        assert_eq!(parsed.error_sets(), map);
        assert_eq!(parsed.imprecise_fraction(), 0.0);
    }

    #[test]
    fn realistic_manual_recovers_only_part_of_the_truth() {
        let mut map = std::collections::BTreeMap::new();
        for i in 0..200i64 {
            map.insert(format!("fn_{i:03}"), BTreeSet::from([-1, -i - 2]));
        }
        let set = DocumentationSet::from_error_map("libx.so", &map, StylePolicy::realistic(), 11);
        let mut parsed = DocParser::new().parse_set("libx.so", &set.render()).unwrap();
        parsed.resolve_cross_references().unwrap();
        assert!(parsed.imprecise_fraction() > 0.0);
        let recovered: usize = parsed.error_sets().values().map(BTreeSet::len).sum();
        let truth: usize = map.values().map(BTreeSet::len).sum();
        assert!(recovered < truth, "vague pages must lose information ({recovered} vs {truth})");
        assert!(recovered > truth / 2, "most of the manual is still enumerated");
    }
}
