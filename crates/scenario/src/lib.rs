//! # lfi-scenario — the fault-scenario ("faultload") language of §4
//!
//! A fault injection scenario pairs *triggers* (call counts, stack traces,
//! probabilities) with *faults* (injected return values, errno, side effects,
//! argument modifications).  This crate defines the plan data model
//! ([`Plan`]), its XML dialect (round-tripping the exact snippets shown in
//! the paper), the pluggable scenario generators ([`generator`], built around
//! the [`ScenarioGenerator`] trait), and the ready-made libc scenarios of §4
//! ([`ready_made`]).
//!
//! ```
//! use lfi_profile::{ErrorReturn, FaultProfile, FunctionProfile};
//! use lfi_scenario::generator::{Exhaustive, ScenarioGenerator};
//! use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};
//!
//! // Hand-written plans and generated plans share one data model.
//! let plan = Plan::new().entry(PlanEntry {
//!     function: "readdir64".into(),
//!     trigger: Trigger::on_call(5),
//!     action: FaultAction::return_value(0).with_errno(9),
//! });
//! let xml = plan.to_xml();
//! assert_eq!(Plan::from_xml(&xml).unwrap(), plan);
//!
//! let mut profile = FaultProfile::new("libdemo.so");
//! profile.push_function(FunctionProfile {
//!     name: "demo_read".into(),
//!     error_returns: vec![ErrorReturn::bare(-1)],
//! });
//! let generated = Exhaustive.generate(std::slice::from_ref(&profile));
//! assert_eq!(generated.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
pub mod errno;
mod error;
pub mod generator;
mod plan;
pub mod ready_made;

pub use compiled::{
    CompiledChoice, CompiledEntry, CompiledFunction, CompiledPlan, CompiledSideEffect, FaultCell, StubSpecialization,
};
pub use error::ScenarioError;
pub use generator::{Composite, Exhaustive, Filtered, Random, ReadyMade, ScenarioGenerator, TriggerLoad};
pub use lfi_intern::Symbol;
pub use plan::{ArgModification, ArgOp, FaultAction, Plan, PlanEntry, Trigger};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Plan>();
        assert_send_sync::<PlanEntry>();
        assert_send_sync::<Trigger>();
        assert_send_sync::<FaultAction>();
        assert_send_sync::<ScenarioError>();
    }
}
