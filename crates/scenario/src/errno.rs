//! The symbolic errno names used by the scenario language.
//!
//! The paper's plan snippets write `errno="EBADF"`; this module maps the
//! common POSIX errno names to the numeric values injected into the
//! simulated process's `errno` slot (Linux x86 numbering).

/// Name/value pairs for the errno constants the scenario language accepts.
pub const ERRNO_TABLE: &[(&str, i64)] = &[
    ("EPERM", 1),
    ("ENOENT", 2),
    ("ESRCH", 3),
    ("EINTR", 4),
    ("EIO", 5),
    ("ENXIO", 6),
    ("E2BIG", 7),
    ("ENOEXEC", 8),
    ("EBADF", 9),
    ("ECHILD", 10),
    ("EAGAIN", 11),
    ("ENOMEM", 12),
    ("EACCES", 13),
    ("EFAULT", 14),
    ("ENOTBLK", 15),
    ("EBUSY", 16),
    ("EEXIST", 17),
    ("EXDEV", 18),
    ("ENODEV", 19),
    ("ENOTDIR", 20),
    ("EISDIR", 21),
    ("EINVAL", 22),
    ("ENFILE", 23),
    ("EMFILE", 24),
    ("ENOTTY", 25),
    ("ETXTBSY", 26),
    ("EFBIG", 27),
    ("ENOSPC", 28),
    ("ESPIPE", 29),
    ("EROFS", 30),
    ("EMLINK", 31),
    ("EPIPE", 32),
    ("EDOM", 33),
    ("ERANGE", 34),
    ("EDEADLK", 35),
    ("ENAMETOOLONG", 36),
    ("ENOLCK", 37),
    ("ENOSYS", 38),
    ("ENOTEMPTY", 39),
    ("ELOOP", 40),
    ("ENOMSG", 42),
    ("ENOLINK", 67),
    ("EPROTO", 71),
    ("EBADMSG", 74),
    ("EOVERFLOW", 75),
    ("EMSGSIZE", 90),
    ("ECONNRESET", 104),
    ("ENOBUFS", 105),
    ("ENOTCONN", 107),
    ("ETIMEDOUT", 110),
    ("ECONNREFUSED", 111),
    ("EHOSTUNREACH", 113),
    ("EINPROGRESS", 115),
    ("EWOULDBLOCK", 11),
];

/// Resolves an errno name (e.g. `"EBADF"`) to its numeric value.
pub fn errno_value(name: &str) -> Option<i64> {
    ERRNO_TABLE.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
}

/// Resolves a numeric errno value back to its canonical name, if known.
pub fn errno_name(value: i64) -> Option<&'static str> {
    ERRNO_TABLE.iter().find(|(_, v)| *v == value).map(|(n, _)| *n)
}

/// Parses an errno written either symbolically (`"EBADF"`) or numerically
/// (`"9"`).
pub fn parse_errno(text: &str) -> Option<i64> {
    errno_value(text).or_else(|| text.parse::<i64>().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_names_resolve() {
        assert_eq!(errno_value("EBADF"), Some(9));
        assert_eq!(errno_value("EIO"), Some(5));
        assert_eq!(errno_value("EINTR"), Some(4));
        assert_eq!(errno_value("ENOMEM"), Some(12));
        assert_eq!(errno_value("ENOSPC"), Some(28));
        assert_eq!(errno_value("ENOLINK"), Some(67));
        assert_eq!(errno_value("EBOGUS"), None);
    }

    #[test]
    fn names_round_trip() {
        for (name, value) in ERRNO_TABLE {
            if *name == "EWOULDBLOCK" {
                continue; // alias of EAGAIN
            }
            assert_eq!(errno_name(*value), Some(*name), "{name}");
        }
        assert_eq!(errno_name(-1), None);
    }

    #[test]
    fn parse_accepts_names_and_numbers() {
        assert_eq!(parse_errno("EBADF"), Some(9));
        assert_eq!(parse_errno("17"), Some(17));
        assert_eq!(parse_errno("-4"), Some(-4));
        assert_eq!(parse_errno("junk"), None);
    }
}
