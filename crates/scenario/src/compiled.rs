//! The compiled, symbol-resolved form of a [`Plan`] — the resolve-once half
//! of the interception fast path.
//!
//! A [`Plan`] is the XML-facing data model: function names, module names and
//! stack frames are strings, because that is what the §4 scenario language
//! and the fault profiles speak.  [`Plan::compile`] resolves every one of
//! those names to an interned [`Symbol`] exactly once and groups the entries
//! by intercepted function, producing the [`CompiledPlan`] the controller's
//! per-call trigger evaluation runs against.  After compilation, no per-call
//! code touches a string: stack-trace frames compare as ids, TLS/global
//! side-effect modules are ids, and per-function state lives in dense
//! per-function slots.

use lfi_intern::Symbol;
use lfi_profile::{SideEffect, SideEffectKind};

use crate::{ArgModification, Plan};

/// A side effect with its module name resolved to a [`Symbol`], applicable
/// per call without allocating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledSideEffect {
    /// Channel used to expose the error detail.
    pub kind: SideEffectKind,
    /// Interned module whose data image holds the location.
    pub module: Symbol,
    /// Offset within the module data image (argument index for
    /// [`SideEffectKind::OutputArg`]).
    pub offset: u32,
    /// Value written into the location.
    pub value: i64,
}

impl CompiledSideEffect {
    fn compile(effect: &SideEffect) -> Self {
        Self { kind: effect.kind, module: Symbol::intern(&effect.module), offset: effect.offset, value: effect.value }
    }

    /// Re-materializes the string-keyed form (report/replay path only).
    pub fn to_side_effect(self) -> SideEffect {
        SideEffect { kind: self.kind, module: self.module.as_str().to_owned(), offset: self.offset, value: self.value }
    }
}

/// One member of a compiled random-choice pool (an
/// [`ErrorReturn`](lfi_profile::ErrorReturn) with resolved side effects).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledChoice {
    /// The injected return value.
    pub retval: i64,
    /// Side effects accompanying this choice.
    pub side_effects: Vec<CompiledSideEffect>,
}

/// One plan entry compiled against the symbol table: triggers and fault with
/// every name resolved, plus the index of the source entry in the original
/// [`Plan`] (so reports can refer back to the authored scenario).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledEntry {
    /// Index of this entry in [`Plan::entries`].
    pub plan_index: usize,
    /// Fire on the n-th call (1-based), if set.
    pub inject_at_call: Option<u64>,
    /// Fire with this probability on each call, if set.
    pub probability: Option<f64>,
    /// Stack-trace frames to match, innermost first, as interned symbols.
    pub stack_trace: Vec<Symbol>,
    /// Return value to inject.
    pub retval: Option<i64>,
    /// errno to set alongside.
    pub errno: Option<i64>,
    /// Side effects with resolved module symbols.
    pub side_effects: Vec<CompiledSideEffect>,
    /// Whether the original function is still invoked.
    pub call_original: bool,
    /// Argument rewrites applied before a passed-through call.
    pub arg_modifications: Vec<ArgModification>,
    /// Random-choice pool (one picked per firing when non-empty).
    pub random_choices: Vec<CompiledChoice>,
}

impl CompiledEntry {
    /// The side effects a firing of this entry applies: the chosen pool
    /// member's when a random choice was drawn, the entry's own otherwise.
    /// Shared by live injection and log materialization so the two can
    /// never diverge.
    pub fn side_effects_for(&self, choice: Option<usize>) -> &[CompiledSideEffect] {
        match choice {
            Some(index) => &self.random_choices[index].side_effects,
            None => &self.side_effects,
        }
    }
}

/// All entries of one intercepted function, grouped at compile time so the
/// per-call path evaluates only the triggers relevant to that function
/// (§6.4: overhead grows with the triggers *per function*, not per plan).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFunction {
    /// The intercepted function.
    pub symbol: Symbol,
    /// Whether any entry carries a stack-trace trigger; the (comparatively
    /// expensive) stack inspection is only performed when true.
    pub stack_sensitive: bool,
    /// The entries, in plan order.
    pub entries: Vec<CompiledEntry>,
}

/// A [`Plan`] with every name resolved to a [`Symbol`] and entries grouped
/// by intercepted function — see the module docs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledPlan {
    /// Seed for random triggers/choices, copied from the plan.
    pub seed: Option<u64>,
    /// One slot per intercepted function, in first-appearance order.
    pub functions: Vec<CompiledFunction>,
}

impl CompiledPlan {
    /// The compiled slot for `symbol`, if the plan intercepts it.
    pub fn function(&self, symbol: Symbol) -> Option<&CompiledFunction> {
        self.functions.iter().find(|f| f.symbol == symbol)
    }
}

impl Plan {
    /// Resolves every function name, stack frame and side-effect module in
    /// this plan to interned [`Symbol`]s, grouping entries per function —
    /// the setup-time half of the resolve-once contract (see
    /// [`lfi_intern::Symbol`]).  Interceptor synthesis calls this for you;
    /// call it directly when driving trigger evaluation by hand.
    ///
    /// Compilation *interns* — every name in the plan joins the process-wide
    /// table for the rest of the process (that is what lets the controller
    /// synthesize stubs even for functions no library defines).  Plans are
    /// setup artifacts with a bounded vocabulary, so this is the intended
    /// cost; a service compiling unbounded user-supplied names should
    /// validate them against its fault profiles first.
    pub fn compile(&self) -> CompiledPlan {
        let mut functions: Vec<CompiledFunction> = Vec::new();
        for (plan_index, entry) in self.entries.iter().enumerate() {
            let symbol = Symbol::intern(&entry.function);
            let compiled = CompiledEntry {
                plan_index,
                inject_at_call: entry.trigger.inject_at_call,
                probability: entry.trigger.probability,
                stack_trace: entry.trigger.stack_trace.iter().map(|frame| Symbol::intern(frame)).collect(),
                retval: entry.action.retval,
                errno: entry.action.errno,
                side_effects: entry.action.side_effects.iter().map(CompiledSideEffect::compile).collect(),
                call_original: entry.action.call_original,
                arg_modifications: entry.action.arg_modifications.clone(),
                random_choices: entry
                    .action
                    .random_choices
                    .iter()
                    .map(|choice| CompiledChoice {
                        retval: choice.retval,
                        side_effects: choice.side_effects.iter().map(CompiledSideEffect::compile).collect(),
                    })
                    .collect(),
            };
            let stack_sensitive = !compiled.stack_trace.is_empty();
            match functions.iter_mut().find(|f| f.symbol == symbol) {
                Some(slot) => {
                    slot.stack_sensitive |= stack_sensitive;
                    slot.entries.push(compiled);
                }
                None => functions.push(CompiledFunction { symbol, stack_sensitive, entries: vec![compiled] }),
            }
        }
        CompiledPlan { seed: self.seed, functions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArgOp, FaultAction, PlanEntry, Trigger};
    use lfi_profile::ErrorReturn;

    #[test]
    fn compile_groups_entries_and_resolves_names() {
        let plan = Plan::new()
            .with_seed(9)
            .entry(PlanEntry {
                function: "read".into(),
                trigger: Trigger::on_call(3),
                action: FaultAction::return_value(-1).with_errno(9),
            })
            .entry(PlanEntry {
                function: "write".into(),
                trigger: Trigger::with_probability(0.5).frame("flush"),
                action: FaultAction {
                    side_effects: vec![SideEffect::tls("libc.so.6", 0x10, 4)],
                    random_choices: vec![ErrorReturn::bare(-2)],
                    ..FaultAction::default()
                },
            })
            .entry(PlanEntry {
                function: "read".into(),
                trigger: Trigger::on_call(5),
                action: FaultAction::default().passthrough().modify_arg(2, ArgOp::Sub, 10),
            });
        let compiled = plan.compile();
        assert_eq!(compiled.seed, Some(9));
        assert_eq!(compiled.functions.len(), 2);

        let read = compiled.function(Symbol::intern("read")).unwrap();
        assert_eq!(read.entries.len(), 2);
        assert!(!read.stack_sensitive);
        assert_eq!(read.entries[0].plan_index, 0);
        assert_eq!(read.entries[1].plan_index, 2);
        assert_eq!(read.entries[0].inject_at_call, Some(3));
        assert!(read.entries[1].call_original);
        assert_eq!(read.entries[1].arg_modifications.len(), 1);

        let write = compiled.function(Symbol::intern("write")).unwrap();
        assert!(write.stack_sensitive);
        assert_eq!(write.entries[0].stack_trace, vec![Symbol::intern("flush")]);
        assert_eq!(write.entries[0].side_effects[0].module, Symbol::intern("libc.so.6"));
        assert_eq!(write.entries[0].random_choices[0].retval, -2);
        // The compiled side effect round-trips to its string-keyed form.
        assert_eq!(write.entries[0].side_effects[0].to_side_effect(), SideEffect::tls("libc.so.6", 0x10, 4));

        assert!(compiled.function(Symbol::intern("close_not_in_plan")).is_none());
        assert_eq!(CompiledPlan::default().functions.len(), 0);
    }
}
