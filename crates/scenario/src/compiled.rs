//! The compiled, symbol-resolved form of a [`Plan`] — the resolve-once half
//! of the interception fast path.
//!
//! A [`Plan`] is the XML-facing data model: function names, module names and
//! stack frames are strings, because that is what the §4 scenario language
//! and the fault profiles speak.  [`Plan::compile`] resolves every one of
//! those names to an interned [`Symbol`] exactly once and groups the entries
//! by intercepted function, producing the [`CompiledPlan`] the controller's
//! per-call trigger evaluation runs against.  After compilation, no per-call
//! code touches a string: stack-trace frames compare as ids, TLS/global
//! side-effect modules are ids, and per-function state lives in dense
//! per-function slots.

use lfi_intern::Symbol;
use lfi_profile::{SideEffect, SideEffectKind};

use crate::{ArgModification, FaultAction, Plan, PlanEntry, Trigger};

/// One cell of the fault space an exploration engine walks: inject `retval`
/// (and optionally `errno`) on the `call_ordinal`-th call to `function`.
///
/// A [`CompiledPlan`] is a *set* of such cells plus triggers that do not
/// denote a unique cell (probabilistic and random-choice entries);
/// [`CompiledPlan::cells`] enumerates the deterministic subset, which is what
/// coverage accounting and adaptive exploration (`lfi-explore`) operate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultCell {
    /// The intercepted function.
    pub function: Symbol,
    /// Which call to the function the fault fires on (1-based).
    pub call_ordinal: u64,
    /// The injected return value.
    pub retval: i64,
    /// The injected errno, when the cell carries one (taken from the entry's
    /// errno or its first TLS side effect — the §3.2 errno channel).
    pub errno: Option<i64>,
}

impl FaultCell {
    /// A process-independent ordering key: cells are compared by function
    /// *name* (not symbol id, which depends on interning order), then
    /// ordinal, retval and errno — so any sequence ordered by this key is
    /// reproducible across processes and store reloads.
    pub fn sort_key(&self) -> (&'static str, u64, i64, i64) {
        (self.function.as_str(), self.call_ordinal, self.retval, self.errno.unwrap_or(i64::MIN))
    }

    /// Materializes the cell as a single-fault plan entry (a call-count
    /// trigger with the cell's return value and errno).
    pub fn plan_entry(&self) -> PlanEntry {
        let mut action = FaultAction::return_value(self.retval);
        if let Some(errno) = self.errno {
            action = action.with_errno(errno);
        }
        PlanEntry { function: self.function.as_str().to_owned(), trigger: Trigger::on_call(self.call_ordinal), action }
    }
}

/// A side effect with its module name resolved to a [`Symbol`], applicable
/// per call without allocating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledSideEffect {
    /// Channel used to expose the error detail.
    pub kind: SideEffectKind,
    /// Interned module whose data image holds the location.
    pub module: Symbol,
    /// Offset within the module data image (argument index for
    /// [`SideEffectKind::OutputArg`]).
    pub offset: u32,
    /// Value written into the location.
    pub value: i64,
}

impl CompiledSideEffect {
    fn compile(effect: &SideEffect) -> Self {
        Self { kind: effect.kind, module: Symbol::intern(&effect.module), offset: effect.offset, value: effect.value }
    }

    /// Re-materializes the string-keyed form (report/replay path only).
    pub fn to_side_effect(self) -> SideEffect {
        SideEffect { kind: self.kind, module: self.module.as_str().to_owned(), offset: self.offset, value: self.value }
    }
}

/// One member of a compiled random-choice pool (an
/// [`ErrorReturn`](lfi_profile::ErrorReturn) with resolved side effects).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledChoice {
    /// The injected return value.
    pub retval: i64,
    /// Side effects accompanying this choice.
    pub side_effects: Vec<CompiledSideEffect>,
}

/// One plan entry compiled against the symbol table: triggers and fault with
/// every name resolved, plus the index of the source entry in the original
/// [`Plan`] (so reports can refer back to the authored scenario).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledEntry {
    /// Index of this entry in [`Plan::entries`].
    pub plan_index: usize,
    /// Fire on the n-th call (1-based), if set.
    pub inject_at_call: Option<u64>,
    /// Fire with this probability on each call, if set.
    pub probability: Option<f64>,
    /// Stack-trace frames to match, innermost first, as interned symbols.
    pub stack_trace: Vec<Symbol>,
    /// Return value to inject.
    pub retval: Option<i64>,
    /// errno to set alongside.
    pub errno: Option<i64>,
    /// Side effects with resolved module symbols.
    pub side_effects: Vec<CompiledSideEffect>,
    /// Whether the original function is still invoked.
    pub call_original: bool,
    /// Argument rewrites applied before a passed-through call.
    pub arg_modifications: Vec<ArgModification>,
    /// Random-choice pool (one picked per firing when non-empty).
    pub random_choices: Vec<CompiledChoice>,
}

impl CompiledEntry {
    /// The side effects a firing of this entry applies: the chosen pool
    /// member's when a random choice was drawn, the entry's own otherwise.
    /// Shared by live injection and log materialization so the two can
    /// never diverge.
    pub fn side_effects_for(&self, choice: Option<usize>) -> &[CompiledSideEffect] {
        match choice {
            Some(index) => &self.random_choices[index].side_effects,
            None => &self.side_effects,
        }
    }
}

/// All entries of one intercepted function, grouped at compile time so the
/// per-call path evaluates only the triggers relevant to that function
/// (§6.4: overhead grows with the triggers *per function*, not per plan).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFunction {
    /// The intercepted function.
    pub symbol: Symbol,
    /// Whether any entry carries a stack-trace trigger; the (comparatively
    /// expensive) stack inspection is only performed when true.
    pub stack_sensitive: bool,
    /// The entries, in plan order.
    pub entries: Vec<CompiledEntry>,
}

/// How tightly a synthesized stub can be specialized for one intercepted
/// function, decided once at plan-compile time.
///
/// The overwhelmingly common plan shape — both in the §6.1 campaigns and in
/// the exploration engine, whose [`FaultCell`]s are deterministic by
/// construction — is a single `(function, nth-call, retval, errno)` entry.
/// For that shape the stub does not need to walk entries or branch on
/// trigger kinds per call: the trigger parameters can be baked into the stub
/// at synthesis time, reducing the pass-through path to one counter bump and
/// one compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StubSpecialization {
    /// Exactly one entry, with a deterministic nth-call trigger and a plain
    /// return-value/errno fault (no probability, stack-trace frames, random
    /// choices, side effects, argument rewrites or pass-through): the stub
    /// bakes `(ordinal, retval, errno)` in and every miss is a branch-lean
    /// counter bump.
    DeterministicFault {
        /// The 1-based call ordinal the fault fires on.
        ordinal: u64,
        /// The injected return value (`None` injects the default 0).
        retval: Option<i64>,
        /// The errno set alongside, if any.
        errno: Option<i64>,
    },
    /// Any other entry mix: the stub evaluates the compiled entries per call.
    General,
}

impl CompiledFunction {
    /// The stub shape this function's entries admit — see
    /// [`StubSpecialization`].  Interceptor synthesis calls this once per
    /// slot; the decision never changes after compilation because compiled
    /// entries are immutable.
    pub fn specialization(&self) -> StubSpecialization {
        if let [entry] = self.entries.as_slice() {
            let plain = entry.probability.is_none()
                && entry.stack_trace.is_empty()
                && entry.random_choices.is_empty()
                && entry.side_effects.is_empty()
                && entry.arg_modifications.is_empty()
                && !entry.call_original;
            if plain {
                if let Some(ordinal) = entry.inject_at_call {
                    return StubSpecialization::DeterministicFault {
                        ordinal,
                        retval: entry.retval,
                        errno: entry.errno,
                    };
                }
            }
        }
        StubSpecialization::General
    }
}

/// A [`Plan`] with every name resolved to a [`Symbol`] and entries grouped
/// by intercepted function — see the module docs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledPlan {
    /// Seed for random triggers/choices, copied from the plan.
    pub seed: Option<u64>,
    /// One slot per intercepted function, in first-appearance order.
    pub functions: Vec<CompiledFunction>,
}

impl CompiledPlan {
    /// The compiled slot for `symbol`, if the plan intercepts it.
    pub fn function(&self, symbol: Symbol) -> Option<&CompiledFunction> {
        self.functions.iter().find(|f| f.symbol == symbol)
    }

    /// Enumerates the deterministic (function, error, nth-call) cells of this
    /// plan — every entry with a call-count trigger and a fixed return value.
    /// Probabilistic triggers and random-choice pools do not denote a unique
    /// cell and are skipped; an entry's errno falls back to its first TLS
    /// side-effect value (the errno channel of §3.2).
    ///
    /// This is the fault-space view `lfi-explore` builds its coverage
    /// accounting and exploration frontier on.
    pub fn cells(&self) -> Vec<FaultCell> {
        let mut cells = Vec::new();
        for function in &self.functions {
            for entry in &function.entries {
                let Some(call_ordinal) = entry.inject_at_call else {
                    continue;
                };
                if entry.probability.is_some() || !entry.random_choices.is_empty() {
                    continue;
                }
                let Some(retval) = entry.retval else { continue };
                let errno = entry
                    .errno
                    .or_else(|| entry.side_effects.iter().find(|e| e.kind == SideEffectKind::Tls).map(|e| e.value));
                cells.push(FaultCell { function: function.symbol, call_ordinal, retval, errno });
            }
        }
        cells
    }
}

impl Plan {
    /// Resolves every function name, stack frame and side-effect module in
    /// this plan to interned [`Symbol`]s, grouping entries per function —
    /// the setup-time half of the resolve-once contract (see
    /// [`lfi_intern::Symbol`]).  Interceptor synthesis calls this for you;
    /// call it directly when driving trigger evaluation by hand.
    ///
    /// Compilation *interns* — every name in the plan joins the process-wide
    /// table for the rest of the process (that is what lets the controller
    /// synthesize stubs even for functions no library defines).  Plans are
    /// setup artifacts with a bounded vocabulary, so this is the intended
    /// cost; a service compiling unbounded user-supplied names should
    /// validate them against its fault profiles first.
    pub fn compile(&self) -> CompiledPlan {
        let mut functions: Vec<CompiledFunction> = Vec::new();
        for (plan_index, entry) in self.entries.iter().enumerate() {
            let symbol = Symbol::intern(&entry.function);
            let compiled = CompiledEntry {
                plan_index,
                inject_at_call: entry.trigger.inject_at_call,
                probability: entry.trigger.probability,
                stack_trace: entry.trigger.stack_trace.iter().map(|frame| Symbol::intern(frame)).collect(),
                retval: entry.action.retval,
                errno: entry.action.errno,
                side_effects: entry.action.side_effects.iter().map(CompiledSideEffect::compile).collect(),
                call_original: entry.action.call_original,
                arg_modifications: entry.action.arg_modifications.clone(),
                random_choices: entry
                    .action
                    .random_choices
                    .iter()
                    .map(|choice| CompiledChoice {
                        retval: choice.retval,
                        side_effects: choice.side_effects.iter().map(CompiledSideEffect::compile).collect(),
                    })
                    .collect(),
            };
            let stack_sensitive = !compiled.stack_trace.is_empty();
            match functions.iter_mut().find(|f| f.symbol == symbol) {
                Some(slot) => {
                    slot.stack_sensitive |= stack_sensitive;
                    slot.entries.push(compiled);
                }
                None => functions.push(CompiledFunction { symbol, stack_sensitive, entries: vec![compiled] }),
            }
        }
        CompiledPlan { seed: self.seed, functions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArgOp, FaultAction, PlanEntry, Trigger};
    use lfi_profile::ErrorReturn;

    #[test]
    fn compile_groups_entries_and_resolves_names() {
        let plan = Plan::new()
            .with_seed(9)
            .entry(PlanEntry {
                function: "read".into(),
                trigger: Trigger::on_call(3),
                action: FaultAction::return_value(-1).with_errno(9),
            })
            .entry(PlanEntry {
                function: "write".into(),
                trigger: Trigger::with_probability(0.5).frame("flush"),
                action: FaultAction {
                    side_effects: vec![SideEffect::tls("libc.so.6", 0x10, 4)],
                    random_choices: vec![ErrorReturn::bare(-2)],
                    ..FaultAction::default()
                },
            })
            .entry(PlanEntry {
                function: "read".into(),
                trigger: Trigger::on_call(5),
                action: FaultAction::default().passthrough().modify_arg(2, ArgOp::Sub, 10),
            });
        let compiled = plan.compile();
        assert_eq!(compiled.seed, Some(9));
        assert_eq!(compiled.functions.len(), 2);

        let read = compiled.function(Symbol::intern("read")).unwrap();
        assert_eq!(read.entries.len(), 2);
        assert!(!read.stack_sensitive);
        assert_eq!(read.entries[0].plan_index, 0);
        assert_eq!(read.entries[1].plan_index, 2);
        assert_eq!(read.entries[0].inject_at_call, Some(3));
        assert!(read.entries[1].call_original);
        assert_eq!(read.entries[1].arg_modifications.len(), 1);

        let write = compiled.function(Symbol::intern("write")).unwrap();
        assert!(write.stack_sensitive);
        assert_eq!(write.entries[0].stack_trace, vec![Symbol::intern("flush")]);
        assert_eq!(write.entries[0].side_effects[0].module, Symbol::intern("libc.so.6"));
        assert_eq!(write.entries[0].random_choices[0].retval, -2);
        // The compiled side effect round-trips to its string-keyed form.
        assert_eq!(write.entries[0].side_effects[0].to_side_effect(), SideEffect::tls("libc.so.6", 0x10, 4));

        assert!(compiled.function(Symbol::intern("close_not_in_plan")).is_none());
        assert_eq!(CompiledPlan::default().functions.len(), 0);
    }

    #[test]
    fn specialization_admits_only_plain_single_deterministic_entries() {
        let deterministic = |function: &str| PlanEntry {
            function: function.into(),
            trigger: Trigger::on_call(7),
            action: FaultAction::return_value(-1).with_errno(9),
        };
        let compiled = Plan::new().entry(deterministic("read")).compile();
        assert_eq!(
            compiled.functions[0].specialization(),
            StubSpecialization::DeterministicFault { ordinal: 7, retval: Some(-1), errno: Some(9) }
        );

        // Every disqualifier falls back to the general stub: a second entry
        // on the same function, a probabilistic or stack-trace trigger, a
        // random-choice pool, side effects, argument rewrites, pass-through,
        // or the absence of a call-count trigger.
        let general_plans = vec![
            Plan::new().entry(deterministic("read")).entry(deterministic("read")),
            Plan::new().entry(PlanEntry {
                function: "read".into(),
                trigger: Trigger::with_probability(0.5),
                action: FaultAction::return_value(-1),
            }),
            Plan::new().entry(PlanEntry {
                function: "read".into(),
                trigger: Trigger::on_call(1).frame("caller"),
                action: FaultAction::return_value(-1),
            }),
            Plan::new().entry(PlanEntry {
                function: "read".into(),
                trigger: Trigger::on_call(1),
                action: FaultAction { random_choices: vec![ErrorReturn::bare(-2)], ..FaultAction::default() },
            }),
            Plan::new().entry(PlanEntry {
                function: "read".into(),
                trigger: Trigger::on_call(1),
                action: FaultAction {
                    retval: Some(-1),
                    side_effects: vec![SideEffect::tls("libc.so.6", 0x10, 4)],
                    ..FaultAction::default()
                },
            }),
            Plan::new().entry(PlanEntry {
                function: "read".into(),
                trigger: Trigger::on_call(1),
                action: FaultAction::default().passthrough().modify_arg(2, ArgOp::Sub, 10),
            }),
        ];
        for plan in general_plans {
            let compiled = plan.compile();
            assert_eq!(compiled.functions[0].specialization(), StubSpecialization::General, "{plan:?}");
        }

        // A probability-free trigger with no ordinal (never fires) is also
        // general: there is no (nth-call) parameter to bake in.
        let monitoring = Plan::new()
            .entry(PlanEntry { function: "read".into(), trigger: Trigger::default(), action: FaultAction::default() })
            .compile();
        assert_eq!(monitoring.functions[0].specialization(), StubSpecialization::General);
    }

    #[test]
    fn cell_enumeration_covers_deterministic_entries_only() {
        let plan = Plan::new()
            .entry(PlanEntry {
                function: "read".into(),
                trigger: Trigger::on_call(1),
                action: FaultAction::return_value(-1).with_errno(9),
            })
            .entry(PlanEntry {
                // errno via a TLS side effect instead of the errno attribute.
                function: "close".into(),
                trigger: Trigger::on_call(2),
                action: FaultAction {
                    retval: Some(-1),
                    side_effects: vec![SideEffect::tls("libc.so.6", 0x12fff4, 5)],
                    ..FaultAction::default()
                },
            })
            .entry(PlanEntry {
                // Probabilistic: not a unique cell.
                function: "write".into(),
                trigger: Trigger::with_probability(0.5),
                action: FaultAction::return_value(-1),
            })
            .entry(PlanEntry {
                // Random-choice pool: not a unique cell.
                function: "send".into(),
                trigger: Trigger::on_call(1),
                action: FaultAction { random_choices: vec![ErrorReturn::bare(-2)], ..FaultAction::default() },
            })
            .entry(PlanEntry {
                // No return value: pure argument modification, not a cell.
                function: "recv".into(),
                trigger: Trigger::on_call(1),
                action: FaultAction::default().passthrough().modify_arg(1, ArgOp::Sub, 1),
            });
        let cells = plan.compile().cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(
            cells[0],
            FaultCell { function: Symbol::intern("read"), call_ordinal: 1, retval: -1, errno: Some(9) }
        );
        assert_eq!(
            cells[1],
            FaultCell { function: Symbol::intern("close"), call_ordinal: 2, retval: -1, errno: Some(5) }
        );

        // The sort key orders by name, not interning order, and a cell
        // round-trips into a single-fault plan entry.
        assert!(cells[1].sort_key() < cells[0].sort_key());
        let entry = cells[0].plan_entry();
        assert_eq!(entry.function, "read");
        assert_eq!(entry.trigger.inject_at_call, Some(1));
        assert_eq!(entry.action.retval, Some(-1));
        assert_eq!(entry.action.errno, Some(9));
        // A cell without errno leaves the action's errno unset.
        let bare = FaultCell { function: Symbol::intern("read"), call_ordinal: 3, retval: 0, errno: None };
        assert_eq!(bare.plan_entry().action.errno, None);
        assert_eq!(bare.sort_key().3, i64::MIN);
    }
}
