use std::fmt;

use lfi_profile::xml::{self, XmlElement};
use lfi_profile::{ErrorReturn, SideEffect, SideEffectKind};
use serde::{Deserialize, Serialize};

use crate::errno::{errno_name, parse_errno};
use crate::ScenarioError;

/// Operation applied by an argument modification (`<modify op="..">`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArgOp {
    /// Replace the argument with the value.
    Set,
    /// Add the value to the argument.
    Add,
    /// Subtract the value from the argument.
    Sub,
    /// Bitwise-and the argument with the value.
    And,
    /// Bitwise-or the argument with the value.
    Or,
}

impl ArgOp {
    /// Applies the operation to an argument value.
    pub fn apply(self, argument: i64, value: i64) -> i64 {
        match self {
            ArgOp::Set => value,
            ArgOp::Add => argument.wrapping_add(value),
            ArgOp::Sub => argument.wrapping_sub(value),
            ArgOp::And => argument & value,
            ArgOp::Or => argument | value,
        }
    }

    fn parse(text: &str) -> Option<Self> {
        match text {
            "set" => Some(ArgOp::Set),
            "add" => Some(ArgOp::Add),
            "sub" => Some(ArgOp::Sub),
            "and" => Some(ArgOp::And),
            "or" => Some(ArgOp::Or),
            _ => None,
        }
    }
}

impl fmt::Display for ArgOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArgOp::Set => "set",
            ArgOp::Add => "add",
            ArgOp::Sub => "sub",
            ArgOp::And => "and",
            ArgOp::Or => "or",
        };
        f.write_str(s)
    }
}

/// One `<modify argument=".." op=".." value=".." />` element: rewrite an
/// argument before (optionally) passing the call through to the original
/// function, like the paper's "subtract 10 from the byte count" example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArgModification {
    /// Index of the argument to rewrite (0-based).
    pub argument: u8,
    /// Operation applied.
    pub op: ArgOp,
    /// Operand of the operation.
    pub value: i64,
}

/// The condition part of a `<trigger, fault>` tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Trigger {
    /// Fire on the n-th call to the function (1-based), if set.
    pub inject_at_call: Option<u64>,
    /// Fire independently on each call with this probability, if set.
    pub probability: Option<f64>,
    /// Partial stack trace that must match the innermost frames of the
    /// runtime backtrace for the trigger to fire.
    pub stack_trace: Vec<String>,
}

impl Trigger {
    /// A trigger that fires on the n-th call.
    pub fn on_call(n: u64) -> Self {
        Self { inject_at_call: Some(n), ..Self::default() }
    }

    /// A trigger that fires with the given probability on every call.
    pub fn with_probability(p: f64) -> Self {
        Self { probability: Some(p), ..Self::default() }
    }

    /// Adds a required stack-trace frame (outer frames appended last).
    pub fn frame(mut self, frame: impl Into<String>) -> Self {
        self.stack_trace.push(frame.into());
        self
    }
}

/// The fault part of a `<trigger, fault>` tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultAction {
    /// Return value to inject (`None` leaves the return value untouched,
    /// useful for pure argument-modification entries).
    pub retval: Option<i64>,
    /// errno value to set alongside the return value.
    pub errno: Option<i64>,
    /// Side effects (from the fault profile) to apply.
    pub side_effects: Vec<SideEffect>,
    /// Whether the original function is still invoked.
    pub call_original: bool,
    /// Argument rewrites applied before a passed-through call.
    pub arg_modifications: Vec<ArgModification>,
    /// When non-empty, the injector picks one of these error returns at
    /// random each time the trigger fires (used by random scenarios).
    pub random_choices: Vec<ErrorReturn>,
}

impl FaultAction {
    /// An action that injects a fixed return value.
    pub fn return_value(retval: i64) -> Self {
        Self { retval: Some(retval), ..Self::default() }
    }

    /// Sets the errno injected alongside the return value.
    pub fn with_errno(mut self, errno: i64) -> Self {
        self.errno = Some(errno);
        self
    }

    /// Passes the call through to the original function after injection.
    pub fn passthrough(mut self) -> Self {
        self.call_original = true;
        self
    }

    /// Adds an argument modification.
    pub fn modify_arg(mut self, argument: u8, op: ArgOp, value: i64) -> Self {
        self.arg_modifications.push(ArgModification { argument, op, value });
        self
    }
}

/// One `<function …>` entry in a plan: a trigger paired with a fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanEntry {
    /// Name of the intercepted function.
    pub function: String,
    /// When to inject.
    pub trigger: Trigger,
    /// What to inject.
    pub action: FaultAction,
}

/// A fault injection scenario ("faultload", §4): a set of `<trigger, fault>`
/// tuples plus an optional seed for random triggers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Plan {
    /// The plan entries, evaluated in order on every intercepted call.
    pub entries: Vec<PlanEntry>,
    /// Seed for the controller's random number generator (random triggers and
    /// random choice pools); `None` lets the controller pick.
    pub seed: Option<u64>,
}

impl Plan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an entry (builder style).
    pub fn entry(mut self, entry: PlanEntry) -> Self {
        self.entries.push(entry);
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Number of entries (the "number of triggers" axis of Tables 3 and 4).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the plan has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries that intercept a given function.
    pub fn entries_for<'a>(&'a self, function: &'a str) -> impl Iterator<Item = &'a PlanEntry> + 'a {
        self.entries.iter().filter(move |e| e.function == function)
    }

    /// The set of function names this plan intercepts.
    pub fn intercepted_functions(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.entries.iter().map(|e| e.function.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Serializes the plan to the XML dialect of §4.
    pub fn to_xml(&self) -> String {
        let mut root = XmlElement::new("plan");
        if let Some(seed) = self.seed {
            root = root.attr("seed", seed);
        }
        for entry in &self.entries {
            let mut fe = XmlElement::new("function").attr("name", &entry.function);
            if let Some(n) = entry.trigger.inject_at_call {
                fe = fe.attr("inject", n);
            }
            if let Some(p) = entry.trigger.probability {
                fe = fe.attr("probability", p);
            }
            if let Some(retval) = entry.action.retval {
                fe = fe.attr("retval", retval);
            }
            if let Some(errno) = entry.action.errno {
                match errno_name(errno) {
                    Some(name) => fe = fe.attr("errno", name),
                    None => fe = fe.attr("errno", errno),
                }
            }
            fe = fe.attr("calloriginal", entry.action.call_original);
            if !entry.trigger.stack_trace.is_empty() {
                let mut st = XmlElement::new("stacktrace");
                for frame in &entry.trigger.stack_trace {
                    st = st.child(XmlElement::new("frame").text(frame));
                }
                fe = fe.child(st);
            }
            for modification in &entry.action.arg_modifications {
                fe = fe.child(
                    XmlElement::new("modify")
                        .attr("argument", modification.argument)
                        .attr("op", modification.op)
                        .attr("value", modification.value),
                );
            }
            for effect in &entry.action.side_effects {
                fe = fe.child(side_effect_element(effect));
            }
            for choice in &entry.action.random_choices {
                let mut ce = XmlElement::new("choice").attr("retval", choice.retval);
                for effect in &choice.side_effects {
                    ce = ce.child(side_effect_element(effect));
                }
                fe = fe.child(ce);
            }
            root = root.child(fe);
        }
        root.to_xml_string()
    }

    /// Parses a plan from its XML form.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] if the document is not well-formed XML or
    /// does not follow the plan schema.
    pub fn from_xml(text: &str) -> Result<Plan, ScenarioError> {
        let root = xml::parse(text)?;
        if root.name != "plan" {
            return Err(ScenarioError::schema(format!("expected <plan>, found <{}>", root.name)));
        }
        let seed = match root.attribute("seed") {
            Some(text) => Some(text.parse::<u64>().map_err(|_| ScenarioError::invalid_number("seed", text))?),
            None => None,
        };
        let mut entries = Vec::new();
        for fe in root.children_named("function") {
            let function = fe
                .attribute("name")
                .ok_or_else(|| ScenarioError::schema("<function> missing name attribute"))?
                .to_owned();
            let mut trigger = Trigger::default();
            if let Some(text) = fe.attribute("inject") {
                trigger.inject_at_call =
                    Some(text.parse::<u64>().map_err(|_| ScenarioError::invalid_number("inject", text))?);
            }
            if let Some(text) = fe.attribute("probability") {
                trigger.probability =
                    Some(text.parse::<f64>().map_err(|_| ScenarioError::invalid_number("probability", text))?);
            }
            if let Some(st) = fe.first_child("stacktrace") {
                for frame in st.children_named("frame") {
                    trigger.stack_trace.push(frame.text_content());
                }
            }
            let mut action = FaultAction::default();
            if let Some(text) = fe.attribute("retval") {
                action.retval = Some(text.parse::<i64>().map_err(|_| ScenarioError::invalid_number("retval", text))?);
            }
            if let Some(text) = fe.attribute("errno") {
                action.errno = Some(parse_errno(text).ok_or_else(|| ScenarioError::invalid_number("errno", text))?);
            }
            action.call_original = matches!(fe.attribute("calloriginal"), Some("true") | Some("1"));
            for me in fe.children_named("modify") {
                let argument = parse_attr_u8(me, "argument")?;
                let op_text =
                    me.attribute("op").ok_or_else(|| ScenarioError::schema("<modify> missing op attribute"))?;
                let op = ArgOp::parse(op_text)
                    .ok_or_else(|| ScenarioError::schema(format!("unknown modify op {op_text:?}")))?;
                let value_text = me
                    .attribute("value")
                    .ok_or_else(|| ScenarioError::schema("<modify> missing value attribute"))?;
                let value = value_text
                    .parse::<i64>()
                    .map_err(|_| ScenarioError::invalid_number("value", value_text))?;
                action.arg_modifications.push(ArgModification { argument, op, value });
            }
            for se in fe.children_named("side-effect") {
                action.side_effects.push(parse_side_effect(se)?);
            }
            for ce in fe.children_named("choice") {
                let retval_text = ce
                    .attribute("retval")
                    .ok_or_else(|| ScenarioError::schema("<choice> missing retval attribute"))?;
                let retval = retval_text
                    .parse::<i64>()
                    .map_err(|_| ScenarioError::invalid_number("retval", retval_text))?;
                let mut side_effects = Vec::new();
                for se in ce.children_named("side-effect") {
                    side_effects.push(parse_side_effect(se)?);
                }
                action.random_choices.push(ErrorReturn { retval, side_effects });
            }
            entries.push(PlanEntry { function, trigger, action });
        }
        Ok(Plan { entries, seed })
    }
}

fn side_effect_element(effect: &SideEffect) -> XmlElement {
    XmlElement::new("side-effect")
        .attr("type", effect.kind)
        .attr("module", &effect.module)
        .attr("offset", format!("{:X}", effect.offset))
        .text(effect.value.to_string())
}

fn parse_side_effect(se: &XmlElement) -> Result<SideEffect, ScenarioError> {
    let kind = match se.attribute("type") {
        Some("TLS") => SideEffectKind::Tls,
        Some("global") => SideEffectKind::Global,
        Some("argument") => SideEffectKind::OutputArg,
        other => return Err(ScenarioError::schema(format!("unknown side-effect type {other:?}"))),
    };
    let module = se.attribute("module").unwrap_or("").to_owned();
    let offset_text = se.attribute("offset").unwrap_or("0");
    let offset =
        u32::from_str_radix(offset_text, 16).map_err(|_| ScenarioError::invalid_number("offset", offset_text))?;
    let value_text = se.text_content();
    let value = value_text
        .parse::<i64>()
        .map_err(|_| ScenarioError::invalid_number("side-effect value", &value_text))?;
    Ok(SideEffect { kind, module, offset, value })
}

fn parse_attr_u8(element: &XmlElement, name: &str) -> Result<u8, ScenarioError> {
    let text = element
        .attribute(name)
        .ok_or_else(|| ScenarioError::schema(format!("<{}> missing {name} attribute", element.name)))?;
    text.parse::<u8>().map_err(|_| ScenarioError::invalid_number(name, text))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_plan() -> Plan {
        Plan::new()
            .entry(PlanEntry {
                function: "readdir64".into(),
                trigger: Trigger::on_call(5),
                action: FaultAction::return_value(0).with_errno(9),
            })
            .entry(PlanEntry {
                function: "readdir".into(),
                trigger: Trigger::on_call(5).frame("0xb824490").frame("refresh_files"),
                action: FaultAction::return_value(0).with_errno(9),
            })
            .entry(PlanEntry {
                function: "read".into(),
                trigger: Trigger::on_call(20),
                action: FaultAction::default().passthrough().modify_arg(3, ArgOp::Sub, 10),
            })
    }

    #[test]
    fn paper_example_round_trips() {
        let plan = paper_plan();
        let xml = plan.to_xml();
        assert!(xml.contains("errno=\"EBADF\""));
        assert!(xml.contains("calloriginal=\"false\""));
        assert!(xml.contains("<frame>refresh_files</frame>"));
        assert!(xml.contains("op=\"sub\""));
        let parsed = Plan::from_xml(&xml).unwrap();
        assert_eq!(parsed, plan);
    }

    #[test]
    fn paper_snippet_parses_directly() {
        let xml = r#"
        <plan>
          <function name="readdir64" inject="5" retval="0" errno="EBADF" calloriginal="false" />
          <function name="readdir" inject="5" retval="0" errno="EBADF" calloriginal="false">
            <stacktrace>
              <frame>0xb824490</frame>
              <frame>refresh_files</frame>
            </stacktrace>
          </function>
          <function name="read" inject="20" calloriginal="true">
            <modify argument="3" op="sub" value="10" />
          </function>
        </plan>"#;
        let plan = Plan::from_xml(xml).unwrap();
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.entries[0].action.errno, Some(9));
        assert_eq!(plan.entries[1].trigger.stack_trace, vec!["0xb824490".to_owned(), "refresh_files".to_owned()]);
        assert!(plan.entries[2].action.call_original);
        assert_eq!(plan.entries[2].action.arg_modifications[0].op, ArgOp::Sub);
        assert_eq!(plan.intercepted_functions(), vec!["read", "readdir", "readdir64"]);
    }

    #[test]
    fn random_choice_pools_round_trip() {
        let plan = Plan::new().with_seed(42).entry(PlanEntry {
            function: "write".into(),
            trigger: Trigger::with_probability(0.1),
            action: FaultAction {
                random_choices: vec![
                    ErrorReturn { retval: -1, side_effects: vec![SideEffect::tls("libc.so.6", 0x12fff4, 4)] },
                    ErrorReturn::bare(-2),
                ],
                ..FaultAction::default()
            },
        });
        let parsed = Plan::from_xml(&plan.to_xml()).unwrap();
        assert_eq!(parsed, plan);
        assert_eq!(parsed.seed, Some(42));
        assert_eq!(parsed.entries[0].trigger.probability, Some(0.1));
        assert_eq!(parsed.entries[0].action.random_choices.len(), 2);
    }

    #[test]
    fn arg_op_semantics() {
        assert_eq!(ArgOp::Set.apply(7, 3), 3);
        assert_eq!(ArgOp::Add.apply(7, 3), 10);
        assert_eq!(ArgOp::Sub.apply(7, 3), 4);
        assert_eq!(ArgOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(ArgOp::Or.apply(0b1100, 0b1010), 0b1110);
    }

    #[test]
    fn schema_violations_are_reported() {
        assert!(Plan::from_xml("<profile />").is_err());
        assert!(Plan::from_xml("<plan><function /></plan>").is_err());
        assert!(Plan::from_xml("<plan><function name=\"f\" inject=\"x\" /></plan>").is_err());
        assert!(Plan::from_xml("<plan><function name=\"f\" errno=\"EWEIRD\" /></plan>").is_err());
        assert!(Plan::from_xml(
            "<plan><function name=\"f\"><modify argument=\"0\" op=\"frob\" value=\"1\" /></function></plan>"
        )
        .is_err());
        assert!(Plan::from_xml("not xml at all").is_err());
    }

    #[test]
    fn unnamed_errno_values_serialize_numerically() {
        let plan = Plan::new().entry(PlanEntry {
            function: "f".into(),
            trigger: Trigger::on_call(1),
            action: FaultAction::return_value(-1).with_errno(12345),
        });
        let xml = plan.to_xml();
        assert!(xml.contains("errno=\"12345\""));
        assert_eq!(Plan::from_xml(&xml).unwrap(), plan);
    }

    #[test]
    fn entries_for_filters_by_function() {
        let plan = paper_plan();
        assert_eq!(plan.entries_for("readdir").count(), 1);
        assert_eq!(plan.entries_for("missing").count(), 0);
        assert!(!plan.is_empty());
    }
}
