//! Deprecated free-function shims over the [`crate::generator`] types.
//!
//! Scenario generation is now pluggable through the
//! [`ScenarioGenerator`] trait; these
//! wrappers keep the original §4 entry points compiling for downstream code
//! and will be removed in a future release.

use lfi_profile::FaultProfile;

use crate::generator::{Exhaustive, Random, ScenarioGenerator, TriggerLoad};
use crate::{Plan, ScenarioError};

/// Generates the *exhaustive* scenario (§4).
#[deprecated(since = "0.1.0", note = "use lfi_scenario::generator::Exhaustive")]
pub fn exhaustive(profiles: &[FaultProfile]) -> Plan {
    Exhaustive.generate(profiles)
}

/// Generates the *random* scenario (§4).
///
/// # Errors
///
/// Returns [`ScenarioError::InvalidProbability`] when `probability` is NaN or
/// outside `[0, 1]` — previously such values silently produced degenerate
/// plans.
#[deprecated(since = "0.1.0", note = "use lfi_scenario::generator::Random")]
pub fn random(profiles: &[FaultProfile], probability: f64, seed: u64) -> Result<Plan, ScenarioError> {
    Ok(Random::new(probability, seed)?.generate(profiles))
}

/// Generates a plan with exactly `count` call-count triggers spread over the
/// given functions (the Tables 3/4 overhead construction).
#[deprecated(since = "0.1.0", note = "use lfi_scenario::generator::TriggerLoad")]
pub fn trigger_load(profiles: &[FaultProfile], functions: &[&str], count: usize, passthrough: bool, seed: u64) -> Plan {
    TriggerLoad::new(functions.iter().copied(), count, seed)
        .passthrough(passthrough)
        .generate(profiles)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use lfi_profile::{ErrorReturn, FunctionProfile};

    fn demo_profile() -> FaultProfile {
        let mut profile = FaultProfile::new("libc.so.6");
        profile.push_function(FunctionProfile {
            name: "read".into(),
            error_returns: vec![ErrorReturn::bare(-1), ErrorReturn::bare(0)],
        });
        profile
    }

    #[test]
    fn shims_delegate_to_the_generators() {
        let profiles = [demo_profile()];
        assert_eq!(exhaustive(&profiles), Exhaustive.generate(&profiles));
        assert_eq!(random(&profiles, 0.1, 7).unwrap(), Random::new(0.1, 7).unwrap().generate(&profiles));
        assert_eq!(
            trigger_load(&profiles, &["read"], 5, true, 3),
            TriggerLoad::new(["read"], 5, 3).generate(&profiles)
        );
    }

    #[test]
    fn random_shim_rejects_invalid_probabilities() {
        let profiles = [demo_profile()];
        assert!(matches!(random(&profiles, f64::NAN, 1), Err(ScenarioError::InvalidProbability { .. })));
        assert!(matches!(random(&profiles, -0.5, 1), Err(ScenarioError::InvalidProbability { .. })));
        assert!(matches!(random(&profiles, 1.5, 1), Err(ScenarioError::InvalidProbability { .. })));
    }
}
