//! Automatic scenario generation (§4): exhaustive and random faultloads
//! derived from fault profiles, so that "in many cases, testers need not do
//! any manual work".

use lfi_profile::FaultProfile;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{FaultAction, Plan, PlanEntry, Trigger};

/// Generates the *exhaustive* scenario: every exported function of every
/// profiled library is included, and consecutive calls to a function iterate
/// through its possible error codes (call 1 injects the first fault, call 2
/// the second, …).
pub fn exhaustive(profiles: &[FaultProfile]) -> Plan {
    let mut plan = Plan::new();
    for profile in profiles {
        for function in &profile.functions {
            let mut call_ordinal = 1u64;
            for error in &function.error_returns {
                if error.side_effects.is_empty() {
                    plan.entries.push(PlanEntry {
                        function: function.name.clone(),
                        trigger: Trigger::on_call(call_ordinal),
                        action: FaultAction { retval: Some(error.retval), ..FaultAction::default() },
                    });
                    call_ordinal += 1;
                } else {
                    for effect in &error.side_effects {
                        plan.entries.push(PlanEntry {
                            function: function.name.clone(),
                            trigger: Trigger::on_call(call_ordinal),
                            action: FaultAction {
                                retval: Some(error.retval),
                                side_effects: vec![effect.clone()],
                                ..FaultAction::default()
                            },
                        });
                        call_ordinal += 1;
                    }
                }
            }
        }
    }
    plan
}

/// Generates the *random* scenario: each profiled function gets one
/// probability-triggered entry whose injected error is drawn uniformly from
/// the function's fault set every time the trigger fires.
pub fn random(profiles: &[FaultProfile], probability: f64, seed: u64) -> Plan {
    let mut plan = Plan::new().with_seed(seed);
    for profile in profiles {
        for function in &profile.functions {
            if function.error_returns.is_empty() {
                continue;
            }
            plan.entries.push(PlanEntry {
                function: function.name.clone(),
                trigger: Trigger::with_probability(probability),
                action: FaultAction { random_choices: function.error_returns.clone(), ..FaultAction::default() },
            });
        }
    }
    plan
}

/// Generates a plan with exactly `count` call-count triggers spread over the
/// given functions, drawing error codes from the profiles.  This is the
/// "N triggers on the top-K most-called functions" construction used by the
/// overhead experiments (Tables 3 and 4); `passthrough` keeps the benchmark
/// completing by always calling the original function.
pub fn trigger_load(
    profiles: &[FaultProfile],
    functions: &[&str],
    count: usize,
    passthrough: bool,
    seed: u64,
) -> Plan {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut plan = Plan::new().with_seed(seed);
    if functions.is_empty() || count == 0 {
        return plan;
    }
    // Collect the fault pool per function (empty profiles fall back to -1).
    let pool_for = |name: &str| -> Vec<i64> {
        for profile in profiles {
            if let Some(function) = profile.function(name) {
                let values: Vec<i64> = function.error_values().into_iter().collect();
                if !values.is_empty() {
                    return values;
                }
            }
        }
        vec![-1]
    };
    for i in 0..count {
        let function = functions[i % functions.len()];
        let pool = pool_for(function);
        let retval = *pool.choose(&mut rng).expect("pool is never empty");
        let inject_at = rng.gen_range(1..=1000u64);
        let mut action = FaultAction::return_value(retval);
        action.call_original = passthrough;
        plan.entries.push(PlanEntry {
            function: function.to_owned(),
            trigger: Trigger::on_call(inject_at),
            action,
        });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_profile::{ErrorReturn, FunctionProfile, SideEffect};

    fn demo_profile() -> FaultProfile {
        let mut profile = FaultProfile::new("libc.so.6");
        profile.push_function(FunctionProfile {
            name: "close".into(),
            error_returns: vec![ErrorReturn {
                retval: -1,
                side_effects: vec![
                    SideEffect::tls("libc.so.6", 0x12fff4, 9),
                    SideEffect::tls("libc.so.6", 0x12fff4, 5),
                ],
            }],
        });
        profile.push_function(FunctionProfile {
            name: "read".into(),
            error_returns: vec![ErrorReturn::bare(-1), ErrorReturn::bare(0)],
        });
        profile.push_function(FunctionProfile::new("getpid"));
        profile
    }

    #[test]
    fn exhaustive_iterates_error_codes_per_call() {
        let plan = exhaustive(&[demo_profile()]);
        // close: 2 errno alternatives; read: 2 bare error codes; getpid: none.
        assert_eq!(plan.len(), 4);
        let close_entries: Vec<_> = plan.entries_for("close").collect();
        assert_eq!(close_entries[0].trigger.inject_at_call, Some(1));
        assert_eq!(close_entries[1].trigger.inject_at_call, Some(2));
        assert_eq!(close_entries[0].action.side_effects[0].value, 9);
        assert_eq!(close_entries[1].action.side_effects[0].value, 5);
        let read_entries: Vec<_> = plan.entries_for("read").collect();
        assert_eq!(read_entries.len(), 2);
        assert!(plan.entries_for("getpid").next().is_none());
        assert!(!plan.entries.iter().any(|e| e.action.call_original));
    }

    #[test]
    fn random_scenario_has_one_entry_per_faulty_function() {
        let plan = random(&[demo_profile()], 0.1, 7);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.seed, Some(7));
        for entry in &plan.entries {
            assert_eq!(entry.trigger.probability, Some(0.1));
            assert!(!entry.action.random_choices.is_empty());
        }
    }

    #[test]
    fn trigger_load_produces_requested_count_and_is_deterministic() {
        let profiles = [demo_profile()];
        let a = trigger_load(&profiles, &["close", "read"], 100, true, 99);
        let b = trigger_load(&profiles, &["close", "read"], 100, true, 99);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.entries.iter().all(|e| e.action.call_original));
        // Functions without profile data fall back to -1.
        let c = trigger_load(&profiles, &["unknown_fn"], 3, false, 1);
        assert!(c.entries.iter().all(|e| e.action.retval == Some(-1)));
        assert!(trigger_load(&profiles, &[], 10, false, 1).is_empty());
        assert!(trigger_load(&profiles, &["close"], 0, false, 1).is_empty());
    }

    #[test]
    fn xml_round_trip_of_generated_plans() {
        let plan = exhaustive(&[demo_profile()]);
        assert_eq!(Plan::from_xml(&plan.to_xml()).unwrap(), plan);
        let plan = random(&[demo_profile()], 0.25, 3);
        assert_eq!(Plan::from_xml(&plan.to_xml()).unwrap(), plan);
    }
}
