//! The [`ScenarioGenerator`] abstraction: pluggable faultload generators.
//!
//! §4 of the paper describes scenario generation as an open-ended activity —
//! exhaustive sweeps, random sampling, ready-made libc faultloads, and
//! hand-written plans all coexist.  This module turns that into a first-class
//! trait so campaigns can be parameterized by *how* their faultload is
//! produced: the built-in generators ([`Exhaustive`], [`Random`],
//! [`ReadyMade`], [`TriggerLoad`]) plus the combinators ([`Filtered`],
//! [`Composite`]) cover the paper's §4 catalogue, and user crates can plug in
//! their own implementations.
//!
//! ```
//! use lfi_profile::{ErrorReturn, FaultProfile, FunctionProfile};
//! use lfi_scenario::generator::{Exhaustive, Filtered, Random, ScenarioGenerator};
//!
//! let mut profile = FaultProfile::new("libc.so.6");
//! profile.push_function(FunctionProfile {
//!     name: "read".into(),
//!     error_returns: vec![ErrorReturn::bare(-1)],
//! });
//! profile.push_function(FunctionProfile {
//!     name: "write".into(),
//!     error_returns: vec![ErrorReturn::bare(-1)],
//! });
//!
//! let everything = Exhaustive.generate(std::slice::from_ref(&profile));
//! assert_eq!(everything.len(), 2);
//!
//! let only_read = Filtered::new(Exhaustive).allow(["read"]).generate(std::slice::from_ref(&profile));
//! assert_eq!(only_read.intercepted_functions(), vec!["read"]);
//!
//! // Probabilities are validated up front (NaN and out-of-range rejected).
//! assert!(Random::new(f64::NAN, 1).is_err());
//! assert!(Random::new(0.1, 1).is_ok());
//! ```

use std::collections::BTreeSet;

use lfi_profile::FaultProfile;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{FaultAction, Plan, PlanEntry, ScenarioError, Trigger};

/// A faultload generator: turns fault profiles into an executable [`Plan`].
///
/// Implementations are cheap, reusable value objects; the same generator can
/// be applied to many profile sets.  `name` is a stable slug used to label
/// campaign test cases, `description` is free-form metadata for reports.
pub trait ScenarioGenerator {
    /// Stable, human-readable slug identifying the generator kind
    /// (e.g. `"exhaustive"`, `"random"`).
    fn name(&self) -> &str;

    /// One-line description including the generator's parameters.
    fn description(&self) -> String {
        self.name().to_owned()
    }

    /// Generates the faultload over the given profiles.
    fn generate(&self, profiles: &[FaultProfile]) -> Plan;
}

impl<G: ScenarioGenerator + ?Sized> ScenarioGenerator for &G {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn description(&self) -> String {
        (**self).description()
    }

    fn generate(&self, profiles: &[FaultProfile]) -> Plan {
        (**self).generate(profiles)
    }
}

impl<G: ScenarioGenerator + ?Sized> ScenarioGenerator for Box<G> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn description(&self) -> String {
        (**self).description()
    }

    fn generate(&self, profiles: &[FaultProfile]) -> Plan {
        (**self).generate(profiles)
    }
}

/// Validates an injection probability: must be a number in `[0, 1]`.
fn validated_probability(probability: f64) -> Result<f64, ScenarioError> {
    if probability.is_nan() || !(0.0..=1.0).contains(&probability) {
        return Err(ScenarioError::InvalidProbability { value: probability });
    }
    Ok(probability)
}

// ---------------------------------------------------------------------------
// Exhaustive
// ---------------------------------------------------------------------------

/// The *exhaustive* scenario of §4: every exported function of every profiled
/// library is included, and consecutive calls to a function iterate through
/// its possible error codes (call 1 injects the first fault, call 2 the
/// second, …).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Exhaustive;

impl ScenarioGenerator for Exhaustive {
    fn name(&self) -> &str {
        "exhaustive"
    }

    fn description(&self) -> String {
        "exhaustive: one call-count trigger per profiled error value".to_owned()
    }

    fn generate(&self, profiles: &[FaultProfile]) -> Plan {
        let mut plan = Plan::new();
        for profile in profiles {
            for function in &profile.functions {
                let mut call_ordinal = 1u64;
                for error in &function.error_returns {
                    if error.side_effects.is_empty() {
                        plan.entries.push(PlanEntry {
                            function: function.name.clone(),
                            trigger: Trigger::on_call(call_ordinal),
                            action: FaultAction { retval: Some(error.retval), ..FaultAction::default() },
                        });
                        call_ordinal += 1;
                    } else {
                        for effect in &error.side_effects {
                            plan.entries.push(PlanEntry {
                                function: function.name.clone(),
                                trigger: Trigger::on_call(call_ordinal),
                                action: FaultAction {
                                    retval: Some(error.retval),
                                    side_effects: vec![effect.clone()],
                                    ..FaultAction::default()
                                },
                            });
                            call_ordinal += 1;
                        }
                    }
                }
            }
        }
        plan
    }
}

// ---------------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------------

/// The *random* scenario of §4: each profiled function gets one
/// probability-triggered entry whose injected error is drawn uniformly from
/// the function's fault set every time the trigger fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Random {
    probability: f64,
    seed: u64,
}

impl Random {
    /// Creates a random-scenario generator.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidProbability`] when `probability` is
    /// NaN or outside `[0, 1]` — previously such values silently produced
    /// degenerate plans (never- or always-firing triggers).
    pub fn new(probability: f64, seed: u64) -> Result<Self, ScenarioError> {
        Ok(Random { probability: validated_probability(probability)?, seed })
    }

    /// The per-call injection probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// The seed recorded in generated plans (drives the controller's RNG).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl ScenarioGenerator for Random {
    fn name(&self) -> &str {
        "random"
    }

    fn description(&self) -> String {
        format!("random: p={} seed={}", self.probability, self.seed)
    }

    fn generate(&self, profiles: &[FaultProfile]) -> Plan {
        let mut plan = Plan::new().with_seed(self.seed);
        for profile in profiles {
            for function in &profile.functions {
                if function.error_returns.is_empty() {
                    continue;
                }
                plan.entries.push(PlanEntry {
                    function: function.name.clone(),
                    trigger: Trigger::with_probability(self.probability),
                    action: FaultAction { random_choices: function.error_returns.clone(), ..FaultAction::default() },
                });
            }
        }
        plan
    }
}

// ---------------------------------------------------------------------------
// ReadyMade
// ---------------------------------------------------------------------------

/// Which of the §4 ready-made libc faultloads to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ReadyMadeKind {
    FileIo,
    Memory,
    SocketIo,
    RandomIo { probability: f64, seed: u64 },
}

/// The ready-made libc scenarios of §4 ("all faults related to file I/O, all
/// memory allocation faults, or all socket I/O faults"), as a generator.
///
/// Wraps the function lists of [`crate::ready_made`]; profiles are narrowed
/// to the selected subset before generation, so the generator composes with
/// any profile set, not just libc.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadyMade {
    kind: ReadyMadeKind,
}

impl ReadyMade {
    /// Exhaustive injection over the file-I/O functions.
    pub fn file_io() -> Self {
        ReadyMade { kind: ReadyMadeKind::FileIo }
    }

    /// Exhaustive injection over the memory-allocation functions.
    pub fn memory() -> Self {
        ReadyMade { kind: ReadyMadeKind::Memory }
    }

    /// Exhaustive injection over the socket-I/O functions.
    pub fn socket_io() -> Self {
        ReadyMade { kind: ReadyMadeKind::SocketIo }
    }

    /// Random injection over the I/O functions (file + socket) — the §6.1
    /// Pidgin configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidProbability`] for NaN or
    /// out-of-`[0, 1]` probabilities.
    pub fn random_io(probability: f64, seed: u64) -> Result<Self, ScenarioError> {
        Ok(ReadyMade { kind: ReadyMadeKind::RandomIo { probability: validated_probability(probability)?, seed } })
    }

    fn functions(&self) -> Vec<&'static str> {
        match self.kind {
            ReadyMadeKind::FileIo => crate::ready_made::FILE_IO_FUNCTIONS.to_vec(),
            ReadyMadeKind::Memory => crate::ready_made::MEMORY_FUNCTIONS.to_vec(),
            ReadyMadeKind::SocketIo => crate::ready_made::SOCKET_FUNCTIONS.to_vec(),
            ReadyMadeKind::RandomIo { .. } => {
                let mut functions = crate::ready_made::FILE_IO_FUNCTIONS.to_vec();
                functions.extend_from_slice(crate::ready_made::SOCKET_FUNCTIONS);
                functions
            }
        }
    }
}

impl ScenarioGenerator for ReadyMade {
    fn name(&self) -> &str {
        match self.kind {
            ReadyMadeKind::FileIo => "ready-made-file-io",
            ReadyMadeKind::Memory => "ready-made-memory",
            ReadyMadeKind::SocketIo => "ready-made-socket-io",
            ReadyMadeKind::RandomIo { .. } => "ready-made-random-io",
        }
    }

    fn description(&self) -> String {
        match self.kind {
            ReadyMadeKind::RandomIo { probability, seed } => {
                format!("ready-made random I/O faults: p={probability} seed={seed}")
            }
            _ => format!("ready-made {} faults (exhaustive)", self.name().trim_start_matches("ready-made-")),
        }
    }

    fn generate(&self, profiles: &[FaultProfile]) -> Plan {
        let functions = self.functions();
        let narrowed: Vec<FaultProfile> = profiles
            .iter()
            .map(|profile| {
                let mut narrowed = profile.clone();
                narrowed.retain_functions(&functions);
                narrowed
            })
            .collect();
        match self.kind {
            ReadyMadeKind::RandomIo { probability, seed } => Random { probability, seed }.generate(&narrowed),
            _ => Exhaustive.generate(&narrowed),
        }
    }
}

// ---------------------------------------------------------------------------
// TriggerLoad
// ---------------------------------------------------------------------------

/// The "N triggers on the top-K most-called functions" construction used by
/// the overhead experiments (Tables 3 and 4): exactly `count` call-count
/// triggers spread round-robin over the given functions, drawing error codes
/// from the profiles.  `passthrough` keeps the benchmark completing by always
/// calling the original function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriggerLoad {
    functions: Vec<String>,
    count: usize,
    passthrough: bool,
    seed: u64,
}

impl TriggerLoad {
    /// Creates a trigger-load generator over the named functions.
    pub fn new<I, S>(functions: I, count: usize, seed: u64) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TriggerLoad { functions: functions.into_iter().map(Into::into).collect(), count, passthrough: true, seed }
    }

    /// Sets whether triggered calls still reach the original function
    /// (default `true`, the overhead-experiment configuration).
    pub fn passthrough(mut self, passthrough: bool) -> Self {
        self.passthrough = passthrough;
        self
    }
}

impl ScenarioGenerator for TriggerLoad {
    fn name(&self) -> &str {
        "trigger-load"
    }

    fn description(&self) -> String {
        format!(
            "trigger-load: {} triggers over {} functions (passthrough={}, seed={})",
            self.count,
            self.functions.len(),
            self.passthrough,
            self.seed
        )
    }

    fn generate(&self, profiles: &[FaultProfile]) -> Plan {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut plan = Plan::new().with_seed(self.seed);
        if self.functions.is_empty() || self.count == 0 {
            return plan;
        }
        // Collect the fault pool per function (empty profiles fall back to -1).
        let pool_for = |name: &str| -> Vec<i64> {
            for profile in profiles {
                if let Some(function) = profile.function(name) {
                    let values: Vec<i64> = function.error_values().into_iter().collect();
                    if !values.is_empty() {
                        return values;
                    }
                }
            }
            vec![-1]
        };
        for i in 0..self.count {
            let function = &self.functions[i % self.functions.len()];
            let pool = pool_for(function);
            // The -1 fallback keeps this total even if the pool helper ever
            // returns an empty vector.
            let retval = *pool.choose(&mut rng).unwrap_or(&-1);
            let inject_at = rng.gen_range(1..=1000u64);
            let mut action = FaultAction::return_value(retval);
            action.call_original = self.passthrough;
            plan.entries
                .push(PlanEntry { function: function.clone(), trigger: Trigger::on_call(inject_at), action });
        }
        plan
    }
}

// ---------------------------------------------------------------------------
// Filtered
// ---------------------------------------------------------------------------

/// A combinator that narrows another generator's plan: function allow/deny
/// lists and an entry-count cap.  Filtering is a pure restriction — the
/// resulting entries are always a subset of the inner generator's entries
/// (checked by a property test in `tests/property_tests.rs`).
#[derive(Debug, Clone)]
pub struct Filtered<G> {
    inner: G,
    allow: Option<BTreeSet<String>>,
    deny: BTreeSet<String>,
    max_entries: Option<usize>,
}

impl<G: ScenarioGenerator> Filtered<G> {
    /// Wraps a generator with no restrictions yet.
    pub fn new(inner: G) -> Self {
        Filtered { inner, allow: None, deny: BTreeSet::new(), max_entries: None }
    }

    /// Keeps only entries for the named functions (an allow-list; repeated
    /// calls extend the list).
    pub fn allow<I, S>(mut self, functions: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.allow.get_or_insert_with(BTreeSet::new).extend(functions.into_iter().map(Into::into));
        self
    }

    /// Drops entries for the named functions (a deny-list; applied after the
    /// allow-list and extendable by repeated calls).
    pub fn deny<I, S>(mut self, functions: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.deny.extend(functions.into_iter().map(Into::into));
        self
    }

    /// Caps the plan at the first `max` surviving entries.
    pub fn max_entries(mut self, max: usize) -> Self {
        self.max_entries = Some(max);
        self
    }
}

impl<G: ScenarioGenerator> ScenarioGenerator for Filtered<G> {
    fn name(&self) -> &str {
        "filtered"
    }

    fn description(&self) -> String {
        format!(
            "filtered({}): allow={:?} deny={} cap={:?}",
            self.inner.description(),
            self.allow.as_ref().map(BTreeSet::len),
            self.deny.len(),
            self.max_entries
        )
    }

    fn generate(&self, profiles: &[FaultProfile]) -> Plan {
        let mut plan = self.inner.generate(profiles);
        plan.entries.retain(|entry| {
            self.allow.as_ref().is_none_or(|allow| allow.contains(&entry.function))
                && !self.deny.contains(&entry.function)
        });
        if let Some(max) = self.max_entries {
            plan.entries.truncate(max);
        }
        plan
    }
}

// ---------------------------------------------------------------------------
// Composite
// ---------------------------------------------------------------------------

/// A combinator that concatenates the plans of several generators, in order.
/// The first constituent plan that carries a seed provides the composite
/// plan's seed.
#[derive(Default)]
pub struct Composite {
    parts: Vec<Box<dyn ScenarioGenerator + Send + Sync>>,
}

impl Composite {
    /// An empty composite (generates an empty plan until parts are added).
    pub fn new() -> Self {
        Composite::default()
    }

    /// Appends a constituent generator.
    pub fn push(mut self, generator: impl ScenarioGenerator + Send + Sync + 'static) -> Self {
        self.parts.push(Box::new(generator));
        self
    }

    /// Number of constituent generators.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when no generators were added.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl std::fmt::Debug for Composite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Composite").field("parts", &self.description()).finish()
    }
}

impl ScenarioGenerator for Composite {
    fn name(&self) -> &str {
        "composite"
    }

    fn description(&self) -> String {
        let parts: Vec<String> = self.parts.iter().map(|p| p.description()).collect();
        format!("composite[{}]", parts.join(" + "))
    }

    fn generate(&self, profiles: &[FaultProfile]) -> Plan {
        let mut plan = Plan::new();
        for part in &self.parts {
            let generated = part.generate(profiles);
            if plan.seed.is_none() {
                plan.seed = generated.seed;
            }
            plan.entries.extend(generated.entries);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_profile::{ErrorReturn, FunctionProfile, SideEffect};

    fn demo_profile() -> FaultProfile {
        let mut profile = FaultProfile::new("libc.so.6");
        profile.push_function(FunctionProfile {
            name: "close".into(),
            error_returns: vec![ErrorReturn {
                retval: -1,
                side_effects: vec![
                    SideEffect::tls("libc.so.6", 0x12fff4, 9),
                    SideEffect::tls("libc.so.6", 0x12fff4, 5),
                ],
            }],
        });
        profile.push_function(FunctionProfile {
            name: "read".into(),
            error_returns: vec![ErrorReturn::bare(-1), ErrorReturn::bare(0)],
        });
        profile.push_function(FunctionProfile { name: "malloc".into(), error_returns: vec![ErrorReturn::bare(0)] });
        profile.push_function(FunctionProfile::new("getpid"));
        profile
    }

    #[test]
    fn exhaustive_iterates_error_codes_per_call() {
        let plan = Exhaustive.generate(&[demo_profile()]);
        // close: 2 errno alternatives; read: 2 bare codes; malloc: 1; getpid: none.
        assert_eq!(plan.len(), 5);
        let close_entries: Vec<_> = plan.entries_for("close").collect();
        assert_eq!(close_entries[0].trigger.inject_at_call, Some(1));
        assert_eq!(close_entries[1].trigger.inject_at_call, Some(2));
        assert_eq!(close_entries[0].action.side_effects[0].value, 9);
        assert_eq!(close_entries[1].action.side_effects[0].value, 5);
        assert!(plan.entries_for("getpid").next().is_none());
        assert!(!plan.entries.iter().any(|e| e.action.call_original));
        assert_eq!(Exhaustive.name(), "exhaustive");
        assert!(Exhaustive.description().contains("exhaustive"));
    }

    #[test]
    fn random_has_one_entry_per_faulty_function_and_validates_probability() {
        let generator = Random::new(0.1, 7).unwrap();
        assert_eq!(generator.probability(), 0.1);
        assert_eq!(generator.seed(), 7);
        let plan = generator.generate(&[demo_profile()]);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.seed, Some(7));
        for entry in &plan.entries {
            assert_eq!(entry.trigger.probability, Some(0.1));
            assert!(!entry.action.random_choices.is_empty());
        }

        for bad in [f64::NAN, -0.1, 1.1, f64::INFINITY, f64::NEG_INFINITY] {
            let error = Random::new(bad, 1).unwrap_err();
            assert!(matches!(error, ScenarioError::InvalidProbability { .. }), "{bad} accepted");
            assert!(error.to_string().contains("probability"));
        }
        // The boundary values are legal.
        assert!(Random::new(0.0, 1).is_ok());
        assert!(Random::new(1.0, 1).is_ok());
        assert!(Random::new(0.1, 7).unwrap().description().contains("p=0.1"));
    }

    #[test]
    fn ready_made_generators_mirror_the_free_functions() {
        let profile = demo_profile();
        let file_io = ReadyMade::file_io().generate(std::slice::from_ref(&profile));
        assert_eq!(file_io.intercepted_functions(), vec!["close", "read"]);
        let memory = ReadyMade::memory().generate(std::slice::from_ref(&profile));
        assert_eq!(memory.intercepted_functions(), vec!["malloc"]);
        let sockets = ReadyMade::socket_io().generate(std::slice::from_ref(&profile));
        assert!(sockets.is_empty());
        let random_io = ReadyMade::random_io(0.25, 3).unwrap().generate(std::slice::from_ref(&profile));
        assert_eq!(random_io.intercepted_functions(), vec!["close", "read"]);
        assert!(random_io.entries.iter().all(|e| e.trigger.probability == Some(0.25)));
        assert!(ReadyMade::random_io(2.0, 3).is_err());
        assert!(ReadyMade::file_io().description().contains("file-io"));
    }

    #[test]
    fn trigger_load_produces_requested_count_and_is_deterministic() {
        let profiles = [demo_profile()];
        let generator = TriggerLoad::new(["close", "read"], 100, 99);
        let a = generator.generate(&profiles);
        let b = generator.generate(&profiles);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.entries.iter().all(|e| e.action.call_original));
        // Functions without profile data fall back to -1.
        let c = TriggerLoad::new(["unknown_fn"], 3, 1).passthrough(false).generate(&profiles);
        assert!(c.entries.iter().all(|e| e.action.retval == Some(-1)));
        assert!(!c.entries.iter().any(|e| e.action.call_original));
        assert!(TriggerLoad::new(Vec::<String>::new(), 10, 1).generate(&profiles).is_empty());
        assert!(TriggerLoad::new(["close"], 0, 1).generate(&profiles).is_empty());
        assert!(generator.description().contains("100 triggers"));
    }

    #[test]
    fn filtered_restricts_and_caps() {
        let profile = demo_profile();
        let all = Exhaustive.generate(std::slice::from_ref(&profile));

        let allowed = Filtered::new(Exhaustive)
            .allow(["read", "getpid"])
            .generate(std::slice::from_ref(&profile));
        assert_eq!(allowed.intercepted_functions(), vec!["read"]);

        let denied = Filtered::new(Exhaustive).deny(["close"]).generate(std::slice::from_ref(&profile));
        assert!(denied.entries_for("close").next().is_none());
        assert_eq!(denied.len(), all.len() - 2);

        let capped = Filtered::new(Exhaustive).max_entries(2).generate(std::slice::from_ref(&profile));
        assert_eq!(capped.len(), 2);
        assert_eq!(capped.entries[..], all.entries[..2]);

        let chained = Filtered::new(Exhaustive)
            .allow(["close", "read"])
            .deny(["close"])
            .max_entries(1)
            .generate(std::slice::from_ref(&profile));
        assert_eq!(chained.len(), 1);
        assert_eq!(chained.entries[0].function, "read");
        assert!(Filtered::new(Exhaustive).allow(["a"]).description().contains("filtered"));
    }

    #[test]
    fn filtered_entries_are_a_subset_of_the_inner_plan() {
        let profile = demo_profile();
        let all = Exhaustive.generate(std::slice::from_ref(&profile));
        let filtered = Filtered::new(Exhaustive)
            .allow(["close", "read", "malloc"])
            .deny(["read"])
            .max_entries(3)
            .generate(std::slice::from_ref(&profile));
        for entry in &filtered.entries {
            assert!(all.entries.contains(entry), "filtered invented {entry:?}");
        }
    }

    #[test]
    fn composite_concatenates_and_takes_the_first_seed() {
        let profile = demo_profile();
        let composite = Composite::new()
            .push(Filtered::new(Exhaustive).allow(["read"]))
            .push(Random::new(0.5, 11).unwrap());
        assert_eq!(composite.len(), 2);
        assert!(!composite.is_empty());
        let plan = composite.generate(std::slice::from_ref(&profile));
        // 2 exhaustive read entries + 3 random entries.
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.seed, Some(11));
        assert!(composite.description().contains("composite["));
        assert!(format!("{composite:?}").contains("Composite"));

        let empty = Composite::new();
        assert!(empty.is_empty());
        assert!(empty.generate(std::slice::from_ref(&profile)).is_empty());
    }

    #[test]
    fn generators_compose_through_references_and_boxes() {
        let profile = demo_profile();
        let by_ref: &dyn ScenarioGenerator = &Exhaustive;
        assert_eq!(by_ref.generate(std::slice::from_ref(&profile)).len(), 5);
        let boxed: Box<dyn ScenarioGenerator> = Box::new(Exhaustive);
        assert_eq!(boxed.name(), "exhaustive");
        assert_eq!(boxed.generate(std::slice::from_ref(&profile)).len(), 5);
        // A Filtered over a reference works too (no ownership required).
        let filtered = Filtered::new(&Exhaustive).max_entries(1);
        assert_eq!(filtered.generate(std::slice::from_ref(&profile)).len(), 1);
    }

    #[test]
    fn xml_round_trip_of_generated_plans() {
        let plan = Exhaustive.generate(&[demo_profile()]);
        assert_eq!(Plan::from_xml(&plan.to_xml()).unwrap(), plan);
        let plan = Random::new(0.25, 3).unwrap().generate(&[demo_profile()]);
        assert_eq!(Plan::from_xml(&plan.to_xml()).unwrap(), plan);
    }
}
