use std::error::Error;
use std::fmt;

use lfi_profile::xml::XmlError;

/// Errors produced while reading a fault scenario from XML or constructing a
/// scenario generator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The document is not well-formed XML.
    Xml(XmlError),
    /// The document is XML but does not follow the plan schema.
    Schema {
        /// Description of the schema violation.
        message: String,
    },
    /// A numeric field could not be parsed.
    InvalidNumber {
        /// The attribute holding the number.
        field: String,
        /// The offending text.
        text: String,
    },
    /// An injection probability outside `[0, 1]` (or NaN) was supplied to a
    /// random scenario generator.
    InvalidProbability {
        /// The rejected value.
        value: f64,
    },
}

impl ScenarioError {
    /// Convenience constructor for schema violations.
    pub fn schema(message: impl Into<String>) -> Self {
        ScenarioError::Schema { message: message.into() }
    }

    /// Convenience constructor for number-parse failures.
    pub fn invalid_number(field: impl Into<String>, text: impl Into<String>) -> Self {
        ScenarioError::InvalidNumber { field: field.into(), text: text.into() }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Xml(e) => write!(f, "invalid XML: {e}"),
            ScenarioError::Schema { message } => write!(f, "invalid fault scenario: {message}"),
            ScenarioError::InvalidNumber { field, text } => {
                write!(f, "invalid number {text:?} in attribute {field}")
            }
            ScenarioError::InvalidProbability { value } => {
                write!(f, "invalid injection probability {value}: must be in [0, 1]")
            }
        }
    }
}

impl Error for ScenarioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScenarioError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XmlError> for ScenarioError {
    fn from(value: XmlError) -> Self {
        ScenarioError::Xml(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(ScenarioError::from(XmlError::NoRootElement).source().is_some());
        assert!(!ScenarioError::schema("boom").to_string().is_empty());
        assert!(!ScenarioError::invalid_number("inject", "x").to_string().is_empty());
        let invalid = ScenarioError::InvalidProbability { value: f64::NAN };
        assert!(invalid.to_string().contains("[0, 1]"));
        assert!(invalid.source().is_none());
    }
}
