//! Ready-made libc fault scenarios (§4): "all faults related to file I/O, all
//! memory allocation faults, or all socket I/O faults", provided so testers
//! can bootstrap experiments without writing any scenario by hand.

use lfi_profile::FaultProfile;

use crate::generator::{ReadyMade, ScenarioGenerator};
use crate::{Plan, ScenarioError};

/// libc functions covered by the file-I/O ready-made scenario.
pub const FILE_IO_FUNCTIONS: &[&str] = &[
    "open",
    "open64",
    "read",
    "write",
    "close",
    "lseek",
    "fsync",
    "stat",
    "fstat",
    "readdir",
    "readdir64",
    "unlink",
    "rename",
    "ftruncate",
    "pread",
    "pwrite",
];

/// libc functions covered by the memory-allocation ready-made scenario.
pub const MEMORY_FUNCTIONS: &[&str] = &["malloc", "calloc", "realloc", "posix_memalign", "mmap", "brk"];

/// libc functions covered by the socket-I/O ready-made scenario.
pub const SOCKET_FUNCTIONS: &[&str] = &[
    "socket",
    "connect",
    "bind",
    "listen",
    "accept",
    "send",
    "sendto",
    "recv",
    "recvfrom",
    "select",
    "poll",
    "getaddrinfo",
    "pipe",
];

/// Exhaustive injection over the file-I/O subset of a libc profile.
pub fn file_io_faults(libc_profile: &FaultProfile) -> Plan {
    ReadyMade::file_io().generate(std::slice::from_ref(libc_profile))
}

/// Exhaustive injection over the memory-allocation subset of a libc profile.
pub fn memory_faults(libc_profile: &FaultProfile) -> Plan {
    ReadyMade::memory().generate(std::slice::from_ref(libc_profile))
}

/// Exhaustive injection over the socket-I/O subset of a libc profile.
pub fn socket_faults(libc_profile: &FaultProfile) -> Plan {
    ReadyMade::socket_io().generate(std::slice::from_ref(libc_profile))
}

/// Random injection with the given probability over the I/O functions
/// (file + socket), the configuration used to find the Pidgin bug in §6.1.
///
/// # Errors
///
/// Returns [`ScenarioError::InvalidProbability`] when `probability` is NaN or
/// outside `[0, 1]`.
pub fn random_io_faults(libc_profile: &FaultProfile, probability: f64, seed: u64) -> Result<Plan, ScenarioError> {
    Ok(ReadyMade::random_io(probability, seed)?.generate(std::slice::from_ref(libc_profile)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_profile::{ErrorReturn, FunctionProfile};

    fn libc_profile() -> FaultProfile {
        let mut profile = FaultProfile::new("libc.so.6");
        for name in ["read", "write", "malloc", "socket", "getpid", "connect"] {
            profile.push_function(FunctionProfile { name: name.into(), error_returns: vec![ErrorReturn::bare(-1)] });
        }
        profile
    }

    #[test]
    fn file_io_scenario_only_touches_file_functions() {
        let plan = file_io_faults(&libc_profile());
        assert_eq!(plan.intercepted_functions(), vec!["read", "write"]);
    }

    #[test]
    fn memory_scenario_only_touches_allocators() {
        let plan = memory_faults(&libc_profile());
        assert_eq!(plan.intercepted_functions(), vec!["malloc"]);
    }

    #[test]
    fn socket_scenario_only_touches_socket_functions() {
        let plan = socket_faults(&libc_profile());
        assert_eq!(plan.intercepted_functions(), vec!["connect", "socket"]);
    }

    #[test]
    fn random_io_covers_file_and_socket_functions() {
        let plan = random_io_faults(&libc_profile(), 0.1, 11).unwrap();
        assert_eq!(plan.intercepted_functions(), vec!["connect", "read", "socket", "write"]);
        assert!(plan.entries.iter().all(|e| e.trigger.probability == Some(0.1)));
        assert!(matches!(
            random_io_faults(&libc_profile(), f64::NAN, 11),
            Err(ScenarioError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn function_lists_do_not_overlap() {
        for f in FILE_IO_FUNCTIONS {
            assert!(!MEMORY_FUNCTIONS.contains(f));
            assert!(!SOCKET_FUNCTIONS.contains(f));
        }
        for f in MEMORY_FUNCTIONS {
            assert!(!SOCKET_FUNCTIONS.contains(f));
        }
    }
}
