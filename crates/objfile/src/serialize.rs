//! Binary serialization of SimObj shared objects.
//!
//! The on-disk format is deliberately simple: a magic number, a version, and
//! length-prefixed little-endian records.  Both directions are implemented
//! here so the profiler genuinely reads binaries rather than in-memory values.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use lfi_isa::Platform;

use crate::{DataSymbol, FunctionCode, FunctionSig, ObjError, ReturnType, SharedObject, Storage, Symbol, SymbolDef};

const MAGIC: &[u8; 7] = b"SIMOBJ\0";
const VERSION: u16 = 1;

impl SharedObject {
    /// Serializes the object to its on-disk byte representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(256 + self.code_size());
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u8(platform_tag(self.platform));
        buf.put_u8(u8::from(self.stripped));
        put_string(&mut buf, &self.name);

        buf.put_u32_le(self.dependencies.len() as u32);
        for dep in &self.dependencies {
            put_string(&mut buf, dep);
        }

        buf.put_u32_le(self.data_symbols.len() as u32);
        for data in &self.data_symbols {
            put_string(&mut buf, &data.name);
            buf.put_u32_le(data.offset);
            buf.put_u8(match data.storage {
                Storage::Global => 0,
                Storage::Tls => 1,
            });
        }

        buf.put_u32_le(self.functions.len() as u32);
        for function in &self.functions {
            buf.put_u32_le(function.code.len() as u32);
            buf.put_slice(&function.code);
        }

        buf.put_u32_le(self.symbols.len() as u32);
        for symbol in &self.symbols {
            put_string(&mut buf, &symbol.name);
            match &symbol.def {
                SymbolDef::Defined { func_index, exported } => {
                    buf.put_u8(0);
                    buf.put_u32_le(*func_index);
                    buf.put_u8(u8::from(*exported));
                }
                SymbolDef::Import { library_hint } => {
                    buf.put_u8(1);
                    match library_hint {
                        Some(hint) => {
                            buf.put_u8(1);
                            put_string(&mut buf, hint);
                        }
                        None => buf.put_u8(0),
                    }
                }
            }
            match &symbol.signature {
                Some(sig) => {
                    buf.put_u8(1);
                    buf.put_u8(match sig.return_type {
                        ReturnType::Void => 0,
                        ReturnType::Scalar => 1,
                        ReturnType::Pointer => 2,
                    });
                    buf.put_u8(sig.arity);
                }
                None => buf.put_u8(0),
            }
        }

        buf.to_vec()
    }

    /// Parses an object from its on-disk byte representation.
    ///
    /// # Errors
    ///
    /// Returns [`ObjError`] on truncation, bad magic, unknown version, or
    /// malformed records.
    pub fn from_bytes(bytes: &[u8]) -> Result<SharedObject, ObjError> {
        let total = bytes.len();
        let mut buf = Bytes::copy_from_slice(bytes);
        let offset = |buf: &Bytes| total - buf.remaining();

        if buf.remaining() < MAGIC.len() {
            return Err(ObjError::Truncated { offset: offset(&buf) });
        }
        let mut magic = [0u8; 7];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(ObjError::BadMagic);
        }
        let version = get_u16(&mut buf, total)?;
        if version != VERSION {
            return Err(ObjError::UnsupportedVersion { version });
        }
        let platform = parse_platform(get_u8(&mut buf, total)?)?;
        let stripped = get_u8(&mut buf, total)? != 0;
        let name = get_string(&mut buf, total)?;

        let dep_count = get_u32(&mut buf, total)? as usize;
        let mut dependencies = Vec::with_capacity(dep_count.min(1024));
        for _ in 0..dep_count {
            dependencies.push(get_string(&mut buf, total)?);
        }

        let data_count = get_u32(&mut buf, total)? as usize;
        let mut data_symbols = Vec::with_capacity(data_count.min(1024));
        for _ in 0..data_count {
            let name = get_string(&mut buf, total)?;
            let offset_value = get_u32(&mut buf, total)?;
            let storage = match get_u8(&mut buf, total)? {
                0 => Storage::Global,
                1 => Storage::Tls,
                other => return Err(ObjError::InvalidTag { field: "storage", value: other }),
            };
            data_symbols.push(DataSymbol { name, offset: offset_value, storage });
        }

        let func_count = get_u32(&mut buf, total)? as usize;
        let mut functions = Vec::with_capacity(func_count.min(4096));
        for _ in 0..func_count {
            let len = get_u32(&mut buf, total)? as usize;
            if buf.remaining() < len {
                return Err(ObjError::Truncated { offset: offset(&buf) });
            }
            let mut code = vec![0u8; len];
            buf.copy_to_slice(&mut code);
            functions.push(FunctionCode::new(code));
        }

        let sym_count = get_u32(&mut buf, total)? as usize;
        let mut symbols = Vec::with_capacity(sym_count.min(8192));
        for _ in 0..sym_count {
            let name = get_string(&mut buf, total)?;
            let def = match get_u8(&mut buf, total)? {
                0 => SymbolDef::Defined {
                    func_index: get_u32(&mut buf, total)?,
                    exported: get_u8(&mut buf, total)? != 0,
                },
                1 => {
                    let has_hint = get_u8(&mut buf, total)? != 0;
                    let library_hint = if has_hint { Some(get_string(&mut buf, total)?) } else { None };
                    SymbolDef::Import { library_hint }
                }
                other => return Err(ObjError::InvalidTag { field: "symbol_def", value: other }),
            };
            let signature = match get_u8(&mut buf, total)? {
                0 => None,
                1 => {
                    let return_type = match get_u8(&mut buf, total)? {
                        0 => ReturnType::Void,
                        1 => ReturnType::Scalar,
                        2 => ReturnType::Pointer,
                        other => return Err(ObjError::InvalidTag { field: "return_type", value: other }),
                    };
                    Some(FunctionSig::new(return_type, get_u8(&mut buf, total)?))
                }
                other => return Err(ObjError::InvalidTag { field: "signature", value: other }),
            };
            symbols.push(Symbol { name, def, signature });
        }

        let object = SharedObject { name, platform, symbols, functions, data_symbols, dependencies, stripped };
        object.validate()?;
        Ok(object)
    }
}

fn platform_tag(platform: Platform) -> u8 {
    match platform {
        Platform::LinuxX86 => 0,
        Platform::WindowsX86 => 1,
        Platform::SolarisSparc => 2,
    }
}

fn parse_platform(tag: u8) -> Result<Platform, ObjError> {
    match tag {
        0 => Ok(Platform::LinuxX86),
        1 => Ok(Platform::WindowsX86),
        2 => Ok(Platform::SolarisSparc),
        other => Err(ObjError::InvalidTag { field: "platform", value: other }),
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_u8(buf: &mut Bytes, total: usize) -> Result<u8, ObjError> {
    if buf.remaining() < 1 {
        return Err(ObjError::Truncated { offset: total - buf.remaining() });
    }
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut Bytes, total: usize) -> Result<u16, ObjError> {
    if buf.remaining() < 2 {
        return Err(ObjError::Truncated { offset: total - buf.remaining() });
    }
    Ok(buf.get_u16_le())
}

fn get_u32(buf: &mut Bytes, total: usize) -> Result<u32, ObjError> {
    if buf.remaining() < 4 {
        return Err(ObjError::Truncated { offset: total - buf.remaining() });
    }
    Ok(buf.get_u32_le())
}

fn get_string(buf: &mut Bytes, total: usize) -> Result<String, ObjError> {
    let len = get_u32(buf, total)? as usize;
    let offset = total - buf.remaining();
    if buf.remaining() < len {
        return Err(ObjError::Truncated { offset });
    }
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| ObjError::InvalidString { offset })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjectBuilder;
    use lfi_isa::{Inst, Loc, Reg};

    fn demo() -> SharedObject {
        ObjectBuilder::new("libround.so", Platform::WindowsX86)
            .dependency("libc.so.6")
            .data_symbol("errno", 0xc00, Storage::Tls)
            .data_symbol("state", 0x80, Storage::Global)
            .export_with_signature(
                "open_thing",
                ReturnType::Pointer,
                2,
                vec![Inst::MovImm { dst: Loc::Reg(Reg(0)), imm: 0 }, Inst::Ret],
            )
            .local("internal", vec![Inst::Nop, Inst::Ret])
            .import("read", Some("libc.so.6"))
            .import("mystery", None)
            .build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let obj = demo();
        let parsed = SharedObject::from_bytes(&obj.to_bytes()).unwrap();
        assert_eq!(obj, parsed);
    }

    #[test]
    fn roundtrip_of_stripped_object() {
        let obj = demo().stripped();
        let parsed = SharedObject::from_bytes(&obj.to_bytes()).unwrap();
        assert_eq!(obj, parsed);
        assert!(parsed.is_stripped());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = SharedObject::from_bytes(b"NOTOBJ\0rest").unwrap_err();
        assert_eq!(err, ObjError::BadMagic);
    }

    #[test]
    fn truncation_is_rejected_everywhere() {
        let bytes = demo().to_bytes();
        // Chopping the stream at any point must yield an error, never a panic
        // and never a silently different object.
        for cut in 0..bytes.len() {
            let result = SharedObject::from_bytes(&bytes[..cut]);
            assert!(result.is_err(), "cut at {cut} unexpectedly succeeded");
        }
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = demo().to_bytes();
        bytes[7] = 0xff;
        bytes[8] = 0xff;
        let err = SharedObject::from_bytes(&bytes).unwrap_err();
        assert_eq!(err, ObjError::UnsupportedVersion { version: 0xffff });
    }

    #[test]
    fn empty_object_roundtrips() {
        let obj = ObjectBuilder::new("libnothing.so", Platform::LinuxX86).build();
        let parsed = SharedObject::from_bytes(&obj.to_bytes()).unwrap();
        assert_eq!(obj, parsed);
        assert_eq!(parsed.code_size(), 0);
    }
}
