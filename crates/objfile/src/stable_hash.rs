//! The toolchain's stable 64-bit hash: FNV-1a.
//!
//! [`SharedObject::fingerprint`](crate::SharedObject::fingerprint) and every
//! key derived from it (disassembly caches, persisted fault-profile stores)
//! must hash identically across processes, platforms and toolchain versions —
//! which rules out `std`'s `DefaultHasher`, whose algorithm is explicitly
//! unspecified.  This module is the single home of the FNV-1a constants so
//! producers and consumers cannot drift apart.

/// The FNV-1a 64-bit offset basis: the seed for a fresh hash.
pub const OFFSET_BASIS: u64 = 0xcbf29ce484222325;

/// The FNV-1a 64-bit prime.
pub const PRIME: u64 = 0x100000001b3;

/// Folds `bytes` into `hash` (FNV-1a).  Start from [`OFFSET_BASIS`] and
/// chain calls to hash a composite value.
pub fn fold(hash: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(hash, |hash, byte| (hash ^ u64::from(*byte)).wrapping_mul(PRIME))
}

/// Folds a `u64` into `hash` (little-endian byte order).
pub fn fold_u64(hash: u64, value: u64) -> u64 {
    fold(hash, &value.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_fnv1a_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(fold(OFFSET_BASIS, b""), 0xcbf29ce484222325);
        assert_eq!(fold(OFFSET_BASIS, b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fold(OFFSET_BASIS, b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn folding_is_chainable() {
        assert_eq!(fold(fold(OFFSET_BASIS, b"foo"), b"bar"), fold(OFFSET_BASIS, b"foobar"));
        assert_eq!(fold_u64(OFFSET_BASIS, 0x0807060504030201), fold(OFFSET_BASIS, &[1, 2, 3, 4, 5, 6, 7, 8]));
    }
}
