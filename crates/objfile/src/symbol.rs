use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a symbol within a [`crate::SharedObject`]'s symbol table.
///
/// SimISA `call` instructions name their callee by symbol-table index, exactly
/// as real relocatable code names callees through PLT/GOT slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SymbolId(pub u32);

impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// The C-level return type of an exported function, as a development header
/// would declare it.
///
/// The paper's Table 1 is keyed by this classification (`void` / scalar /
/// pointer).  SimObj carries it as optional metadata: the profiler itself
/// never needs it, but the survey experiment does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReturnType {
    /// The function returns nothing.
    Void,
    /// The function returns an integer-like scalar.
    Scalar,
    /// The function returns a pointer.
    Pointer,
}

impl fmt::Display for ReturnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReturnType::Void => "void",
            ReturnType::Scalar => "scalar",
            ReturnType::Pointer => "pointer",
        };
        f.write_str(s)
    }
}

/// Header-style signature information for a function symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FunctionSig {
    /// Declared return type.
    pub return_type: ReturnType,
    /// Number of declared parameters.
    pub arity: u8,
}

impl FunctionSig {
    /// Creates a signature.
    pub fn new(return_type: ReturnType, arity: u8) -> Self {
        Self { return_type, arity }
    }
}

/// How a symbol is defined.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SymbolDef {
    /// Defined in this object: its code lives at the given function index.
    Defined {
        /// Index into the object's function (text) table.
        func_index: u32,
        /// Whether the symbol is visible to other modules (a dynamic export).
        exported: bool,
    },
    /// Imported from another library; resolved by the dynamic linker.
    Import {
        /// Library the import is expected to come from, when known.
        library_hint: Option<String>,
    },
}

/// An entry in a SimObj symbol table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Symbol {
    /// Symbol name.  Empty for stripped local symbols.
    pub name: String,
    /// Definition or import record.
    pub def: SymbolDef,
    /// Optional header-derived signature (exports only, when a development
    /// package is available).
    pub signature: Option<FunctionSig>,
}

impl Symbol {
    /// Returns true if the symbol is an export defined in this object.
    pub fn is_export(&self) -> bool {
        matches!(self.def, SymbolDef::Defined { exported: true, .. })
    }

    /// Returns true if the symbol is defined in this object (exported or not).
    pub fn is_defined(&self) -> bool {
        matches!(self.def, SymbolDef::Defined { .. })
    }

    /// Returns the index of this symbol's code, if defined here.
    pub fn func_index(&self) -> Option<u32> {
        match self.def {
            SymbolDef::Defined { func_index, .. } => Some(func_index),
            SymbolDef::Import { .. } => None,
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.def {
            SymbolDef::Defined { exported, .. } => {
                let vis = if *exported { "export" } else { "local" };
                write!(f, "{} ({vis})", self.name)
            }
            SymbolDef::Import { library_hint } => match library_hint {
                Some(lib) => write!(f, "{} (import from {lib})", self.name),
                None => write!(f, "{} (import)", self.name),
            },
        }
    }
}

/// The machine code of one function defined in a SimObj object.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FunctionCode {
    /// Encoded SimISA bytes (see `lfi_isa::encode`).
    pub code: Vec<u8>,
}

impl FunctionCode {
    /// Creates a function text section from encoded bytes.
    pub fn new(code: Vec<u8>) -> Self {
        Self { code }
    }

    /// Size of the code, in bytes.
    pub fn size(&self) -> usize {
        self.code.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_classification() {
        let exported = Symbol {
            name: "read".into(),
            def: SymbolDef::Defined { func_index: 0, exported: true },
            signature: Some(FunctionSig::new(ReturnType::Scalar, 3)),
        };
        let local = Symbol {
            name: "helper".into(),
            def: SymbolDef::Defined { func_index: 1, exported: false },
            signature: None,
        };
        let import = Symbol {
            name: "malloc".into(),
            def: SymbolDef::Import { library_hint: Some("libc.so.6".into()) },
            signature: None,
        };
        assert!(exported.is_export() && exported.is_defined());
        assert!(!local.is_export() && local.is_defined());
        assert!(!import.is_export() && !import.is_defined());
        assert_eq!(exported.func_index(), Some(0));
        assert_eq!(import.func_index(), None);
    }

    #[test]
    fn display_forms() {
        let s =
            Symbol { name: "close".into(), def: SymbolDef::Defined { func_index: 2, exported: true }, signature: None };
        assert_eq!(s.to_string(), "close (export)");
        let i = Symbol { name: "free".into(), def: SymbolDef::Import { library_hint: None }, signature: None };
        assert_eq!(i.to_string(), "free (import)");
        assert_eq!(SymbolId(4).to_string(), "sym#4");
        assert_eq!(ReturnType::Pointer.to_string(), "pointer");
    }

    #[test]
    fn function_code_size() {
        assert_eq!(FunctionCode::new(vec![1, 2, 3]).size(), 3);
        assert_eq!(FunctionCode::new(Vec::new()).size(), 0);
    }
}
