use lfi_isa::{encode, Inst, Platform};

use crate::{DataSymbol, FunctionCode, FunctionSig, ReturnType, SharedObject, Storage, Symbol, SymbolDef, SymbolId};

/// Incrementally constructs a [`SharedObject`].
///
/// The builder is how the `lfi-asm` "library compiler" and the `lfi-corpus`
/// generators assemble synthetic shared objects.  It guarantees that every
/// defined symbol points at a valid text section.
///
/// ```
/// use lfi_isa::{Inst, Platform};
/// use lfi_objfile::ObjectBuilder;
///
/// let obj = ObjectBuilder::new("libempty.so", Platform::LinuxX86).build();
/// assert_eq!(obj.export_count(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct ObjectBuilder {
    name: String,
    platform: Platform,
    symbols: Vec<Symbol>,
    functions: Vec<FunctionCode>,
    data_symbols: Vec<DataSymbol>,
    dependencies: Vec<String>,
}

impl ObjectBuilder {
    /// Starts building a shared object with the given file name and platform.
    pub fn new(name: impl Into<String>, platform: Platform) -> Self {
        Self {
            name: name.into(),
            platform,
            symbols: Vec::new(),
            functions: Vec::new(),
            data_symbols: Vec::new(),
            dependencies: Vec::new(),
        }
    }

    /// Records a dependency on another library (the `DT_NEEDED` analogue).
    pub fn dependency(mut self, library: impl Into<String>) -> Self {
        self.dependencies.push(library.into());
        self
    }

    /// Declares a named data slot (global or TLS) at the given offset.
    pub fn data_symbol(mut self, name: impl Into<String>, offset: u32, storage: Storage) -> Self {
        self.data_symbols.push(DataSymbol { name: name.into(), offset, storage });
        self
    }

    fn add_function(&mut self, body: &[Inst]) -> u32 {
        let index = self.functions.len() as u32;
        self.functions.push(FunctionCode::new(encode::encode_function(body)));
        index
    }

    /// Adds an exported function with the given body and returns its symbol id.
    pub fn export(self, name: impl Into<String>, body: Vec<Inst>) -> Self {
        self.add_defined(name, body, true, None)
    }

    /// Adds an exported function along with header-style signature metadata.
    pub fn export_with_signature(
        self,
        name: impl Into<String>,
        return_type: ReturnType,
        arity: u8,
        body: Vec<Inst>,
    ) -> Self {
        self.add_defined(name, body, true, Some(FunctionSig::new(return_type, arity)))
    }

    /// Adds a local (non-exported) function, such as an internal helper.
    pub fn local(self, name: impl Into<String>, body: Vec<Inst>) -> Self {
        self.add_defined(name, body, false, None)
    }

    fn add_defined(
        mut self,
        name: impl Into<String>,
        body: Vec<Inst>,
        exported: bool,
        signature: Option<FunctionSig>,
    ) -> Self {
        let func_index = self.add_function(&body);
        self.symbols
            .push(Symbol { name: name.into(), def: SymbolDef::Defined { func_index, exported }, signature });
        self
    }

    /// Adds an imported symbol resolved from another library at link time.
    pub fn import(mut self, name: impl Into<String>, library_hint: Option<&str>) -> Self {
        self.symbols.push(Symbol {
            name: name.into(),
            def: SymbolDef::Import { library_hint: library_hint.map(str::to_owned) },
            signature: None,
        });
        self
    }

    /// The symbol id the *next* added symbol will receive.  Useful when a
    /// function body needs to call a symbol added later.
    pub fn next_symbol_id(&self) -> SymbolId {
        SymbolId(self.symbols.len() as u32)
    }

    /// The symbol id of a previously added symbol, by name.
    pub fn symbol_id(&self, name: &str) -> Option<SymbolId> {
        self.symbols.iter().position(|s| s.name == name).map(|i| SymbolId(i as u32))
    }

    /// Finishes the object.
    pub fn build(self) -> SharedObject {
        let object = SharedObject {
            name: self.name,
            platform: self.platform,
            symbols: self.symbols,
            functions: self.functions,
            data_symbols: self.data_symbols,
            dependencies: self.dependencies,
            stripped: false,
        };
        debug_assert!(object.validate().is_ok(), "ObjectBuilder produced an inconsistent object");
        object
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_isa::{Loc, Reg};

    #[test]
    fn builder_assigns_sequential_symbol_ids() {
        let mut builder = ObjectBuilder::new("lib.so", Platform::LinuxX86);
        assert_eq!(builder.next_symbol_id(), SymbolId(0));
        builder = builder.import("malloc", None);
        assert_eq!(builder.next_symbol_id(), SymbolId(1));
        builder = builder.export("f", vec![Inst::Ret]);
        assert_eq!(builder.symbol_id("malloc"), Some(SymbolId(0)));
        assert_eq!(builder.symbol_id("f"), Some(SymbolId(1)));
        assert_eq!(builder.symbol_id("missing"), None);
    }

    #[test]
    fn built_object_round_trips_code() {
        let body = vec![Inst::MovImm { dst: Loc::Reg(Reg(0)), imm: 7 }, Inst::Ret];
        let obj = ObjectBuilder::new("lib.so", Platform::LinuxX86).export("seven", body.clone()).build();
        let code = obj.code_for_name("seven").unwrap();
        assert_eq!(encode::decode_function(&code.code).unwrap(), body);
    }

    #[test]
    fn dependencies_and_data_are_preserved() {
        let obj = ObjectBuilder::new("libx.so", Platform::SolarisSparc)
            .dependency("libc.so.1")
            .dependency("libm.so.1")
            .data_symbol("errno", 0x2000, Storage::Tls)
            .build();
        assert_eq!(obj.dependencies(), &["libc.so.1".to_owned(), "libm.so.1".to_owned()]);
        assert_eq!(obj.data_symbols().len(), 1);
        assert_eq!(obj.platform(), Platform::SolarisSparc);
    }
}
