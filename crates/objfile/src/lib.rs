//! # lfi-objfile — SimObj, the synthetic shared-object format
//!
//! The LFI profiler consumes *library binaries*: it lists their exported
//! functions, disassembles their text, follows calls into dependent libraries
//! and locates the data symbols (such as `errno`) used as error side channels.
//! SimObj is the container format that plays the role ELF/PE/COFF shared
//! objects play in the paper:
//!
//! * a **symbol table** of defined (exported or local) and imported functions,
//!   optionally carrying a C-header-style signature (return type and arity);
//! * a **text section** per defined function holding SimISA machine code in
//!   its binary encoding (see `lfi-isa::encode`);
//! * a **data layout** naming global and thread-local data slots by offset
//!   (this is what lets the analysis report "TLS offset 0x12FFF4" for
//!   `errno`, §3.3);
//! * a **dependency list** (the `DT_NEEDED` analogue) used for recursive
//!   profiling across libraries and into the kernel image;
//! * optional **stripping**, which removes local symbol names but keeps the
//!   dynamic exports — the paper notes LFI works on stripped libraries.
//!
//! ```
//! use lfi_isa::{Inst, Platform};
//! use lfi_objfile::{ObjectBuilder, ReturnType, Storage};
//!
//! let abi = Platform::LinuxX86.abi();
//! let obj = ObjectBuilder::new("libdemo.so", Platform::LinuxX86)
//!     .data_symbol("errno", abi.errno_tls_offset(), Storage::Tls)
//!     .export_with_signature(
//!         "always_fail",
//!         ReturnType::Scalar,
//!         1,
//!         vec![Inst::MovImm { dst: abi.return_loc(), imm: -1 }, Inst::Ret],
//!     )
//!     .build();
//! let bytes = obj.to_bytes();
//! let parsed = lfi_objfile::SharedObject::from_bytes(&bytes).unwrap();
//! assert_eq!(parsed.exported_symbols().count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod object;
mod serialize;
pub mod stable_hash;
mod symbol;

pub use builder::ObjectBuilder;
pub use error::ObjError;
pub use object::{DataSymbol, SharedObject, Storage};
pub use symbol::{FunctionCode, FunctionSig, ReturnType, Symbol, SymbolDef, SymbolId};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedObject>();
        assert_send_sync::<Symbol>();
        assert_send_sync::<ObjError>();
        assert_send_sync::<ObjectBuilder>();
    }
}
