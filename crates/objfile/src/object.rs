use std::collections::HashMap;
use std::fmt;

use lfi_isa::Platform;
use serde::{Deserialize, Serialize};

use crate::{FunctionCode, ObjError, Symbol, SymbolDef, SymbolId};

/// Storage class of a data symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Storage {
    /// Ordinary module-global data.
    Global,
    /// Thread-local storage (the `errno` class of side channels).
    Tls,
}

impl fmt::Display for Storage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Storage::Global => f.write_str("global"),
            Storage::Tls => f.write_str("TLS"),
        }
    }
}

/// A named data slot in a shared object's data image.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataSymbol {
    /// Symbol name (e.g. `errno`).
    pub name: String,
    /// Offset of the slot within the module's data image.
    pub offset: u32,
    /// Storage class.
    pub storage: Storage,
}

/// A parsed (or freshly built) SimObj shared object.
///
/// Construct one with [`crate::ObjectBuilder`] or parse one from bytes with
/// [`SharedObject::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedObject {
    pub(crate) name: String,
    pub(crate) platform: Platform,
    pub(crate) symbols: Vec<Symbol>,
    pub(crate) functions: Vec<FunctionCode>,
    pub(crate) data_symbols: Vec<DataSymbol>,
    pub(crate) dependencies: Vec<String>,
    pub(crate) stripped: bool,
}

impl SharedObject {
    /// The library's file name (e.g. `libc.so.6`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The platform this object was built for.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// The full symbol table.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// The symbol at `id`, if any.
    pub fn symbol(&self, id: SymbolId) -> Option<&Symbol> {
        self.symbols.get(id.0 as usize)
    }

    /// Looks a symbol up by name (stripped local symbols have empty names and
    /// cannot be found this way).
    pub fn symbol_by_name(&self, name: &str) -> Option<(SymbolId, &Symbol)> {
        self.symbols
            .iter()
            .enumerate()
            .find(|(_, s)| !name.is_empty() && s.name == name)
            .map(|(i, s)| (SymbolId(i as u32), s))
    }

    /// Iterates over the dynamic exports (the library's public interface).
    pub fn exported_symbols(&self) -> impl Iterator<Item = (SymbolId, &Symbol)> {
        self.symbols
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_export())
            .map(|(i, s)| (SymbolId(i as u32), s))
    }

    /// Number of exported functions.
    pub fn export_count(&self) -> usize {
        self.exported_symbols().count()
    }

    /// The machine code for the symbol at `id`.
    ///
    /// # Errors
    ///
    /// Returns [`ObjError::UnknownSymbol`] when `id` is out of range,
    /// [`ObjError::SymbolIsImport`] when the symbol has no code in this
    /// object, and [`ObjError::DanglingFunctionIndex`] when the symbol points
    /// at a missing text section.
    pub fn code_for(&self, id: SymbolId) -> Result<&FunctionCode, ObjError> {
        let symbol = self.symbol(id).ok_or_else(|| ObjError::UnknownSymbol { name: id.to_string() })?;
        match symbol.def {
            SymbolDef::Import { .. } => Err(ObjError::SymbolIsImport { name: symbol.name.clone() }),
            SymbolDef::Defined { func_index, .. } => self
                .functions
                .get(func_index as usize)
                .ok_or_else(|| ObjError::DanglingFunctionIndex { symbol: symbol.name.clone(), index: func_index }),
        }
    }

    /// The machine code for the named symbol.
    ///
    /// # Errors
    ///
    /// Same as [`SharedObject::code_for`], plus [`ObjError::UnknownSymbol`]
    /// when no symbol has that name.
    pub fn code_for_name(&self, name: &str) -> Result<&FunctionCode, ObjError> {
        let (id, _) = self
            .symbol_by_name(name)
            .ok_or_else(|| ObjError::UnknownSymbol { name: name.to_owned() })?;
        self.code_for(id)
    }

    /// Libraries this object depends on (the `DT_NEEDED` analogue).
    pub fn dependencies(&self) -> &[String] {
        &self.dependencies
    }

    /// Named data slots (globals and TLS variables such as `errno`).
    pub fn data_symbols(&self) -> &[DataSymbol] {
        &self.data_symbols
    }

    /// The data symbol covering `offset`, if any.
    pub fn data_symbol_at(&self, offset: u32) -> Option<&DataSymbol> {
        self.data_symbols.iter().find(|d| d.offset == offset)
    }

    /// The data symbol with the given name, if any.
    pub fn data_symbol_named(&self, name: &str) -> Option<&DataSymbol> {
        self.data_symbols.iter().find(|d| d.name == name)
    }

    /// Total size of the text sections, in bytes.  Profiling time in the
    /// paper's §6.2 is dominated by this quantity.
    pub fn code_size(&self) -> usize {
        self.functions.iter().map(FunctionCode::size).sum()
    }

    /// Whether local symbol names have been removed.
    pub fn is_stripped(&self) -> bool {
        self.stripped
    }

    /// A 64-bit content fingerprint of the object
    /// ([FNV-1a](crate::stable_hash) over its serialized form).  Two objects
    /// with the same fingerprint are byte-identical for every purpose the
    /// toolchain cares about: name, platform, symbols, code and data image.
    /// Content-addressed caches (disassembly, fault-profile stores) key on
    /// this value, so it is stable across processes and toolchains.
    pub fn fingerprint(&self) -> u64 {
        crate::stable_hash::fold(crate::stable_hash::OFFSET_BASIS, &self.to_bytes())
    }

    /// Returns a copy of this object with local (non-exported) symbol names
    /// removed, as `strip` would produce.  Exports keep their names because
    /// the dynamic symbol table survives stripping.
    pub fn stripped(&self) -> SharedObject {
        let mut copy = self.clone();
        for symbol in &mut copy.symbols {
            if !symbol.is_export() && symbol.is_defined() {
                symbol.name = String::new();
                symbol.signature = None;
            }
        }
        copy.stripped = true;
        copy
    }

    /// Checks internal consistency: every defined symbol points at an existing
    /// text section and exported symbols have non-empty names.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), ObjError> {
        for symbol in &self.symbols {
            if let SymbolDef::Defined { func_index, exported } = symbol.def {
                if self.functions.get(func_index as usize).is_none() {
                    return Err(ObjError::DanglingFunctionIndex { symbol: symbol.name.clone(), index: func_index });
                }
                if exported && symbol.name.is_empty() {
                    return Err(ObjError::UnknownSymbol { name: "<unnamed export>".to_owned() });
                }
            }
        }
        Ok(())
    }

    /// Builds a map from symbol name to id for every named symbol.
    pub fn name_index(&self) -> HashMap<&str, SymbolId> {
        self.symbols
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.name.is_empty())
            .map(|(i, s)| (s.name.as_str(), SymbolId(i as u32)))
            .collect()
    }
}

impl fmt::Display for SharedObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} exports, {} functions, {} bytes of text",
            self.name,
            self.platform,
            self.export_count(),
            self.functions.len(),
            self.code_size()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObjectBuilder, ReturnType};
    use lfi_isa::{Inst, Loc, Reg};

    fn demo_object() -> SharedObject {
        let ret = Loc::Reg(Reg(0));
        ObjectBuilder::new("libdemo.so", Platform::LinuxX86)
            .dependency("libc.so.6")
            .data_symbol("errno", 0x12fff4, Storage::Tls)
            .data_symbol("demo_state", 0x40, Storage::Global)
            .export_with_signature("fail", ReturnType::Scalar, 0, vec![Inst::MovImm { dst: ret, imm: -1 }, Inst::Ret])
            .local("helper", vec![Inst::Ret])
            .import("malloc", Some("libc.so.6"))
            .build()
    }

    #[test]
    fn export_iteration_and_lookup() {
        let obj = demo_object();
        assert_eq!(obj.export_count(), 1);
        let (id, sym) = obj.symbol_by_name("fail").unwrap();
        assert!(sym.is_export());
        assert!(obj.code_for(id).is_ok());
        assert!(obj.code_for_name("fail").is_ok());
        assert!(obj.symbol_by_name("absent").is_none());
    }

    #[test]
    fn import_has_no_code() {
        let obj = demo_object();
        let err = obj.code_for_name("malloc").unwrap_err();
        assert_eq!(err, ObjError::SymbolIsImport { name: "malloc".into() });
        let err = obj.code_for_name("nope").unwrap_err();
        assert!(matches!(err, ObjError::UnknownSymbol { .. }));
    }

    #[test]
    fn data_symbols_are_queryable() {
        let obj = demo_object();
        assert_eq!(obj.data_symbol_at(0x12fff4).unwrap().name, "errno");
        assert_eq!(obj.data_symbol_named("errno").unwrap().storage, Storage::Tls);
        assert_eq!(obj.data_symbol_named("demo_state").unwrap().storage, Storage::Global);
        assert!(obj.data_symbol_at(0x9999).is_none());
    }

    #[test]
    fn stripping_removes_local_names_only() {
        let obj = demo_object();
        let stripped = obj.stripped();
        assert!(stripped.is_stripped());
        assert!(stripped.symbol_by_name("helper").is_none());
        assert!(stripped.symbol_by_name("fail").is_some());
        // The code is still there, just unnamed.
        assert_eq!(stripped.functions.len(), obj.functions.len());
        assert!(stripped.validate().is_ok());
    }

    #[test]
    fn validation_catches_dangling_indices() {
        let mut obj = demo_object();
        obj.symbols.push(Symbol {
            name: "broken".into(),
            def: SymbolDef::Defined { func_index: 99, exported: true },
            signature: None,
        });
        assert!(matches!(obj.validate(), Err(ObjError::DanglingFunctionIndex { index: 99, .. })));
    }

    #[test]
    fn fingerprint_tracks_content() {
        let obj = demo_object();
        assert_eq!(obj.fingerprint(), demo_object().fingerprint());
        assert_eq!(obj.fingerprint(), obj.clone().fingerprint());
        // Any content change — here stripping local names — changes the hash.
        assert_ne!(obj.fingerprint(), obj.stripped().fingerprint());
        let renamed = ObjectBuilder::new("libother.so", Platform::LinuxX86).build();
        assert_ne!(renamed.fingerprint(), demo_object().fingerprint());
    }

    #[test]
    fn display_and_sizes() {
        let obj = demo_object();
        assert!(obj.code_size() > 0);
        let text = obj.to_string();
        assert!(text.contains("libdemo.so"));
        assert!(text.contains("1 exports"));
    }

    #[test]
    fn name_index_covers_named_symbols() {
        let obj = demo_object();
        let idx = obj.name_index();
        assert!(idx.contains_key("fail"));
        assert!(idx.contains_key("malloc"));
        assert_eq!(idx.len(), 3);
    }
}
