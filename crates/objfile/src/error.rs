use std::error::Error;
use std::fmt;

/// Errors produced while parsing or querying a SimObj shared object.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ObjError {
    /// The byte stream did not start with the SimObj magic number.
    BadMagic,
    /// The format version is not understood by this implementation.
    UnsupportedVersion {
        /// The version found in the header.
        version: u16,
    },
    /// The byte stream ended prematurely.
    Truncated {
        /// Byte offset at which parsing stopped.
        offset: usize,
    },
    /// A string field was not valid UTF-8.
    InvalidString {
        /// Byte offset of the string.
        offset: usize,
    },
    /// An enum tag had an out-of-range value.
    InvalidTag {
        /// Name of the field being parsed.
        field: &'static str,
        /// The offending tag value.
        value: u8,
    },
    /// A symbol referenced a function index that does not exist.
    DanglingFunctionIndex {
        /// Name of the symbol.
        symbol: String,
        /// The missing function index.
        index: u32,
    },
    /// The requested symbol does not exist in this object.
    UnknownSymbol {
        /// The requested name.
        name: String,
    },
    /// The requested symbol exists but is an import with no code here.
    SymbolIsImport {
        /// The requested name.
        name: String,
    },
}

impl fmt::Display for ObjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjError::BadMagic => write!(f, "not a SimObj file (bad magic)"),
            ObjError::UnsupportedVersion { version } => {
                write!(f, "unsupported SimObj format version {version}")
            }
            ObjError::Truncated { offset } => write!(f, "object file truncated at byte {offset}"),
            ObjError::InvalidString { offset } => {
                write!(f, "invalid UTF-8 string at byte {offset}")
            }
            ObjError::InvalidTag { field, value } => {
                write!(f, "invalid tag value {value} for field {field}")
            }
            ObjError::DanglingFunctionIndex { symbol, index } => {
                write!(f, "symbol {symbol} references missing function index {index}")
            }
            ObjError::UnknownSymbol { name } => write!(f, "symbol {name} not found in object"),
            ObjError::SymbolIsImport { name } => {
                write!(f, "symbol {name} is an import and carries no code in this object")
            }
        }
    }
}

impl Error for ObjError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty() {
        let errors = [
            ObjError::BadMagic,
            ObjError::UnsupportedVersion { version: 9 },
            ObjError::Truncated { offset: 12 },
            ObjError::InvalidString { offset: 3 },
            ObjError::InvalidTag { field: "storage", value: 7 },
            ObjError::DanglingFunctionIndex { symbol: "f".into(), index: 4 },
            ObjError::UnknownSymbol { name: "g".into() },
            ObjError::SymbolIsImport { name: "h".into() },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
