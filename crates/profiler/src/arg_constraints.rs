//! Argument-constraint inference for error return values.
//!
//! §3.1 lists, as a limitation, that "fault profiles may include false
//! positives, i.e., return codes that can be returned by the corresponding
//! function only when certain combinations of arguments are provided" — the
//! example being `read` returning -1/`EWOULDBLOCK` only for asynchronous file
//! descriptors — and notes that "inferring the relationship between arguments
//! can be done using symbolic execution, but the current LFI prototype does
//! not support this yet".
//!
//! This module implements a lightweight version of that inference.  For each
//! constant error value found by the reverse constant propagation, it looks
//! at the conditional branches that *gate* the assignment site: a comparison
//! of an incoming argument against an immediate whose outcome decides whether
//! the assignment block can be reached at all yields an [`ArgConstraint`]
//! such as `arg0 == 2`.  The result lets a tester (or the scenario
//! generators) distinguish unconditional error returns from
//! argument-dependent ones, which is exactly the information needed to avoid
//! wasting time on faults the program can never observe for the argument
//! values it actually passes.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use lfi_disasm::{BlockId, Cfg};
use lfi_isa::{Abi, Cond, Inst, Loc, Operand};

use crate::return_codes::{analyze_returns, ValueOrigin};

/// A relation between an incoming argument and an immediate constant that
/// must hold for a particular error value to be returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArgConstraint {
    /// Index of the incoming argument.
    pub argument: u8,
    /// The relation the argument must satisfy.
    pub relation: Cond,
    /// The constant the argument is compared against.
    pub value: i64,
}

impl ArgConstraint {
    /// Creates a constraint.
    pub fn new(argument: u8, relation: Cond, value: i64) -> Self {
        ArgConstraint { argument, relation, value }
    }

    /// Whether a concrete argument vector satisfies the constraint.  Missing
    /// arguments never satisfy it.
    pub fn holds(&self, args: &[i64]) -> bool {
        args.get(self.argument as usize).is_some_and(|a| self.relation.holds(*a, self.value))
    }
}

impl fmt::Display for ArgConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.relation {
            Cond::Eq => "==",
            Cond::Ne => "!=",
            Cond::Lt => "<",
            Cond::Le => "<=",
            Cond::Gt => ">",
            Cond::Ge => ">=",
        };
        write!(f, "arg{} {op} {}", self.argument, self.value)
    }
}

/// Constraints for one function: error value → the argument constraints that
/// must *all* hold for the value to be returned.  Values with no inferred
/// constraint (unconditional error returns) are not present.
pub type FunctionArgConstraints = BTreeMap<i64, Vec<ArgConstraint>>;

/// Runs the argument-constraint inference over one function.
///
/// The analysis is deliberately conservative: a constraint is reported only
/// when the branch in question *decides* reachability of the assignment site
/// (the site is reachable through exactly one of the branch's two edges), so
/// every reported constraint genuinely gates the error value.  It is not
/// complete — error values steered by computed conditions, memory state or
/// callee behaviour simply get no constraint, mirroring how the paper scopes
/// this as future work rather than a soundness requirement.
pub fn analyze_arg_constraints(cfg: &Cfg, abi: &Abi) -> FunctionArgConstraints {
    let analysis = analyze_returns(cfg, abi);
    let mut per_value: BTreeMap<i64, Vec<BTreeSet<ArgConstraint>>> = BTreeMap::new();
    for origin in &analysis.origins {
        if let ValueOrigin::Const { value, block, .. } = origin {
            per_value.entry(*value).or_default().push(constraints_gating_block(cfg, *block));
        }
    }

    let mut out = FunctionArgConstraints::new();
    for (value, site_constraints) in per_value {
        // A constraint holds for the value only if every assignment site of
        // that value is gated by it.
        let mut sites = site_constraints.into_iter();
        let Some(first) = sites.next() else { continue };
        let common = sites.fold(first, |acc, next| acc.intersection(&next).copied().collect());
        if !common.is_empty() {
            out.insert(value, common.into_iter().collect());
        }
    }
    out
}

/// The argument constraints that gate reachability of `target` from the
/// function entry.
fn constraints_gating_block(cfg: &Cfg, target: BlockId) -> BTreeSet<ArgConstraint> {
    let mut constraints = BTreeSet::new();
    for block in cfg.blocks() {
        if block.id == target || block.is_empty() {
            continue;
        }
        let insts = cfg.block_insts(block.id);
        let Some(&Inst::JmpCond { cond, target: jump_target }) = insts.last() else {
            continue;
        };
        // The comparison feeding the branch: the last `cmp` in the block.
        let Some(&Inst::Cmp { a: Loc::Arg(argument), b: Operand::Imm(value) }) =
            insts.iter().rev().find(|inst| matches!(inst, Inst::Cmp { .. }))
        else {
            continue;
        };

        let taken = cfg.block_containing(jump_target as usize);
        let fallthrough = if block.end < cfg.insts().len() { cfg.block_containing(block.end) } else { None };

        let via_taken = taken.is_some_and(|s| reaches(cfg, s, target, block.id));
        let via_fallthrough = fallthrough.is_some_and(|s| reaches(cfg, s, target, block.id));
        if via_taken && !via_fallthrough {
            constraints.insert(ArgConstraint::new(argument, cond, value));
        } else if via_fallthrough && !via_taken {
            constraints.insert(ArgConstraint::new(argument, cond.negated(), value));
        }
    }
    constraints
}

/// Whether `target` is reachable from `from` without passing through `wall`.
fn reaches(cfg: &Cfg, from: BlockId, target: BlockId, wall: BlockId) -> bool {
    if from == wall {
        return false;
    }
    let mut queue = VecDeque::from([from]);
    let mut seen = BTreeSet::from([from]);
    while let Some(block) = queue.pop_front() {
        if block == target {
            return true;
        }
        for &succ in &cfg.block(block).successors {
            if succ != wall && seen.insert(succ) {
                queue.push_back(succ);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_isa::Platform;

    fn abi() -> Abi {
        Platform::LinuxX86.abi()
    }

    fn ret_loc() -> Loc {
        abi().return_loc()
    }

    fn analyze(insts: Vec<Inst>) -> FunctionArgConstraints {
        analyze_arg_constraints(&Cfg::build(insts), &abi())
    }

    #[test]
    fn unconditional_error_has_no_constraint() {
        let constraints = analyze(vec![Inst::MovImm { dst: ret_loc(), imm: -1 }, Inst::Ret]);
        assert!(constraints.is_empty());
    }

    #[test]
    fn argument_gated_error_is_constrained() {
        // if (arg0 == 2) return -11;  return 0;   (read()/EWOULDBLOCK shape)
        let insts = vec![
            Inst::Cmp { a: Loc::Arg(0), b: Operand::Imm(2) },
            Inst::JmpCond { cond: Cond::Eq, target: 4 },
            Inst::MovImm { dst: ret_loc(), imm: 0 },
            Inst::Ret,
            Inst::MovImm { dst: ret_loc(), imm: -11 },
            Inst::Ret,
        ];
        let constraints = analyze(insts);
        assert_eq!(constraints[&-11], vec![ArgConstraint::new(0, Cond::Eq, 2)]);
        // The success return is gated by the opposite outcome of the same
        // comparison.
        assert_eq!(constraints[&0], vec![ArgConstraint::new(0, Cond::Ne, 2)]);
    }

    #[test]
    fn fallthrough_paths_get_the_negated_relation() {
        // if (arg1 != 0) goto success; return -7;
        let insts = vec![
            Inst::Cmp { a: Loc::Arg(1), b: Operand::Imm(0) },
            Inst::JmpCond { cond: Cond::Ne, target: 4 },
            Inst::MovImm { dst: ret_loc(), imm: -7 },
            Inst::Ret,
            Inst::MovImm { dst: ret_loc(), imm: 0 },
            Inst::Ret,
        ];
        let constraints = analyze(insts);
        assert_eq!(constraints[&-7], vec![ArgConstraint::new(1, Cond::Eq, 0)]);
    }

    #[test]
    fn nested_guards_accumulate() {
        // if (arg0 != 1) goto out; if (arg1 != 2) goto out; return -9; out: return 0;
        let insts = vec![
            Inst::Cmp { a: Loc::Arg(0), b: Operand::Imm(1) },
            Inst::JmpCond { cond: Cond::Ne, target: 6 },
            Inst::Cmp { a: Loc::Arg(1), b: Operand::Imm(2) },
            Inst::JmpCond { cond: Cond::Ne, target: 6 },
            Inst::MovImm { dst: ret_loc(), imm: -9 },
            Inst::Ret,
            Inst::MovImm { dst: ret_loc(), imm: 0 },
            Inst::Ret,
        ];
        let constraints = analyze(insts);
        let got = &constraints[&-9];
        assert!(got.contains(&ArgConstraint::new(0, Cond::Eq, 1)), "{got:?}");
        assert!(got.contains(&ArgConstraint::new(1, Cond::Eq, 2)), "{got:?}");
    }

    #[test]
    fn value_assigned_on_both_sides_of_a_branch_is_unconstrained() {
        // Both arms assign -5, so the branch does not gate the value.
        let insts = vec![
            Inst::Cmp { a: Loc::Arg(0), b: Operand::Imm(3) },
            Inst::JmpCond { cond: Cond::Eq, target: 4 },
            Inst::MovImm { dst: ret_loc(), imm: -5 },
            Inst::Ret,
            Inst::MovImm { dst: ret_loc(), imm: -5 },
            Inst::Ret,
        ];
        assert!(analyze(insts).is_empty());
    }

    #[test]
    fn non_argument_comparisons_yield_no_constraint() {
        // The guard compares a global, not an argument.
        let insts = vec![
            Inst::Cmp { a: Loc::Reg(lfi_isa::Reg(4)), b: Operand::Imm(7) },
            Inst::JmpCond { cond: Cond::Eq, target: 4 },
            Inst::MovImm { dst: ret_loc(), imm: 0 },
            Inst::Ret,
            Inst::MovImm { dst: ret_loc(), imm: -3 },
            Inst::Ret,
        ];
        assert!(analyze(insts).is_empty());
    }

    #[test]
    fn constraint_evaluation_against_concrete_arguments() {
        let constraint = ArgConstraint::new(1, Cond::Ge, 10);
        assert!(constraint.holds(&[0, 10]));
        assert!(constraint.holds(&[0, 11]));
        assert!(!constraint.holds(&[0, 9]));
        assert!(!constraint.holds(&[0]), "missing arguments never satisfy a constraint");
        assert_eq!(constraint.to_string(), "arg1 >= 10");
        assert_eq!(ArgConstraint::new(0, Cond::Eq, 2).to_string(), "arg0 == 2");
    }

    #[test]
    fn negation_round_trips() {
        for cond in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
            assert_eq!(cond.negated().negated(), cond);
            for (a, b) in [(1, 2), (2, 1), (3, 3)] {
                assert_ne!(cond.holds(a, b), cond.negated().holds(a, b));
            }
        }
    }
}
