//! Intra-procedural return-code analysis: the "reverse constant propagation"
//! of §3.1.
//!
//! For every exit of a function the analysis identifies the last write to the
//! ABI return location and walks the control flow graph backwards, collecting
//! every value that can propagate into that location: immediate constants
//! (the common `#define`-style error codes), the results of direct calls to
//! dependent functions (resolved recursively by the inter-procedural layer),
//! raw system-call results, indirect-call results (unresolvable statically)
//! and unknown/argument-derived values.

use std::collections::{BTreeSet, HashSet};

use lfi_disasm::{BlockId, Cfg};
use lfi_isa::{Abi, Inst, Loc};

/// Where a value that reaches the return location comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueOrigin {
    /// An immediate constant assigned at the given instruction.
    Const {
        /// The constant value.
        value: i64,
        /// Block containing the assignment.
        block: BlockId,
        /// Absolute instruction index of the assignment.
        inst: usize,
    },
    /// The return value of a direct call to the symbol with this index.
    CalleeReturn {
        /// Symbol-table index of the callee.
        sym: u32,
        /// Block containing the call.
        block: BlockId,
    },
    /// The return value of an indirect call; statically unresolvable.
    IndirectCallReturn {
        /// Block containing the call.
        block: BlockId,
    },
    /// The raw result of a system call.
    SyscallReturn {
        /// System call number.
        num: u32,
        /// Block containing the syscall.
        block: BlockId,
    },
    /// The value of an incoming argument.
    Argument {
        /// Argument index.
        index: u8,
    },
    /// Anything the analysis cannot resolve to one of the cases above.
    Unknown,
}

/// The result of the intra-procedural analysis for one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReturnAnalysis {
    /// Every origin that can reach the return location at some `ret`.
    pub origins: BTreeSet<ValueOrigin>,
    /// The longest chain of location-to-location propagations observed while
    /// tracing (the paper reports this is ≤ 3 in practice).
    pub max_propagation_hops: usize,
}

impl ReturnAnalysis {
    /// The constant return values found, in ascending order.
    pub fn constants(&self) -> Vec<i64> {
        let mut values: Vec<i64> = self
            .origins
            .iter()
            .filter_map(|o| match o {
                ValueOrigin::Const { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        values.sort_unstable();
        values.dedup();
        values
    }

    /// True if any origin is a direct call (requiring recursive resolution).
    pub fn has_callee_returns(&self) -> bool {
        self.origins.iter().any(|o| matches!(o, ValueOrigin::CalleeReturn { .. }))
    }

    /// True if some value reaching the return location could not be resolved
    /// (indirect call, argument, or unknown) — a potential false-negative
    /// source.
    pub fn has_unresolved(&self) -> bool {
        self.origins.iter().any(|o| {
            matches!(o, ValueOrigin::IndirectCallReturn { .. } | ValueOrigin::Argument { .. } | ValueOrigin::Unknown)
        })
    }
}

/// Runs the reverse constant propagation over one function.
pub fn analyze_returns(cfg: &Cfg, abi: &Abi) -> ReturnAnalysis {
    let mut analysis = ReturnAnalysis::default();
    let reachable = cfg.reachable_blocks();
    let return_loc = abi.return_loc();

    for block in cfg.blocks() {
        if !reachable.contains(&block.id) || block.is_empty() {
            continue;
        }
        let last_index = block.end - 1;
        if !matches!(cfg.insts()[last_index], Inst::Ret) {
            continue;
        }
        // Trace backwards from just before the `ret`.
        let mut visited: HashSet<(BlockId, Loc)> = HashSet::new();
        trace(cfg, abi, block.id, block.len() - 1, return_loc, 0, &mut visited, &mut analysis);
    }
    analysis
}

/// Walks backwards from `block[..upto]` looking for the writers of `loc`.
#[allow(clippy::too_many_arguments)]
fn trace(
    cfg: &Cfg,
    abi: &Abi,
    block_id: BlockId,
    upto: usize,
    mut loc: Loc,
    hops: usize,
    visited: &mut HashSet<(BlockId, Loc)>,
    out: &mut ReturnAnalysis,
) {
    out.max_propagation_hops = out.max_propagation_hops.max(hops);
    let block = cfg.block(block_id);
    let insts = cfg.block_insts(block_id);
    let mut hops = hops;

    for offset in (0..upto).rev() {
        let abs_index = block.start + offset;
        let inst = insts[offset];
        match inst {
            Inst::MovImm { dst, imm } if dst == loc => {
                out.origins.insert(ValueOrigin::Const { value: imm, block: block_id, inst: abs_index });
                return;
            }
            Inst::Mov { dst, src } if dst == loc => {
                // The value is whatever `src` held at this point: keep tracing
                // the source location upwards.
                loc = src;
                hops += 1;
                out.max_propagation_hops = out.max_propagation_hops.max(hops);
            }
            Inst::Alu { dst, .. } | Inst::Neg { dst } if dst == loc => {
                // A computed value; not a propagated constant.
                out.origins.insert(ValueOrigin::Unknown);
                return;
            }
            Inst::Load { dst, .. } | Inst::LeaPicBase { dst } if Loc::Reg(dst) == loc => {
                out.origins.insert(ValueOrigin::Unknown);
                return;
            }
            Inst::Call { sym } => {
                if loc == abi.return_loc() {
                    out.origins.insert(ValueOrigin::CalleeReturn { sym, block: block_id });
                    return;
                }
                if !loc.survives_calls() {
                    out.origins.insert(ValueOrigin::Unknown);
                    return;
                }
            }
            Inst::CallIndirect { .. } => {
                if loc == abi.return_loc() {
                    out.origins.insert(ValueOrigin::IndirectCallReturn { block: block_id });
                    return;
                }
                if !loc.survives_calls() {
                    out.origins.insert(ValueOrigin::Unknown);
                    return;
                }
            }
            Inst::Syscall { num } => {
                if loc == abi.return_loc() {
                    out.origins.insert(ValueOrigin::SyscallReturn { num, block: block_id });
                    return;
                }
                if !loc.survives_calls() {
                    out.origins.insert(ValueOrigin::Unknown);
                    return;
                }
            }
            _ => {}
        }
    }

    // Reached the top of the block without finding a writer: continue into
    // every predecessor (expanding the product graph G' on demand).
    let predecessors = cfg.predecessors(block_id);
    let is_entry = Some(block_id) == cfg.entry();
    if is_entry || predecessors.is_empty() {
        match loc {
            Loc::Arg(index) => {
                out.origins.insert(ValueOrigin::Argument { index });
            }
            _ => {
                out.origins.insert(ValueOrigin::Unknown);
            }
        }
        if predecessors.is_empty() {
            return;
        }
    }
    for &pred in predecessors {
        if visited.insert((pred, loc)) {
            let pred_len = cfg.block(pred).len();
            trace(cfg, abi, pred, pred_len, loc, hops + 1, visited, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_isa::{BinAluOp, Cond, Operand, Platform, Reg};

    fn abi() -> Abi {
        Platform::LinuxX86.abi()
    }

    fn ret_loc() -> Loc {
        abi().return_loc()
    }

    fn analyze(insts: Vec<Inst>) -> ReturnAnalysis {
        analyze_returns(&Cfg::build(insts), &abi())
    }

    #[test]
    fn single_constant_return() {
        let analysis = analyze(vec![Inst::MovImm { dst: ret_loc(), imm: -1 }, Inst::Ret]);
        assert_eq!(analysis.constants(), vec![-1]);
        assert!(!analysis.has_unresolved());
    }

    #[test]
    fn figure_2_shape_finds_both_constants() {
        // The paper's Figure 2: if (arg == 0) ret = 0; if (arg != 1) ret = 5; return ret.
        // Modelled with a local stack slot as the `ret` variable.
        let local = Loc::Stack(-4);
        let insts = vec![
            Inst::Cmp { a: Loc::Arg(0), b: Operand::Imm(0) },
            Inst::JmpCond { cond: Cond::Ne, target: 3 },
            Inst::MovImm { dst: local, imm: 0 },
            Inst::Cmp { a: Loc::Arg(0), b: Operand::Imm(1) },
            Inst::JmpCond { cond: Cond::Ne, target: 6 },
            Inst::MovImm { dst: local, imm: 5 },
            Inst::Mov { dst: ret_loc(), src: local },
            Inst::Ret,
        ];
        let analysis = analyze(insts);
        assert_eq!(analysis.constants(), vec![0, 5]);
        assert!(analysis.max_propagation_hops >= 1);
        // The uninitialized-local path also reaches the return (unknown).
        assert!(analysis.has_unresolved());
    }

    #[test]
    fn branchy_error_paths_are_all_found() {
        // if (arg0 == 1) return -9; if (arg0 == 2) return -5; return 0;
        let insts = vec![
            Inst::Cmp { a: Loc::Arg(0), b: Operand::Imm(1) },
            Inst::JmpCond { cond: Cond::Eq, target: 6 },
            Inst::Cmp { a: Loc::Arg(0), b: Operand::Imm(2) },
            Inst::JmpCond { cond: Cond::Eq, target: 8 },
            Inst::MovImm { dst: ret_loc(), imm: 0 },
            Inst::Ret,
            Inst::MovImm { dst: ret_loc(), imm: -9 },
            Inst::Ret,
            Inst::MovImm { dst: ret_loc(), imm: -5 },
            Inst::Ret,
        ];
        assert_eq!(analyze(insts).constants(), vec![-9, -5, 0]);
    }

    #[test]
    fn callee_and_syscall_origins_are_reported() {
        let insts = vec![Inst::Call { sym: 7 }, Inst::Ret];
        let analysis = analyze(insts);
        assert!(analysis.has_callee_returns());
        assert!(analysis.origins.iter().any(|o| matches!(o, ValueOrigin::CalleeReturn { sym: 7, .. })));

        let insts = vec![Inst::Syscall { num: 3 }, Inst::Ret];
        let analysis = analyze(insts);
        assert!(analysis.origins.iter().any(|o| matches!(o, ValueOrigin::SyscallReturn { num: 3, .. })));
    }

    #[test]
    fn indirect_call_is_unresolvable() {
        let insts = vec![Inst::CallIndirect { loc: Loc::Reg(Reg(5)) }, Inst::Ret];
        let analysis = analyze(insts);
        assert!(analysis.has_unresolved());
        assert!(analysis.origins.iter().any(|o| matches!(o, ValueOrigin::IndirectCallReturn { .. })));
    }

    #[test]
    fn computed_values_are_unknown() {
        let insts = vec![
            Inst::MovImm { dst: ret_loc(), imm: 4 },
            Inst::Alu { op: BinAluOp::Add, dst: ret_loc(), src: Operand::Imm(1) },
            Inst::Ret,
        ];
        let analysis = analyze(insts);
        assert!(analysis.constants().is_empty());
        assert!(analysis.has_unresolved());
    }

    #[test]
    fn argument_passthrough_is_reported() {
        let insts = vec![Inst::Mov { dst: ret_loc(), src: Loc::Arg(2) }, Inst::Ret];
        let analysis = analyze(insts);
        assert!(analysis.origins.contains(&ValueOrigin::Argument { index: 2 }));
    }

    #[test]
    fn constants_behind_calls_survive_on_stack_but_not_in_registers() {
        // A constant parked in a register is clobbered by a call; the same
        // constant parked on the stack survives.
        let reg_case = vec![Inst::MovImm { dst: ret_loc(), imm: -7 }, Inst::Call { sym: 1 }, Inst::Ret];
        let analysis = analyze(reg_case);
        // The call's own return value is what reaches the return location.
        assert!(analysis.has_callee_returns());
        assert!(analysis.constants().is_empty());

        let stack_case = vec![
            Inst::MovImm { dst: Loc::Stack(-8), imm: -7 },
            Inst::Call { sym: 1 },
            Inst::Mov { dst: ret_loc(), src: Loc::Stack(-8) },
            Inst::Ret,
        ];
        assert_eq!(analyze(stack_case).constants(), vec![-7]);
    }

    #[test]
    fn loops_terminate_and_find_constants() {
        // while (arg0 != 0) { } return -2;
        let insts = vec![
            Inst::Cmp { a: Loc::Arg(0), b: Operand::Imm(0) },
            Inst::JmpCond { cond: Cond::Ne, target: 0 },
            Inst::MovImm { dst: ret_loc(), imm: -2 },
            Inst::Ret,
        ];
        assert_eq!(analyze(insts).constants(), vec![-2]);
    }

    #[test]
    fn void_function_reports_unknown_only() {
        let analysis = analyze(vec![Inst::Nop, Inst::Ret]);
        assert!(analysis.constants().is_empty());
        assert!(analysis.has_unresolved());
    }

    #[test]
    fn unreachable_ret_blocks_are_ignored() {
        // Entry returns 0; dead code afterwards would return -5 but can never
        // execute *and is never jumped to*, so it contributes nothing.
        let insts = vec![
            Inst::MovImm { dst: ret_loc(), imm: 0 },
            Inst::Ret,
            Inst::MovImm { dst: ret_loc(), imm: -5 },
            Inst::Ret,
        ];
        assert_eq!(analyze(insts).constants(), vec![0]);
    }
}
