//! Accuracy scoring for the profiler (§6.3).
//!
//! Accuracy is defined in the paper as `TP / (TP + FN + FP)`: a *true
//! positive* is an error return code the profiler correctly found, a *false
//! negative* is a returnable error it missed, and a *false positive* is a
//! reported code that cannot actually be returned.  The ground truth can be
//! either library documentation (Table 2) or execution-derived truth (the
//! libpcre manual-inspection experiment).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use lfi_profile::FaultProfile;

/// The error codes each function of a library can actually return, according
/// to some ground truth (documentation or execution).
pub type GroundTruth = BTreeMap<String, BTreeSet<i64>>;

/// Per-library accuracy figures, in the shape of the paper's Table 2 rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccuracyReport {
    /// Error codes correctly found.
    pub true_positives: usize,
    /// Returnable errors the profiler missed.
    pub false_negatives: usize,
    /// Reported codes that cannot actually be returned.
    pub false_positives: usize,
}

impl AccuracyReport {
    /// The paper's accuracy metric `TP / (TP + FN + FP)`, in [0, 1].
    /// Returns 1.0 for the degenerate empty case.
    pub fn accuracy(&self) -> f64 {
        let total = self.true_positives + self.false_negatives + self.false_positives;
        if total == 0 {
            1.0
        } else {
            self.true_positives as f64 / total as f64
        }
    }

    /// Accuracy as a rounded percentage, as printed in Table 2.
    pub fn accuracy_percent(&self) -> u32 {
        (self.accuracy() * 100.0).round() as u32
    }

    /// Merges another report into this one (for multi-library aggregates).
    pub fn absorb(&mut self, other: AccuracyReport) {
        self.true_positives += other.true_positives;
        self.false_negatives += other.false_negatives;
        self.false_positives += other.false_positives;
    }
}

impl fmt::Display for AccuracyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}% ({} TPs, {} FNs, {} FPs)",
            self.accuracy_percent(),
            self.true_positives,
            self.false_negatives,
            self.false_positives
        )
    }
}

/// Extracts the per-function error-code sets found by the profiler.
pub fn profile_error_sets(profile: &FaultProfile) -> GroundTruth {
    profile.functions.iter().map(|f| (f.name.clone(), f.error_values())).collect()
}

/// Scores a profile against ground truth.
///
/// Only functions present in the ground truth participate; functions the
/// profiler saw but the ground truth does not mention are ignored, mirroring
/// the paper's comparison against (partial) documentation.
pub fn score_profile(profile: &FaultProfile, truth: &GroundTruth) -> AccuracyReport {
    let found = profile_error_sets(profile);
    score_sets(&found, truth)
}

/// Scores already-extracted per-function error sets against ground truth.
pub fn score_sets(found: &GroundTruth, truth: &GroundTruth) -> AccuracyReport {
    let mut report = AccuracyReport::default();
    for (function, truth_values) in truth {
        let empty = BTreeSet::new();
        let found_values = found.get(function).unwrap_or(&empty);
        report.true_positives += found_values.intersection(truth_values).count();
        report.false_negatives += truth_values.difference(found_values).count();
        report.false_positives += found_values.difference(truth_values).count();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_profile::{ErrorReturn, FunctionProfile};

    fn truth_of(entries: &[(&str, &[i64])]) -> GroundTruth {
        entries
            .iter()
            .map(|(name, values)| ((*name).to_owned(), values.iter().copied().collect()))
            .collect()
    }

    fn profile_of(entries: &[(&str, &[i64])]) -> FaultProfile {
        let mut profile = FaultProfile::new("libx.so");
        for (name, values) in entries {
            profile.push_function(FunctionProfile {
                name: (*name).to_owned(),
                error_returns: values.iter().map(|v| ErrorReturn::bare(*v)).collect(),
            });
        }
        profile
    }

    #[test]
    fn perfect_match_scores_100() {
        let profile = profile_of(&[("f", &[-1, -2]), ("g", &[-3])]);
        let truth = truth_of(&[("f", &[-1, -2]), ("g", &[-3])]);
        let report = score_profile(&profile, &truth);
        assert_eq!(report, AccuracyReport { true_positives: 3, false_negatives: 0, false_positives: 0 });
        assert_eq!(report.accuracy_percent(), 100);
    }

    #[test]
    fn misses_and_extras_are_counted() {
        let profile = profile_of(&[("f", &[-1, -9]), ("g", &[])]);
        let truth = truth_of(&[("f", &[-1, -2]), ("g", &[-3])]);
        let report = score_profile(&profile, &truth);
        assert_eq!(report.true_positives, 1);
        assert_eq!(report.false_negatives, 2); // -2 and -3 missed
        assert_eq!(report.false_positives, 1); // -9 cannot happen
        assert_eq!(report.accuracy_percent(), 25);
    }

    #[test]
    fn functions_not_in_truth_are_ignored() {
        let profile = profile_of(&[("undocumented", &[-1])]);
        let truth = truth_of(&[("f", &[-1])]);
        let report = score_profile(&profile, &truth);
        assert_eq!(report.true_positives, 0);
        assert_eq!(report.false_negatives, 1);
        assert_eq!(report.false_positives, 0);
    }

    #[test]
    fn libpcre_shape_matches_the_paper_formula() {
        // 52 TPs, 10 FNs, 0 FPs → 84% (the §6.3 manual-inspection figure).
        let report = AccuracyReport { true_positives: 52, false_negatives: 10, false_positives: 0 };
        assert_eq!(report.accuracy_percent(), 84);
        assert!(report.to_string().contains("84%"));
    }

    #[test]
    fn absorb_aggregates_counts() {
        let mut total = AccuracyReport::default();
        total.absorb(AccuracyReport { true_positives: 2, false_negatives: 1, false_positives: 0 });
        total.absorb(AccuracyReport { true_positives: 3, false_negatives: 0, false_positives: 1 });
        assert_eq!(total, AccuracyReport { true_positives: 5, false_negatives: 1, false_positives: 1 });
    }

    #[test]
    fn empty_report_is_perfect() {
        assert_eq!(AccuracyReport::default().accuracy(), 1.0);
    }
}
