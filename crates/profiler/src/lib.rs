//! # lfi-profiler — the LFI profiler (§3 of the paper)
//!
//! The profiler statically analyzes library *binaries* — no source code, no
//! documentation, no symbols beyond the dynamic exports — and produces, for
//! every exported function, the set of error return values it can expose and
//! the side effects (errno-style TLS writes, globals, output arguments) that
//! accompany them.  The pipeline is:
//!
//! 1. disassemble the library and build a CFG per function (`lfi-disasm`);
//! 2. run a *reverse constant propagation* from every write to the ABI return
//!    location that precedes a `ret` ([`analyze_returns`]);
//! 3. recursively resolve calls to dependent functions, following imports
//!    into other registered libraries and system calls into the kernel image
//!    ([`Profiler`]);
//! 4. scan the blocks containing the constant assignments for side-effect
//!    writes (the `side_effects` module);
//! 5. optionally apply the two unsound filtering heuristics of §3.1
//!    ([`ProfilerOptions`]);
//! 6. emit a [`lfi_profile::FaultProfile`].
//!
//! Steps 1–4 run over a shared, thread-safe [`AnalysisDb`]: disassemblies are
//! content-addressed `Arc`s, completed inter-procedural resolutions are
//! memoized in sharded maps keyed by interned symbols, and the driver loop is
//! a bounded worker pool that schedules work per *function*, so batch calls
//! and repeat calls reuse every dependency analysis.
//!
//! The [`accuracy`] module scores profiles against ground truth the way the
//! paper's §6.3 does.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
mod analysis_db;
mod arg_constraints;
mod error;
mod interproc;
mod options;
mod return_codes;
mod side_effects;

pub use accuracy::{score_profile, score_sets, AccuracyReport, GroundTruth};
pub use analysis_db::AnalysisDb;
pub use arg_constraints::{analyze_arg_constraints, ArgConstraint, FunctionArgConstraints};
pub use error::ProfilerError;
pub use interproc::{LibraryProfileReport, Profiler, ProfilingStats};
pub use options::ProfilerOptions;
pub use return_codes::{analyze_returns, ReturnAnalysis, ValueOrigin};
pub use side_effects::{classify_side_effects, side_effects_in_block, RawSideEffect, RawSideTarget, RawSideValue};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Profiler>();
        assert_send_sync::<AnalysisDb>();
        assert_send_sync::<ProfilerOptions>();
        assert_send_sync::<AccuracyReport>();
        assert_send_sync::<ProfilerError>();
    }
}
