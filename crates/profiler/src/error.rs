use std::error::Error;
use std::fmt;

use lfi_disasm::DisasmError;

/// Errors produced by the LFI profiler.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProfilerError {
    /// The named library was never registered with the profiler.
    UnknownLibrary {
        /// The requested library name.
        name: String,
    },
    /// The library binary could not be disassembled.
    Disasm(DisasmError),
    /// A profiling worker panicked while analyzing a function; the panic was
    /// caught and converted so batch profiling can report it as an error
    /// instead of tearing down the caller.
    AnalysisPanicked {
        /// The function (or library, when attribution is impossible) whose
        /// analysis panicked.
        function: String,
        /// The panic message, when it carried one.
        message: String,
    },
}

impl fmt::Display for ProfilerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfilerError::UnknownLibrary { name } => {
                write!(f, "library {name} has not been registered with the profiler")
            }
            ProfilerError::Disasm(e) => write!(f, "disassembly failed: {e}"),
            ProfilerError::AnalysisPanicked { function, message } => {
                write!(f, "analysis of {function} panicked: {message}")
            }
        }
    }
}

impl Error for ProfilerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProfilerError::Disasm(e) => Some(e),
            ProfilerError::UnknownLibrary { .. } | ProfilerError::AnalysisPanicked { .. } => None,
        }
    }
}

impl From<DisasmError> for ProfilerError {
    fn from(value: DisasmError) -> Self {
        ProfilerError::Disasm(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ProfilerError::UnknownLibrary { name: "libzzz.so".into() };
        assert!(e.to_string().contains("libzzz.so"));
        assert!(e.source().is_none());
        let e = ProfilerError::from(DisasmError::BranchOutOfRange { function: "f".into(), target: 1, len: 1 });
        assert!(e.source().is_some());
        let e = ProfilerError::AnalysisPanicked { function: "f".into(), message: "boom".into() };
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_none());
    }
}
