//! The shared, thread-safe analysis cache behind the profiler.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use lfi_disasm::DisasmCache;
use lfi_intern::Symbol;
use lfi_objfile::SymbolId;
use lfi_profile::{ErrorReturn, SideEffect};

/// Number of lock shards for the resolution memo.  Resolution entries are
/// small and written once, so the shard count only needs to exceed the worker
/// count to keep write contention negligible.
const RESOLUTION_SHARDS: usize = 16;

/// The resolved set of returnable values of one function, as stored in the
/// [`AnalysisDb`] memo.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct ResolvedReturns {
    /// Distinct return values with their merged side effects.
    pub(crate) returns: Vec<ErrorReturn>,
    /// True when some contribution (indirect call, argument pass-through,
    /// unknown origin) could not be resolved statically.
    pub(crate) has_unresolved: bool,
    /// Longest constant-propagation chain observed in this function's
    /// resolution subtree (feeds `ProfilingStats::max_propagation_hops`).
    pub(crate) max_hops: usize,
    /// Height of the resolution subtree below this function: the deepest
    /// call-chain level explored to compute this result (0 for a leaf).
    ///
    /// A memo entry may only be *served* at call depth `d` when
    /// `d + call_height` still fits the profiler's `max_call_depth` — that is
    /// exactly the condition under which a from-scratch resolution at depth
    /// `d` would have explored the same subtree without hitting the depth
    /// bound, so serving the entry cannot change any output a cold run would
    /// produce.  Deeper call sites recompute (and deterministically truncate)
    /// instead.
    pub(crate) call_height: usize,
}

impl ResolvedReturns {
    /// The fixed-point seed contributed by a recursion cycle or a depth
    /// bound: nothing, flagged unresolved.
    pub(crate) fn truncation_seed() -> Self {
        Self { returns: Vec::new(), has_unresolved: true, max_hops: 0, call_height: 0 }
    }

    pub(crate) fn push(&mut self, retval: i64, side_effects: Vec<SideEffect>) {
        if let Some(existing) = self.returns.iter_mut().find(|r| r.retval == retval) {
            for effect in side_effects {
                if !existing.side_effects.contains(&effect) {
                    existing.side_effects.push(effect);
                }
            }
        } else {
            self.returns.push(ErrorReturn { retval, side_effects });
        }
    }

    /// Merges a callee's contribution into this result.  `call_height` is
    /// deliberately untouched: heights depend on where the callee sits in
    /// the chain, so the resolver tracks them alongside the merge.
    pub(crate) fn merge(&mut self, other: ResolvedReturns) {
        for ret in other.returns {
            self.push(ret.retval, ret.side_effects);
        }
        self.has_unresolved |= other.has_unresolved;
        self.max_hops = self.max_hops.max(other.max_hops);
    }
}

/// A memo key: which function, in which registered library.  The library is
/// identified by its interned name, so keys are 8 bytes and hash without
/// touching a string.
pub(crate) type ResolutionKey = (Symbol, SymbolId);

/// The profiler's shared analysis cache: `Arc`'d per-object disassemblies,
/// memoized inter-procedural return-value resolutions, and memoized kernel
/// syscall error sets.
///
/// # Sharing contract
///
/// One `AnalysisDb` lives inside each [`crate::Profiler`] and is shared — via
/// interior mutability — by every profiling call made through that profiler
/// and by every worker thread those calls fan out to.  Three layers with
/// three different validity domains:
///
/// - **Disassembly** is content-addressed (keyed by
///   [`lfi_objfile::SharedObject::fingerprint`]), so it is valid forever and
///   is additionally shared *across* profiler clones: [`crate::Profiler`]'s
///   `Clone` hands the new instance the same [`DisasmCache`].
/// - **Resolutions** are keyed by `(interned library name, symbol id)` in
///   `RESOLUTION_SHARDS` lock shards, but their *values* depend on the
///   profiler's entire configuration: the full library set (imports fall back
///   to "any registered library that exports the name"), the kernel image,
///   and the options.  They are therefore dropped whenever the configuration
///   changes and are **not** shared across profiler clones, whose library
///   sets may diverge.
/// - **Kernel syscall errors** depend only on the kernel image and are
///   dropped when a different kernel is registered.
///
/// Only *scheduling-independent* resolutions are memoized: a result computed
/// through a recursion cycle or a depth bound is path-dependent, so it stays
/// in the per-root-function scratch state of the resolution session that
/// produced it.  This is what makes parallel profiling deterministic — every
/// entry in the shared memo is a pure function of the profiler configuration,
/// regardless of which worker inserted it first.  Serving is equally
/// scheduling-independent: an entry is replayed at call depth `d` only when
/// `d + call_height` fits `max_call_depth` (see `ResolvedReturns` —
/// crate-internal), i.e. only where a cold resolution would have produced
/// the identical result anyway.
///
/// # Invalidation contract
///
/// - Registering a library whose name *or* content differs from what is
///   already registered clears the resolution memo (the import-resolution
///   search space changed).  Re-registering a byte-identical object is a
///   no-op and keeps every cache warm.
/// - Registering a different kernel image clears the kernel memo *and* the
///   resolution memo (resolved values embed kernel-derived errno sets).
/// - Disassemblies survive both events; stale entries are unreachable (their
///   fingerprint no longer appears) and are reclaimed by [`AnalysisDb::clear`].
pub struct AnalysisDb {
    disasm: Arc<DisasmCache>,
    resolutions: [RwLock<HashMap<ResolutionKey, ResolvedReturns>>; RESOLUTION_SHARDS],
    kernel_errors: RwLock<HashMap<u32, Arc<[i64]>>>,
    resolution_hits: AtomicU64,
    resolution_misses: AtomicU64,
}

impl Default for AnalysisDb {
    fn default() -> Self {
        Self::new()
    }
}

impl AnalysisDb {
    /// Creates an empty database with its own disassembly cache.
    pub fn new() -> Self {
        Self::with_disasm_cache(Arc::new(DisasmCache::new()))
    }

    /// Creates an empty database sharing an existing disassembly cache
    /// (disassembly is content-addressed, so sharing is always sound).
    pub fn with_disasm_cache(disasm: Arc<DisasmCache>) -> Self {
        Self {
            disasm,
            resolutions: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            kernel_errors: RwLock::new(HashMap::new()),
            resolution_hits: AtomicU64::new(0),
            resolution_misses: AtomicU64::new(0),
        }
    }

    /// A new database for a profiler clone: shares the content-addressed
    /// disassembly cache, starts with empty resolution/kernel memos (see the
    /// sharing contract above for why those must not be shared).
    pub(crate) fn fork(&self) -> Self {
        Self::with_disasm_cache(Arc::clone(&self.disasm))
    }

    /// The content-addressed disassembly cache.
    pub fn disasm_cache(&self) -> &DisasmCache {
        &self.disasm
    }

    fn resolution_shard(&self, key: &ResolutionKey) -> &RwLock<HashMap<ResolutionKey, ResolvedReturns>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.resolutions[(hasher.finish() as usize) % RESOLUTION_SHARDS]
    }

    pub(crate) fn lookup_resolution(&self, key: &ResolutionKey) -> Option<ResolvedReturns> {
        let shard = self.resolution_shard(key).read().unwrap_or_else(std::sync::PoisonError::into_inner);
        shard.get(key).cloned()
    }

    /// Records whether a resolution (or kernel syscall set) was served from
    /// cache or actually computed.  Kept separate from
    /// [`AnalysisDb::lookup_resolution`] because a looked-up entry may still
    /// be rejected (depth-budget check) and recomputed — that is a miss.
    pub(crate) fn record_resolution(&self, served_from_cache: bool) {
        if served_from_cache {
            self.resolution_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.resolution_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn store_resolution(&self, key: ResolutionKey, value: ResolvedReturns) {
        let mut shard = self.resolution_shard(&key).write().unwrap_or_else(std::sync::PoisonError::into_inner);
        shard.insert(key, value);
    }

    pub(crate) fn kernel_errors_cached(&self, num: u32) -> Option<Arc<[i64]>> {
        let map = self.kernel_errors.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        map.get(&num).cloned()
    }

    pub(crate) fn store_kernel_errors(&self, num: u32, values: Vec<i64>) -> Arc<[i64]> {
        let mut map = self.kernel_errors.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(map.entry(num).or_insert_with(|| values.into()))
    }

    /// Drops every memoized resolution (called when the library set changes).
    pub(crate) fn invalidate_resolutions(&self) {
        for shard in &self.resolutions {
            shard.write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
        }
    }

    /// Drops the kernel memo (called when the kernel image changes).
    pub(crate) fn invalidate_kernel(&self) {
        self.kernel_errors.write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    }

    /// Resolution-memo hits (including kernel syscall memo hits) since the
    /// database was created or last [cleared](AnalysisDb::clear).
    pub fn resolution_hits(&self) -> u64 {
        self.resolution_hits.load(Ordering::Relaxed)
    }

    /// Resolution-memo misses — i.e. inter-procedural analyses actually run.
    pub fn resolution_misses(&self) -> u64 {
        self.resolution_misses.load(Ordering::Relaxed)
    }

    /// Number of memoized function resolutions.
    pub fn resolutions_cached(&self) -> usize {
        self.resolutions
            .iter()
            .map(|s| s.read().unwrap_or_else(std::sync::PoisonError::into_inner).len())
            .sum()
    }

    /// Number of memoized kernel syscall error sets.
    pub fn kernel_entries_cached(&self) -> usize {
        self.kernel_errors.read().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Drops everything — resolutions, kernel memo, cached disassemblies —
    /// and resets all counters.
    pub fn clear(&self) {
        self.invalidate_resolutions();
        self.invalidate_kernel();
        self.disasm.clear();
        self.resolution_hits.store(0, Ordering::Relaxed);
        self.resolution_misses.store(0, Ordering::Relaxed);
    }
}

impl fmt::Debug for AnalysisDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnalysisDb")
            .field("disassemblies", &self.disasm.len())
            .field("resolutions", &self.resolutions_cached())
            .field("kernel_entries", &self.kernel_entries_cached())
            .field("resolution_hits", &self.resolution_hits())
            .field("resolution_misses", &self.resolution_misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_memo_round_trips_and_counts() {
        let db = AnalysisDb::new();
        let key = (Symbol::intern("libdb_test.so"), SymbolId(3));
        assert!(db.lookup_resolution(&key).is_none());
        db.record_resolution(false);
        let mut value = ResolvedReturns::default();
        value.push(-1, Vec::new());
        value.max_hops = 2;
        db.store_resolution(key, value.clone());
        assert_eq!(db.lookup_resolution(&key), Some(value));
        db.record_resolution(true);
        assert_eq!(db.resolutions_cached(), 1);
        assert_eq!((db.resolution_hits(), db.resolution_misses()), (1, 1));
        db.invalidate_resolutions();
        assert_eq!(db.resolutions_cached(), 0);
    }

    #[test]
    fn kernel_memo_is_shared_and_invalidated() {
        let db = AnalysisDb::new();
        assert!(db.kernel_errors_cached(6).is_none());
        let stored = db.store_kernel_errors(6, vec![-9, -5]);
        assert_eq!(&*stored, &[-9, -5]);
        // A racing second store keeps the first value.
        let again = db.store_kernel_errors(6, vec![-1]);
        assert_eq!(&*again, &[-9, -5]);
        assert_eq!(db.kernel_entries_cached(), 1);
        db.invalidate_kernel();
        assert!(db.kernel_errors_cached(6).is_none());
    }

    #[test]
    fn fork_shares_only_the_disasm_cache() {
        let db = AnalysisDb::new();
        let key = (Symbol::intern("libdb_fork.so"), SymbolId(0));
        db.store_resolution(key, ResolvedReturns::default());
        let fork = db.fork();
        assert!(Arc::ptr_eq(&db.disasm, &fork.disasm));
        assert_eq!(fork.resolutions_cached(), 0);
        assert!(fork.lookup_resolution(&key).is_none());
        assert!(!format!("{db:?}").is_empty());
    }

    #[test]
    fn merge_tracks_hops_and_unresolved() {
        let mut a = ResolvedReturns::default();
        a.push(-1, Vec::new());
        a.max_hops = 1;
        let mut b = ResolvedReturns::truncation_seed();
        b.push(-1, Vec::new());
        b.push(-2, Vec::new());
        b.max_hops = 3;
        a.merge(b);
        assert_eq!(a.returns.len(), 2);
        assert!(a.has_unresolved);
        assert_eq!(a.max_hops, 3);
    }
}
