//! The LFI profiler proper: inter-procedural resolution of error return
//! values across library boundaries and into the kernel image, side-effect
//! classification, heuristics, and profile generation.
//!
//! Profiling is driven by a bounded worker pool that parallelizes at
//! *function* granularity over the shared [`AnalysisDb`], so one huge library
//! scales across cores and batch calls ([`Profiler::profile_many`],
//! [`Profiler::profile_all`]) analyze shared dependencies exactly once.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use lfi_disasm::{FunctionDisassembly, ObjectDisassembly};
use lfi_intern::Symbol;
use lfi_isa::Inst;
use lfi_objfile::{SharedObject, SymbolDef, SymbolId};
use lfi_profile::{ErrorReturn, FaultProfile, FunctionProfile};

use crate::analysis_db::{AnalysisDb, ResolvedReturns};
use crate::arg_constraints::{analyze_arg_constraints, FunctionArgConstraints};
use crate::return_codes::{analyze_returns, ValueOrigin};
use crate::side_effects::{classify_side_effects, side_effects_in_block};
use crate::{ProfilerError, ProfilerOptions};

/// Timing and size measurements for one profiling run (the §6.2 efficiency
/// experiment reports exactly these quantities), plus the cache-effectiveness
/// counters of the shared [`AnalysisDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfilingStats {
    /// Analysis time attributed to this library: its disassembly (when not
    /// served from cache) plus the sum of its per-function resolution times.
    /// Under parallel profiling this approximates single-thread cost, which
    /// keeps it comparable across worker counts.
    pub duration: Duration,
    /// Number of exported functions analyzed.
    pub functions_analyzed: usize,
    /// Size of the library's text, in bytes.
    pub code_size_bytes: usize,
    /// Longest constant-propagation chain observed (≤ 3 in the paper).
    pub max_propagation_hops: usize,
    /// Disassemblies served from the shared cache while profiling this
    /// library (the library itself and every dependency its resolution
    /// touched).
    pub disasm_cache_hits: u64,
    /// Disassemblies actually computed for this library's profiling run.
    pub disasm_cache_misses: u64,
    /// Inter-procedural resolutions (and kernel syscall sets) served from the
    /// shared memo.
    pub resolution_cache_hits: u64,
    /// Inter-procedural resolutions actually computed.
    pub resolution_cache_misses: u64,
    /// True when the report was replayed from a `ProfileStore` without
    /// running any analysis (set by `lfi_core::Lfi`, never by the profiler).
    pub served_from_store: bool,
}

/// The result of profiling one library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibraryProfileReport {
    /// The generated fault profile.
    pub profile: FaultProfile,
    /// Profiling statistics.
    pub stats: ProfilingStats,
}

/// One registered library: its object plus the identity the caches key on.
#[derive(Debug, Clone)]
struct LibraryEntry {
    object: SharedObject,
    /// The library name interned in the process-wide table (memo key half).
    name_sym: Symbol,
    /// Content hash, computed once at registration.
    fingerprint: u64,
}

impl LibraryEntry {
    fn new(object: SharedObject) -> Self {
        let name_sym = Symbol::intern(object.name());
        let fingerprint = object.fingerprint();
        Self { object, name_sym, fingerprint }
    }
}

/// The LFI profiler: add the libraries an application links against (plus,
/// optionally, a kernel image) and ask for fault profiles.
///
/// All profiling entry points take `&self` and share one [`AnalysisDb`], so
/// repeated calls — and concurrent calls from several threads — reuse every
/// disassembly and every completed inter-procedural resolution.  Cloning a
/// profiler keeps sharing the content-addressed disassembly cache but forks
/// the resolution memo (see [`AnalysisDb`] for the exact contract).
///
/// ```
/// use lfi_asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
/// use lfi_isa::Platform;
/// use lfi_profiler::Profiler;
///
/// let lib = LibraryCompiler::new().compile(
///     &LibrarySpec::new("libx.so", Platform::LinuxX86)
///         .function(FunctionSpec::scalar("f", 1).success(0).fault(FaultSpec::returning(-1))),
/// );
/// let mut profiler = Profiler::new();
/// profiler.add_library(lib.object);
/// let report = profiler.profile_library("libx.so").unwrap();
/// assert_eq!(report.profile.function("f").unwrap().error_values().into_iter().collect::<Vec<_>>(), vec![-1, 0]);
/// ```
#[derive(Debug, Default)]
pub struct Profiler {
    options: ProfilerOptions,
    libraries: BTreeMap<String, LibraryEntry>,
    kernel: Option<LibraryEntry>,
    db: AnalysisDb,
}

impl Clone for Profiler {
    fn clone(&self) -> Self {
        Self {
            options: self.options,
            libraries: self.libraries.clone(),
            kernel: self.kernel.clone(),
            db: self.db.fork(),
        }
    }
}

impl Profiler {
    /// Creates a profiler with the paper's default (conservative) options.
    pub fn new() -> Self {
        Self::with_options(ProfilerOptions::default())
    }

    /// Creates a profiler with explicit options.
    pub fn with_options(options: ProfilerOptions) -> Self {
        Self { options, libraries: BTreeMap::new(), kernel: None, db: AnalysisDb::new() }
    }

    /// The options in effect.
    pub fn options(&self) -> ProfilerOptions {
        self.options
    }

    /// The shared analysis cache: disassemblies, memoized resolutions and
    /// their hit/miss counters.
    pub fn analysis_db(&self) -> &AnalysisDb {
        &self.db
    }

    /// Registers a library binary for analysis.  Libraries are keyed by file
    /// name; registering the same name twice replaces the previous object.
    ///
    /// Registering a new or modified object invalidates the memoized
    /// resolutions (they depend on the whole library set); re-registering a
    /// byte-identical object keeps every cache warm.  Returns `true` when the
    /// registration changed the configuration (callers with their own caches
    /// — e.g. a profile store — key their invalidation off this).
    pub fn add_library(&mut self, object: SharedObject) -> bool {
        let entry = LibraryEntry::new(object);
        let unchanged = self
            .libraries
            .get(entry.object.name())
            .is_some_and(|existing| existing.fingerprint == entry.fingerprint);
        self.libraries.insert(entry.object.name().to_owned(), entry);
        if !unchanged {
            self.db.invalidate_resolutions();
        }
        !unchanged
    }

    /// Registers the kernel image used to resolve system-call error codes
    /// (§3.1: "LFI therefore performs static analysis on the kernel image as
    /// well").  Registering a different image invalidates the kernel memo and
    /// the resolutions derived from it.  Returns `true` when the kernel
    /// changed.
    pub fn set_kernel(&mut self, object: SharedObject) -> bool {
        let entry = LibraryEntry::new(object);
        let unchanged = self.kernel.as_ref().is_some_and(|existing| existing.fingerprint == entry.fingerprint);
        self.kernel = Some(entry);
        if !unchanged {
            self.db.invalidate_kernel();
            self.db.invalidate_resolutions();
        }
        !unchanged
    }

    /// Names of the registered libraries, in lexicographic order.
    pub fn library_names(&self) -> impl Iterator<Item = &str> {
        self.libraries.keys().map(String::as_str)
    }

    /// Returns the registered library with the given name, if any.
    pub fn library(&self, name: &str) -> Option<&SharedObject> {
        self.libraries.get(name).map(|entry| &entry.object)
    }

    /// The content fingerprint of the registered library with the given name
    /// (computed once at registration), if any.  Pairs with
    /// [`lfi_profile::FaultProfile`] store keys.
    pub fn library_fingerprint(&self, name: &str) -> Option<u64> {
        self.libraries.get(name).map(|entry| entry.fingerprint)
    }

    /// The fingerprint of the registered kernel image, if any.
    pub fn kernel_fingerprint(&self) -> Option<u64> {
        self.kernel.as_ref().map(|entry| entry.fingerprint)
    }

    /// Profiles one registered library.  Functions are analyzed across the
    /// worker pool; repeat calls replay memoized resolutions from the shared
    /// [`AnalysisDb`].
    ///
    /// # Errors
    ///
    /// Returns [`ProfilerError::UnknownLibrary`] if the library was never
    /// registered, [`ProfilerError::Disasm`] if a binary cannot be
    /// disassembled, and [`ProfilerError::AnalysisPanicked`] if a worker
    /// panicked.
    pub fn profile_library(&self, name: &str) -> Result<LibraryProfileReport, ProfilerError> {
        let mut reports = self.profile_batch(&[name])?;
        Ok(reports.pop().expect("one report per requested library"))
    }

    /// Profiles several libraries through one worker pool and returns the
    /// reports in the same order as `names`.  Work is scheduled per
    /// *function*, not per library, so the pool stays busy even when one
    /// library dwarfs the rest, and shared dependencies are disassembled and
    /// resolved once for the whole batch.
    ///
    /// # Errors
    ///
    /// Returns the first error in `names` order (worker panics are converted
    /// to [`ProfilerError::AnalysisPanicked`], not propagated as panics);
    /// profiling of the other libraries still runs to completion.
    pub fn profile_many(&self, names: &[&str]) -> Result<Vec<LibraryProfileReport>, ProfilerError> {
        self.profile_batch(names)
    }

    /// Profiles every registered library (the "profile the whole system"
    /// workflow mentioned in §6.2), in lexicographic library-name order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Profiler::profile_many`].
    pub fn profile_all(&self) -> Result<Vec<LibraryProfileReport>, ProfilerError> {
        let names: Vec<&str> = self.libraries.keys().map(String::as_str).collect();
        self.profile_batch(&names)
    }

    /// Infers, for each exported function of `name`, which of its error
    /// return values are *argument-dependent* and under which constraints
    /// (§3.1's "false positives … returned only when certain combinations of
    /// arguments are provided").  Functions with no argument-gated value are
    /// omitted.
    ///
    /// # Errors
    ///
    /// Returns [`ProfilerError::UnknownLibrary`] if the library was never
    /// registered and [`ProfilerError::Disasm`] if its binary cannot be
    /// disassembled.
    pub fn argument_constraints(&self, name: &str) -> Result<BTreeMap<String, FunctionArgConstraints>, ProfilerError> {
        let entry = self
            .libraries
            .get(name)
            .ok_or_else(|| ProfilerError::UnknownLibrary { name: name.to_owned() })?;
        let (disassembly, _) = self.db.disasm_cache().disassemble_keyed(entry.fingerprint, &entry.object)?;
        let abi = entry.object.platform().abi();
        let mut out = BTreeMap::new();
        for function in disassembly.exported_functions() {
            let constraints = analyze_arg_constraints(&function.cfg, &abi);
            if !constraints.is_empty() {
                out.insert(function.name.clone(), constraints);
            }
        }
        Ok(out)
    }

    /// The bounded worker pool: flatten every exported function of every
    /// requested library into one job list, then let
    /// `available_parallelism()` workers drain it.
    fn profile_batch(&self, names: &[&str]) -> Result<Vec<LibraryProfileReport>, ProfilerError> {
        struct BatchLibrary<'a> {
            entry: &'a LibraryEntry,
            disassembly: Arc<ObjectDisassembly>,
            disasm_hit: bool,
            disasm_time: Duration,
        }

        let mut entries: Vec<&LibraryEntry> = Vec::with_capacity(names.len());
        for name in names {
            entries.push(
                self.libraries
                    .get(*name)
                    .ok_or_else(|| ProfilerError::UnknownLibrary { name: (*name).to_owned() })?,
            );
        }
        // Cold disassembly dominates batch start-up time, and the requested
        // libraries are independent — disassemble them through the pool too.
        let disassembled = run_pooled(entries.len(), |index| {
            let entry = entries[index];
            let start = Instant::now();
            let result = self.db.disasm_cache().disassemble_keyed(entry.fingerprint, &entry.object);
            (result, start.elapsed())
        });
        let mut batch: Vec<BatchLibrary<'_>> = Vec::with_capacity(names.len());
        for (entry, slot) in entries.iter().zip(disassembled) {
            let (result, disasm_time) = slot.ok_or_else(|| ProfilerError::AnalysisPanicked {
                function: entry.object.name().to_owned(),
                message: "disassembly worker died before completing".to_owned(),
            })?;
            let (disassembly, disasm_hit) = result?;
            batch.push(BatchLibrary { entry, disassembly, disasm_hit, disasm_time });
        }

        // One job per exported function, batch-wide.
        let jobs: Vec<(usize, usize)> = batch
            .iter()
            .enumerate()
            .flat_map(|(lib_idx, lib)| {
                lib.disassembly
                    .functions
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| f.exported)
                    .map(move |(func_idx, _)| (lib_idx, func_idx))
            })
            .collect();

        struct JobOutput {
            function: FunctionProfile,
            max_hops: usize,
            counters: SessionCounters,
            duration: Duration,
        }

        let run_job = |&(lib_idx, func_idx): &(usize, usize)| -> Result<JobOutput, ProfilerError> {
            let lib = &batch[lib_idx];
            let function = &lib.disassembly.functions[func_idx];
            let start = Instant::now();
            let analysis = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let session = Session::new(self);
                let resolved = session.resolve(lib.entry, function.symbol, 0)?.0;
                Ok((session.counters.take(), resolved))
            }));
            match analysis {
                Ok(Ok((counters, resolved))) => Ok(JobOutput {
                    max_hops: resolved.max_hops,
                    function: FunctionProfile {
                        name: function.name.clone(),
                        error_returns: self.apply_heuristics(function, resolved.returns),
                    },
                    counters,
                    duration: start.elapsed(),
                }),
                Ok(Err(error)) => Err(error),
                Err(payload) => Err(ProfilerError::AnalysisPanicked {
                    function: function.name.clone(),
                    message: panic_message(payload.as_ref()),
                }),
            }
        };

        let outputs = run_pooled(jobs.len(), |index| run_job(&jobs[index]));

        // Assemble per-library reports in request order, functions in symbol
        // order, surfacing the first error in that (deterministic) order.
        let mut outputs = outputs.into_iter();
        let mut reports = Vec::with_capacity(batch.len());
        for lib in &batch {
            let exported = lib.disassembly.functions.iter().filter(|f| f.exported).count();
            let mut profile =
                FaultProfile::new(lib.entry.object.name()).with_platform(lib.entry.object.platform().to_string());
            let mut stats = ProfilingStats {
                duration: lib.disasm_time,
                functions_analyzed: exported,
                code_size_bytes: lib.entry.object.code_size(),
                ..ProfilingStats::default()
            };
            if lib.disasm_hit {
                stats.disasm_cache_hits += 1;
            } else {
                stats.disasm_cache_misses += 1;
            }
            for _ in 0..exported {
                let output = outputs.next().flatten().ok_or_else(|| ProfilerError::AnalysisPanicked {
                    function: profile.library.clone(),
                    message: "profiling worker died before completing the job".to_owned(),
                })??;
                stats.duration += output.duration;
                stats.max_propagation_hops = stats.max_propagation_hops.max(output.max_hops);
                stats.disasm_cache_hits += output.counters.disasm_hits;
                stats.disasm_cache_misses += output.counters.disasm_misses;
                stats.resolution_cache_hits += output.counters.resolution_hits;
                stats.resolution_cache_misses += output.counters.resolution_misses;
                profile.push_function(output.function);
            }
            reports.push(LibraryProfileReport { profile, stats });
        }
        Ok(reports)
    }

    fn apply_heuristics(&self, function: &FunctionDisassembly, mut returns: Vec<ErrorReturn>) -> Vec<ErrorReturn> {
        if self.options.drop_boolean_predicates {
            let only_bool = !returns.is_empty() && returns.iter().all(|r| r.retval == 0 || r.retval == 1);
            let short = function.cfg.insts().len() <= self.options.short_function_threshold;
            let has_calls = function.cfg.insts().iter().any(Inst::is_call);
            if only_bool && short && !has_calls {
                return Vec::new();
            }
        }
        if self.options.drop_zero_success_returns {
            let distinct: HashSet<i64> = returns.iter().map(|r| r.retval).collect();
            // 0 is only "the success return" when some other value exists; a
            // function whose sole distinct return is 0 must keep it, or the
            // heuristic would erase the function's profile entirely.
            if distinct.contains(&0) && distinct.len() > 1 {
                returns.retain(|r| r.retval != 0);
            }
        }
        returns
    }
}

/// Runs `count` independent jobs through a bounded worker pool capped at
/// `available_parallelism()` and returns the results in job order.  A slot is
/// `None` only if the worker that claimed it died without storing a result
/// (job bodies that can panic should wrap themselves in `catch_unwind` and
/// return the error as a value instead).  With one core — or one job — the
/// jobs run inline on the caller's thread, no spawn at all.
fn run_pooled<T, F>(count: usize, run: F) -> Vec<Option<T>>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    let slots: Vec<OnceLock<T>> = (0..count).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let drain = || loop {
        let index = next.fetch_add(1, Ordering::Relaxed);
        if index >= count {
            break;
        }
        let _ = slots[index].set(run(index));
    };
    let workers = std::thread::available_parallelism().map_or(1, usize::from).min(count);
    if workers <= 1 {
        drain();
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers).map(|_| scope.spawn(drain)).collect();
            // An escaped panic kills one worker; the others keep draining and
            // the dead worker's claimed slot surfaces as `None`.
            for handle in handles {
                let _ = handle.join();
            }
        });
    }
    slots.into_iter().map(OnceLock::into_inner).collect()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&'static str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Per-job cache counters (session-local view of the shared [`AnalysisDb`]
/// activity, attributed to one library's stats).
#[derive(Debug, Default)]
struct SessionCounters {
    disasm_hits: u64,
    disasm_misses: u64,
    resolution_hits: u64,
    resolution_misses: u64,
}

/// Resolution state for one root function: the per-root scratch memo for
/// path-dependent (cycle- or depth-truncated) results, the recursion stack,
/// and cache counters.  Scheduling-independent results go straight to the
/// shared [`AnalysisDb`] — see its rustdoc for why the split keeps parallel
/// profiling deterministic.
struct Session<'a> {
    profiler: &'a Profiler,
    local: RefCell<HashMap<(Symbol, SymbolId), ResolvedReturns>>,
    in_progress: RefCell<Vec<(Symbol, SymbolId)>>,
    counters: RefCell<SessionCounters>,
}

impl<'a> Session<'a> {
    fn new(profiler: &'a Profiler) -> Self {
        Self {
            profiler,
            local: RefCell::new(HashMap::new()),
            in_progress: RefCell::new(Vec::new()),
            counters: RefCell::new(SessionCounters::default()),
        }
    }

    fn disassembly(&self, entry: &LibraryEntry) -> Result<Arc<ObjectDisassembly>, ProfilerError> {
        let (disassembly, hit) = self.profiler.db.disasm_cache().disassemble_keyed(entry.fingerprint, &entry.object)?;
        let mut counters = self.counters.borrow_mut();
        if hit {
            counters.disasm_hits += 1;
        } else {
            counters.disasm_misses += 1;
        }
        Ok(disassembly)
    }

    /// Error codes a system call can produce, from static analysis of the
    /// kernel image.  Kernel entry points are named `sys_<number>`; results
    /// are memoized process-wide in the [`AnalysisDb`].
    fn kernel_errors(&self, num: u32) -> Vec<i64> {
        if let Some(cached) = self.profiler.db.kernel_errors_cached(num) {
            self.counters.borrow_mut().resolution_hits += 1;
            self.profiler.db.record_resolution(true);
            return cached.to_vec();
        }
        self.counters.borrow_mut().resolution_misses += 1;
        self.profiler.db.record_resolution(false);
        let values = self.compute_kernel_errors(num);
        self.profiler.db.store_kernel_errors(num, values).to_vec()
    }

    fn compute_kernel_errors(&self, num: u32) -> Vec<i64> {
        let Some(kernel) = &self.profiler.kernel else {
            return Vec::new();
        };
        let Ok(disassembly) = self.disassembly(kernel) else {
            return Vec::new();
        };
        let name = format!("sys_{num}");
        let Some(function) = disassembly.function(&name) else {
            return Vec::new();
        };
        let analysis = analyze_returns(&function.cfg, &kernel.object.platform().abi());
        analysis.constants().into_iter().filter(|v| *v < 0).collect()
    }

    /// Resolves the returnable values of a function, recursing into dependent
    /// functions (possibly in other libraries) as the paper describes.
    ///
    /// The boolean is `true` when the result was *truncated* — it depends on
    /// a recursion cycle, a depth bound, or another truncated result — and is
    /// therefore only valid within this session's root.  Untruncated results
    /// are pure functions of the profiler configuration and enter the shared
    /// memo.
    ///
    /// Every branch below decides identically whether the shared memo is
    /// populated or empty: truncation and scratch replay depend only on this
    /// root, and a memo entry is served only where a from-scratch resolution
    /// would produce the same bytes (the `call_height` budget check).  That
    /// is the invariant behind "parallel profiling == sequential profiling".
    fn resolve(
        &self,
        entry: &LibraryEntry,
        symbol: SymbolId,
        depth: usize,
    ) -> Result<(ResolvedReturns, bool), ProfilerError> {
        let key = (entry.name_sym, symbol);
        if self.in_progress.borrow().contains(&key) || depth > self.profiler.options.max_call_depth {
            // Recursion cycle or depth bound: contribute nothing, as a
            // fixed-point seed.
            return Ok((ResolvedReturns::truncation_seed(), true));
        }
        if let Some(partial) = self.local.borrow().get(&key) {
            // This root already computed a (path-dependent) partial result
            // for this function; replaying it keeps the root deterministic.
            return Ok((partial.clone(), true));
        }
        if let Some(cached) = self.profiler.db.lookup_resolution(&key) {
            if depth + cached.call_height <= self.profiler.options.max_call_depth {
                self.counters.borrow_mut().resolution_hits += 1;
                self.profiler.db.record_resolution(true);
                return Ok((cached, false));
            }
            // The memoized subtree would not have fit this call site's depth
            // budget: recompute so the result truncates exactly where a cold
            // run would.
        }
        self.counters.borrow_mut().resolution_misses += 1;
        self.profiler.db.record_resolution(false);
        self.in_progress.borrow_mut().push(key);
        let result = self.resolve_uncached(entry, symbol, depth);
        self.in_progress.borrow_mut().pop();
        if let Ok((resolved, truncated)) = &result {
            if *truncated {
                self.local.borrow_mut().insert(key, resolved.clone());
            } else {
                self.profiler.db.store_resolution(key, resolved.clone());
            }
        }
        result
    }

    fn resolve_uncached(
        &self,
        entry: &LibraryEntry,
        symbol: SymbolId,
        depth: usize,
    ) -> Result<(ResolvedReturns, bool), ProfilerError> {
        let disassembly = self.disassembly(entry)?;
        let Some(function) = disassembly.function_by_symbol(symbol) else {
            // Imported or missing: resolve in the providing library.
            return self.resolve_import(entry, symbol, depth);
        };

        let abi = entry.object.platform().abi();
        let analysis = analyze_returns(&function.cfg, &abi);

        let mut resolved = ResolvedReturns { max_hops: analysis.max_propagation_hops, ..Default::default() };
        let mut truncated = false;
        let kernel_errors = |num: u32| self.kernel_errors(num);
        for origin in &analysis.origins {
            match *origin {
                ValueOrigin::Const { value, block, .. } => {
                    let raw = side_effects_in_block(&function.cfg, block, &abi);
                    let effects = classify_side_effects(&raw, &entry.object, &kernel_errors);
                    resolved.push(value, effects);
                }
                ValueOrigin::SyscallReturn { num, .. } => {
                    for value in self.kernel_errors(num) {
                        resolved.push(value, Vec::new());
                    }
                }
                ValueOrigin::CalleeReturn { sym, .. } => {
                    // resolve_callee returns the callee's height already
                    // adjusted to be relative to *this* function.
                    let (callee, callee_truncated) = self.resolve_callee(entry, SymbolId(sym), depth)?;
                    truncated |= callee_truncated;
                    resolved.call_height = resolved.call_height.max(callee.call_height);
                    resolved.merge(callee);
                }
                ValueOrigin::IndirectCallReturn { .. } | ValueOrigin::Argument { .. } | ValueOrigin::Unknown => {
                    resolved.has_unresolved = true;
                }
            }
        }
        Ok((resolved, truncated))
    }

    fn resolve_callee(
        &self,
        entry: &LibraryEntry,
        callee: SymbolId,
        depth: usize,
    ) -> Result<(ResolvedReturns, bool), ProfilerError> {
        let Some(symbol) = entry.object.symbol(callee) else {
            return Ok((ResolvedReturns::truncation_seed(), false));
        };
        match &symbol.def {
            SymbolDef::Defined { .. } => {
                let (mut resolved, truncated) = self.resolve(entry, callee, depth + 1)?;
                // One call frame below the caller.
                resolved.call_height += 1;
                Ok((resolved, truncated))
            }
            // resolve_import performs the +1 itself (the import alias adds no
            // frame; its provider is resolved at depth + 1).
            SymbolDef::Import { .. } => self.resolve_import(entry, callee, depth),
        }
    }

    fn resolve_import(
        &self,
        entry: &LibraryEntry,
        symbol: SymbolId,
        depth: usize,
    ) -> Result<(ResolvedReturns, bool), ProfilerError> {
        let Some(import) = entry.object.symbol(symbol) else {
            return Ok((ResolvedReturns::truncation_seed(), false));
        };
        let name = &import.name;
        let hint = match &import.def {
            SymbolDef::Import { library_hint } => library_hint.as_deref(),
            SymbolDef::Defined { .. } => None,
        };
        // Prefer the hinted library, then the declared dependencies, then any
        // registered library exporting the symbol (in name order, so import
        // resolution is deterministic regardless of registration order).
        let deps = entry.object.dependencies().iter().map(String::as_str);
        let all = self.profiler.libraries.keys().map(String::as_str);
        for candidate in hint.into_iter().chain(deps).chain(all) {
            let Some(target) = self.profiler.libraries.get(candidate) else {
                continue;
            };
            let Some((id, target_symbol)) = target.object.symbol_by_name(name) else {
                continue;
            };
            if target_symbol.is_export() {
                let (mut resolved, truncated) = self.resolve(target, id, depth + 1)?;
                // The provider sits one call level below whoever asked.
                resolved.call_height += 1;
                return Ok((resolved, truncated));
            }
        }
        Ok((ResolvedReturns::truncation_seed(), false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
    use lfi_isa::{Inst, Loc, Platform};
    use lfi_objfile::ObjectBuilder;
    use lfi_profile::SideEffectKind;

    fn compile(spec: LibrarySpec) -> SharedObject {
        LibraryCompiler::new().compile(&spec).object
    }

    /// A minimal kernel image whose `sys_6` handler can fail with -9, -5, -4.
    fn kernel() -> SharedObject {
        let abi = Platform::LinuxX86.abi();
        let spec = LibrarySpec::new("kernel.img", Platform::LinuxX86).function(
            FunctionSpec::scalar("sys_6", 3)
                .success(0)
                .fault(FaultSpec::returning(-9))
                .fault(FaultSpec::returning(-5))
                .fault(FaultSpec::returning(-4)),
        );
        let _ = abi;
        compile(spec)
    }

    #[test]
    fn direct_constants_and_errno_are_profiled() {
        let lib = compile(
            LibrarySpec::new("liba.so", Platform::LinuxX86).function(
                FunctionSpec::scalar("f", 1)
                    .success(0)
                    .fault(FaultSpec::returning(-1).with_errno(9))
                    .fault(FaultSpec::returning(-2)),
            ),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(lib);
        let report = profiler.profile_library("liba.so").unwrap();
        let f = report.profile.function("f").unwrap();
        assert_eq!(f.error_values().into_iter().collect::<Vec<_>>(), vec![-2, -1, 0]);
        let minus_one = f.error_returns.iter().find(|r| r.retval == -1).unwrap();
        assert_eq!(minus_one.side_effects.len(), 1);
        assert_eq!(minus_one.side_effects[0].kind, SideEffectKind::Tls);
        assert_eq!(minus_one.side_effects[0].value, 9);
        assert_eq!(report.stats.functions_analyzed, 1);
        assert!(report.stats.code_size_bytes > 0);
    }

    #[test]
    fn syscall_errors_come_from_the_kernel_image() {
        let lib = compile(
            LibrarySpec::new("libc.so.6", Platform::LinuxX86)
                .function(FunctionSpec::scalar("close", 1).success(0).fault(FaultSpec::via_syscall(6))),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(lib);
        profiler.set_kernel(kernel());
        let report = profiler.profile_library("libc.so.6").unwrap();
        let close = report.profile.function("close").unwrap();
        let minus_one = close.error_returns.iter().find(|r| r.retval == -1).unwrap();
        let mut errno_values: Vec<i64> = minus_one
            .side_effects
            .iter()
            .filter(|s| s.kind == SideEffectKind::Tls)
            .map(|s| s.value)
            .collect();
        errno_values.sort_unstable();
        // The kernel returns -9/-5/-4; the library negates them into errno.
        assert_eq!(errno_values, vec![4, 5, 9]);
    }

    #[test]
    fn without_a_kernel_image_syscall_errors_are_missed() {
        let lib = compile(
            LibrarySpec::new("libc.so.6", Platform::LinuxX86)
                .function(FunctionSpec::scalar("close", 1).success(0).fault(FaultSpec::via_syscall(6))),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(lib);
        let report = profiler.profile_library("libc.so.6").unwrap();
        let close = report.profile.function("close").unwrap();
        let minus_one = close.error_returns.iter().find(|r| r.retval == -1).unwrap();
        assert!(minus_one.side_effects.is_empty());
    }

    #[test]
    fn dependent_function_errors_propagate_across_libraries() {
        let inner = compile(
            LibrarySpec::new("libinner.so", Platform::LinuxX86).function(
                FunctionSpec::scalar("inner_fail", 0)
                    .success(0)
                    .fault(FaultSpec::returning(-77).with_errno(7)),
            ),
        );
        let outer = compile(
            LibrarySpec::new("libouter.so", Platform::LinuxX86)
                .dependency("libinner.so")
                .import("inner_fail", Some("libinner.so"))
                .function(FunctionSpec::scalar("outer", 1).success(0).fault(FaultSpec::via_callee("inner_fail"))),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(inner);
        profiler.add_library(outer);
        let report = profiler.profile_library("libouter.so").unwrap();
        let outer = report.profile.function("outer").unwrap();
        assert!(outer.error_values().contains(&-77));
        let propagated = outer.error_returns.iter().find(|r| r.retval == -77).unwrap();
        // The callee's errno side effect travels with the propagated value.
        assert!(propagated.side_effects.iter().any(|s| s.value == 7));
    }

    #[test]
    fn dependent_function_in_same_library_is_resolved() {
        let lib = compile(
            LibrarySpec::new("libself.so", Platform::LinuxX86)
                .function(FunctionSpec::scalar("helper", 0).success(0).fault(FaultSpec::returning(-3)).local())
                .function(FunctionSpec::scalar("outer", 1).success(0).fault(FaultSpec::via_callee("helper"))),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(lib);
        let report = profiler.profile_library("libself.so").unwrap();
        // Only `outer` is exported, and it inherits -3 from the local helper.
        assert_eq!(report.profile.function_count(), 1);
        assert!(report.profile.function("outer").unwrap().error_values().contains(&-3));
    }

    #[test]
    fn indirect_call_errors_are_missed_false_negatives() {
        let lib = compile(
            LibrarySpec::new("libind.so", Platform::LinuxX86).function(
                FunctionSpec::scalar("sneaky", 1)
                    .success(0)
                    .fault(FaultSpec::returning(-13).hidden_behind_indirect_call()),
            ),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(lib);
        let report = profiler.profile_library("libind.so").unwrap();
        assert!(!report.profile.function("sneaky").unwrap().error_values().contains(&-13));
    }

    #[test]
    fn phantom_guard_errors_are_reported_false_positives() {
        let lib = compile(
            LibrarySpec::new("libph.so", Platform::LinuxX86)
                .function(FunctionSpec::scalar("stateful", 1).success(0).fault(FaultSpec::returning(-99).phantom())),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(lib);
        let report = profiler.profile_library("libph.so").unwrap();
        assert!(report.profile.function("stateful").unwrap().error_values().contains(&-99));
    }

    #[test]
    fn heuristics_drop_success_returns_and_boolean_predicates() {
        let spec = LibrarySpec::new("libh.so", Platform::LinuxX86)
            .function(FunctionSpec::scalar("f", 1).success(0).fault(FaultSpec::returning(-1)))
            .function(FunctionSpec::scalar("is_file", 2).boolean_predicate());
        let lib = compile(spec);

        let mut conservative = Profiler::new();
        conservative.add_library(lib.clone());
        let report = conservative.profile_library("libh.so").unwrap();
        assert!(report.profile.function("f").unwrap().error_values().contains(&0));
        assert!(!report.profile.function("is_file").unwrap().is_empty());

        let mut tuned = Profiler::with_options(ProfilerOptions::with_heuristics());
        tuned.add_library(lib);
        let report = tuned.profile_library("libh.so").unwrap();
        assert_eq!(report.profile.function("f").unwrap().error_values().into_iter().collect::<Vec<_>>(), vec![-1]);
        assert!(report.profile.function("is_file").unwrap().is_empty());
    }

    #[test]
    fn zero_only_function_survives_the_success_return_heuristic() {
        // Regression pin for both branches of drop_zero_success_returns:
        // a function whose only distinct return value is 0 keeps it (the
        // heuristic must be a no-op), while a function returning {0, -1}
        // drops the 0.
        let lib = compile(
            LibrarySpec::new("libzero.so", Platform::LinuxX86)
                .function(FunctionSpec::scalar("always_ok", 1).success(0))
                .function(FunctionSpec::scalar("can_fail", 1).success(0).fault(FaultSpec::returning(-1))),
        );
        let mut profiler =
            Profiler::with_options(ProfilerOptions { drop_zero_success_returns: true, ..ProfilerOptions::default() });
        profiler.add_library(lib);
        let report = profiler.profile_library("libzero.so").unwrap();
        let always_ok = report.profile.function("always_ok").unwrap();
        assert_eq!(always_ok.error_values().into_iter().collect::<Vec<_>>(), vec![0]);
        let can_fail = report.profile.function("can_fail").unwrap();
        assert_eq!(can_fail.error_values().into_iter().collect::<Vec<_>>(), vec![-1]);
    }

    #[test]
    fn stripped_libraries_still_profile_exports() {
        let lib = compile(
            LibrarySpec::new("libstrip.so", Platform::LinuxX86)
                .function(FunctionSpec::scalar("helper", 0).success(0).fault(FaultSpec::returning(-3)).local())
                .function(FunctionSpec::scalar("api", 1).success(0).fault(FaultSpec::via_callee("helper"))),
        )
        .stripped();
        let mut profiler = Profiler::new();
        profiler.add_library(lib);
        let report = profiler.profile_library("libstrip.so").unwrap();
        assert!(report.profile.function("api").unwrap().error_values().contains(&-3));
    }

    #[test]
    fn unknown_library_is_an_error() {
        let profiler = Profiler::new();
        assert!(matches!(profiler.profile_library("libmissing.so"), Err(ProfilerError::UnknownLibrary { .. })));
    }

    #[test]
    fn mutually_recursive_functions_terminate() {
        // a calls b on its error path, b calls a on its error path.
        let abi = Platform::LinuxX86.abi();
        let object = ObjectBuilder::new("librec.so", Platform::LinuxX86)
            .export("a", vec![Inst::Call { sym: 1 }, Inst::Ret])
            .export(
                "b",
                vec![
                    Inst::Cmp { a: Loc::Arg(0), b: 0i64.into() },
                    Inst::JmpCond { cond: lfi_isa::Cond::Eq, target: 4 },
                    Inst::MovImm { dst: abi.return_loc(), imm: -8 },
                    Inst::Ret,
                    Inst::Call { sym: 0 },
                    Inst::Ret,
                ],
            )
            .build();
        let mut profiler = Profiler::new();
        profiler.add_library(object);
        let report = profiler.profile_library("librec.so").unwrap();
        assert!(report.profile.function("a").unwrap().error_values().contains(&-8));
        assert!(report.profile.function("b").unwrap().error_values().contains(&-8));
        // Cycle-truncated results are path-dependent, so neither function's
        // resolution may enter the shared memo — that is what keeps parallel
        // profiling deterministic.
        assert_eq!(profiler.analysis_db().resolutions_cached(), 0);
        // And repeating the run still produces identical output.
        let again = profiler.profile_library("librec.so").unwrap();
        assert_eq!(again.profile, report.profile);
    }

    #[test]
    fn memoized_results_respect_the_depth_budget_of_each_call_site() {
        // f -> g -> h -> k(-5), with exported h and max_call_depth = 2.
        // Resolving h from its own root is complete ({-5}, height 1) and is
        // memoized; resolving f reaches h at depth 2, where h's subtree no
        // longer fits the budget (2 + 1 > 2).  The memo entry must NOT be
        // served there — otherwise f's profile would depend on whether h's
        // job happened to run first, and parallel profiling would be
        // nondeterministic.  f must always truncate at k, exactly like a
        // cold run with an empty memo.
        let abi = Platform::LinuxX86.abi();
        let object = ObjectBuilder::new("libchain.so", Platform::LinuxX86)
            .export("f", vec![Inst::Call { sym: 3 }, Inst::Ret])
            .export("h", vec![Inst::Call { sym: 2 }, Inst::Ret])
            .local("k", vec![Inst::MovImm { dst: abi.return_loc(), imm: -5 }, Inst::Ret])
            .local("g", vec![Inst::Call { sym: 1 }, Inst::Ret])
            .build();
        let options = ProfilerOptions { max_call_depth: 2, ..ProfilerOptions::default() };
        let mut profiler = Profiler::with_options(options);
        profiler.add_library(object);

        let cold = profiler.profile_library("libchain.so").unwrap();
        assert!(cold.profile.function("h").unwrap().error_values().contains(&-5));
        assert!(!cold.profile.function("f").unwrap().error_values().contains(&-5));

        // Warm repeat — h ({-5}, height 1) and k are memoized now — must be
        // byte-identical to the cold run.
        let warm = profiler.profile_library("libchain.so").unwrap();
        assert_eq!(warm.profile.to_xml(), cold.profile.to_xml());

        // At a shallower call site the memo IS valid: a wrapper calling h at
        // depth 1 (1 + 1 <= 2) sees the full result.
        let mut deep_enough = Profiler::with_options(options);
        deep_enough.add_library(
            ObjectBuilder::new("libchain.so", Platform::LinuxX86)
                .export("wrapper", vec![Inst::Call { sym: 1 }, Inst::Ret])
                .export("h", vec![Inst::Call { sym: 2 }, Inst::Ret])
                .local("k", vec![Inst::MovImm { dst: abi.return_loc(), imm: -5 }, Inst::Ret])
                .build(),
        );
        let report = deep_enough.profile_library("libchain.so").unwrap();
        assert!(report.profile.function("wrapper").unwrap().error_values().contains(&-5));
        let again = deep_enough.profile_library("libchain.so").unwrap();
        assert_eq!(again.profile.to_xml(), report.profile.to_xml());
    }

    #[test]
    fn profile_many_runs_in_parallel_and_preserves_order() {
        let liba = compile(
            LibrarySpec::new("liba.so", Platform::LinuxX86)
                .function(FunctionSpec::scalar("fa", 0).success(0).fault(FaultSpec::returning(-1))),
        );
        let libb = compile(
            LibrarySpec::new("libb.so", Platform::LinuxX86)
                .function(FunctionSpec::scalar("fb", 0).success(0).fault(FaultSpec::returning(-2))),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(liba);
        profiler.add_library(libb);
        let reports = profiler.profile_many(&["libb.so", "liba.so"]).unwrap();
        assert_eq!(reports[0].profile.library, "libb.so");
        assert_eq!(reports[1].profile.library, "liba.so");
        let all = profiler.profile_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].profile.library, "liba.so");
    }

    #[test]
    fn profile_many_propagates_errors_instead_of_panicking() {
        let liba = compile(
            LibrarySpec::new("liba.so", Platform::LinuxX86)
                .function(FunctionSpec::scalar("fa", 0).success(0).fault(FaultSpec::returning(-1))),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(liba);
        let err = profiler.profile_many(&["liba.so", "libmissing.so"]).unwrap_err();
        assert!(matches!(err, ProfilerError::UnknownLibrary { ref name } if name == "libmissing.so"));
    }

    #[test]
    fn warm_cache_serves_resolutions_and_disassemblies() {
        let lib = compile(
            LibrarySpec::new("libwarm.so", Platform::LinuxX86)
                .function(FunctionSpec::scalar("f", 1).success(0).fault(FaultSpec::returning(-1)))
                .function(FunctionSpec::scalar("g", 1).success(0).fault(FaultSpec::returning(-2))),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(lib.clone());
        let cold = profiler.profile_library("libwarm.so").unwrap();
        assert_eq!(cold.stats.disasm_cache_misses, 1);
        assert_eq!(cold.stats.resolution_cache_hits, 0);
        let warm = profiler.profile_library("libwarm.so").unwrap();
        assert_eq!(warm.profile, cold.profile);
        assert_eq!(warm.stats.disasm_cache_hits, 1);
        assert_eq!(warm.stats.disasm_cache_misses, 0);
        assert_eq!(warm.stats.resolution_cache_hits, 2);
        assert_eq!(warm.stats.resolution_cache_misses, 0);
        // Re-registering the identical object keeps the caches warm...
        profiler.add_library(lib);
        assert_eq!(profiler.analysis_db().resolutions_cached(), 2);
        // ...but registering modified content invalidates the memo.
        let modified = compile(
            LibrarySpec::new("libwarm.so", Platform::LinuxX86)
                .function(FunctionSpec::scalar("f", 1).success(0).fault(FaultSpec::returning(-7))),
        );
        profiler.add_library(modified);
        assert_eq!(profiler.analysis_db().resolutions_cached(), 0);
        let reprofiled = profiler.profile_library("libwarm.so").unwrap();
        assert!(reprofiled.profile.function("f").unwrap().error_values().contains(&-7));
    }

    #[test]
    fn cloned_profilers_share_disassembly_but_not_resolutions() {
        let lib = compile(
            LibrarySpec::new("libclone.so", Platform::LinuxX86)
                .function(FunctionSpec::scalar("f", 1).success(0).fault(FaultSpec::returning(-1))),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(lib);
        profiler.profile_library("libclone.so").unwrap();
        let clone = profiler.clone();
        assert_eq!(clone.analysis_db().resolutions_cached(), 0);
        let report = clone.profile_library("libclone.so").unwrap();
        // The disassembly came from the shared content-addressed cache (one
        // up-front hit plus one from the function's resolution session).
        assert_eq!(report.stats.disasm_cache_hits, 2);
        assert_eq!(report.stats.disasm_cache_misses, 0);
    }

    #[test]
    fn output_argument_side_effects_reach_the_profile() {
        let lib = compile(
            LibrarySpec::new("libout.so", Platform::LinuxX86).function(
                FunctionSpec::scalar("getaddr", 2)
                    .success(0)
                    .fault(FaultSpec::returning(-1).with_output_arg(1, 0)),
            ),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(lib);
        let report = profiler.profile_library("libout.so").unwrap();
        let f = report.profile.function("getaddr").unwrap();
        let minus_one = f.error_returns.iter().find(|r| r.retval == -1).unwrap();
        assert!(minus_one
            .side_effects
            .iter()
            .any(|s| s.kind == SideEffectKind::OutputArg && s.offset == 1));
    }
}
