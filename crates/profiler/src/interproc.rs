//! The LFI profiler proper: inter-procedural resolution of error return
//! values across library boundaries and into the kernel image, side-effect
//! classification, heuristics, and profile generation.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::time::{Duration, Instant};

use lfi_disasm::{Disassembler, FunctionDisassembly, ObjectDisassembly};
use lfi_isa::Inst;
use lfi_objfile::{SharedObject, SymbolDef, SymbolId};
use lfi_profile::{ErrorReturn, FaultProfile, FunctionProfile, SideEffect};

use crate::arg_constraints::{analyze_arg_constraints, FunctionArgConstraints};
use crate::return_codes::{analyze_returns, ValueOrigin};
use crate::side_effects::{classify_side_effects, side_effects_in_block};
use crate::{ProfilerError, ProfilerOptions};

/// Timing and size measurements for one profiling run (the §6.2 efficiency
/// experiment reports exactly these quantities).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfilingStats {
    /// Wall-clock profiling time.
    pub duration: Duration,
    /// Number of exported functions analyzed.
    pub functions_analyzed: usize,
    /// Size of the library's text, in bytes.
    pub code_size_bytes: usize,
    /// Longest constant-propagation chain observed (≤ 3 in the paper).
    pub max_propagation_hops: usize,
}

/// The result of profiling one library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibraryProfileReport {
    /// The generated fault profile.
    pub profile: FaultProfile,
    /// Profiling statistics.
    pub stats: ProfilingStats,
}

/// The LFI profiler: add the libraries an application links against (plus,
/// optionally, a kernel image) and ask for fault profiles.
///
/// ```
/// use lfi_asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
/// use lfi_isa::Platform;
/// use lfi_profiler::Profiler;
///
/// let lib = LibraryCompiler::new().compile(
///     &LibrarySpec::new("libx.so", Platform::LinuxX86)
///         .function(FunctionSpec::scalar("f", 1).success(0).fault(FaultSpec::returning(-1))),
/// );
/// let mut profiler = Profiler::new();
/// profiler.add_library(lib.object);
/// let report = profiler.profile_library("libx.so").unwrap();
/// assert_eq!(report.profile.function("f").unwrap().error_values().into_iter().collect::<Vec<_>>(), vec![-1, 0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    options: ProfilerOptions,
    libraries: HashMap<String, SharedObject>,
    kernel: Option<SharedObject>,
}

impl Profiler {
    /// Creates a profiler with the paper's default (conservative) options.
    pub fn new() -> Self {
        Self::with_options(ProfilerOptions::default())
    }

    /// Creates a profiler with explicit options.
    pub fn with_options(options: ProfilerOptions) -> Self {
        Self { options, libraries: HashMap::new(), kernel: None }
    }

    /// The options in effect.
    pub fn options(&self) -> ProfilerOptions {
        self.options
    }

    /// Registers a library binary for analysis.  Libraries are keyed by file
    /// name; registering the same name twice replaces the previous object.
    pub fn add_library(&mut self, object: SharedObject) {
        self.libraries.insert(object.name().to_owned(), object);
    }

    /// Registers the kernel image used to resolve system-call error codes
    /// (§3.1: "LFI therefore performs static analysis on the kernel image as
    /// well").
    pub fn set_kernel(&mut self, object: SharedObject) {
        self.kernel = Some(object);
    }

    /// Names of the registered libraries, in arbitrary order.
    pub fn library_names(&self) -> impl Iterator<Item = &str> {
        self.libraries.keys().map(String::as_str)
    }

    /// Returns the registered library with the given name, if any.
    pub fn library(&self, name: &str) -> Option<&SharedObject> {
        self.libraries.get(name)
    }

    /// Profiles one registered library.
    ///
    /// # Errors
    ///
    /// Returns [`ProfilerError::UnknownLibrary`] if the library was never
    /// registered and [`ProfilerError::Disasm`] if its binary cannot be
    /// disassembled.
    pub fn profile_library(&self, name: &str) -> Result<LibraryProfileReport, ProfilerError> {
        let object = self
            .libraries
            .get(name)
            .ok_or_else(|| ProfilerError::UnknownLibrary { name: name.to_owned() })?;
        let start = Instant::now();
        let resolver = Resolver::new(self);
        let disassembly = resolver.disassembly(name)?;

        let mut profile = FaultProfile::new(name).with_platform(object.platform().to_string());
        let mut functions_analyzed = 0usize;
        for function in disassembly.exported_functions() {
            functions_analyzed += 1;
            let resolved = resolver.resolve(name, function.symbol, &mut Vec::new(), 0)?;
            let error_returns = self.apply_heuristics(function, resolved.returns);
            profile.push_function(FunctionProfile { name: function.name.clone(), error_returns });
        }

        let stats = ProfilingStats {
            duration: start.elapsed(),
            functions_analyzed,
            code_size_bytes: object.code_size(),
            max_propagation_hops: resolver.max_hops.get(),
        };
        Ok(LibraryProfileReport { profile, stats })
    }

    /// Profiles several libraries, one thread per library, and returns the
    /// reports in the same order as `names`.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered; profiling of the other libraries
    /// still runs to completion.
    pub fn profile_many(&self, names: &[&str]) -> Result<Vec<LibraryProfileReport>, ProfilerError> {
        let mut results: Vec<Option<Result<LibraryProfileReport, ProfilerError>>> = Vec::new();
        results.resize_with(names.len(), || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (index, name) in names.iter().enumerate() {
                handles.push((index, scope.spawn(move || self.profile_library(name))));
            }
            for (index, handle) in handles {
                results[index] = Some(handle.join().expect("profiling thread panicked"));
            }
        });
        results.into_iter().map(|r| r.expect("slot filled")).collect()
    }

    /// Profiles every registered library (the "profile the whole system"
    /// workflow mentioned in §6.2).
    ///
    /// # Errors
    ///
    /// Returns the first error encountered.
    pub fn profile_all(&self) -> Result<Vec<LibraryProfileReport>, ProfilerError> {
        let mut names: Vec<&str> = self.libraries.keys().map(String::as_str).collect();
        names.sort_unstable();
        self.profile_many(&names)
    }

    /// Infers, for each exported function of `name`, which of its error
    /// return values are *argument-dependent* and under which constraints
    /// (§3.1's "false positives … returned only when certain combinations of
    /// arguments are provided").  Functions with no argument-gated value are
    /// omitted.
    ///
    /// # Errors
    ///
    /// Returns [`ProfilerError::UnknownLibrary`] if the library was never
    /// registered and [`ProfilerError::Disasm`] if its binary cannot be
    /// disassembled.
    pub fn argument_constraints(
        &self,
        name: &str,
    ) -> Result<std::collections::BTreeMap<String, FunctionArgConstraints>, ProfilerError> {
        let object = self
            .libraries
            .get(name)
            .ok_or_else(|| ProfilerError::UnknownLibrary { name: name.to_owned() })?;
        let resolver = Resolver::new(self);
        let disassembly = resolver.disassembly(name)?;
        let abi = object.platform().abi();
        let mut out = std::collections::BTreeMap::new();
        for function in disassembly.exported_functions() {
            let constraints = analyze_arg_constraints(&function.cfg, &abi);
            if !constraints.is_empty() {
                out.insert(function.name.clone(), constraints);
            }
        }
        Ok(out)
    }

    fn apply_heuristics(&self, function: &FunctionDisassembly, mut returns: Vec<ErrorReturn>) -> Vec<ErrorReturn> {
        if self.options.drop_boolean_predicates {
            let only_bool = !returns.is_empty() && returns.iter().all(|r| r.retval == 0 || r.retval == 1);
            let short = function.cfg.insts().len() <= self.options.short_function_threshold;
            let has_calls = function.cfg.insts().iter().any(Inst::is_call);
            if only_bool && short && !has_calls {
                return Vec::new();
            }
        }
        if self.options.drop_zero_success_returns {
            let distinct: HashSet<i64> = returns.iter().map(|r| r.retval).collect();
            if distinct.len() > 1 && distinct.contains(&0) {
                returns.retain(|r| r.retval != 0);
            }
        }
        returns
    }
}

/// Per-profiling-run resolution state: memoized inter-procedural results and
/// cached disassemblies.
struct Resolver<'a> {
    profiler: &'a Profiler,
    disassemblies: RefCell<HashMap<String, Rc<ObjectDisassembly>>>,
    memo: RefCell<HashMap<(String, SymbolId), ResolvedReturns>>,
    kernel_memo: RefCell<HashMap<u32, Vec<i64>>>,
    kernel_disassembly: RefCell<Option<Rc<ObjectDisassembly>>>,
    max_hops: Cell<usize>,
}

/// The resolved set of returnable values of one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct ResolvedReturns {
    returns: Vec<ErrorReturn>,
    has_unresolved: bool,
}

impl ResolvedReturns {
    fn push(&mut self, retval: i64, side_effects: Vec<SideEffect>) {
        if let Some(existing) = self.returns.iter_mut().find(|r| r.retval == retval) {
            for effect in side_effects {
                if !existing.side_effects.contains(&effect) {
                    existing.side_effects.push(effect);
                }
            }
        } else {
            self.returns.push(ErrorReturn { retval, side_effects });
        }
    }

    fn merge(&mut self, other: ResolvedReturns) {
        for ret in other.returns {
            self.push(ret.retval, ret.side_effects);
        }
        self.has_unresolved |= other.has_unresolved;
    }
}

impl<'a> Resolver<'a> {
    fn new(profiler: &'a Profiler) -> Self {
        Self {
            profiler,
            disassemblies: RefCell::new(HashMap::new()),
            memo: RefCell::new(HashMap::new()),
            kernel_memo: RefCell::new(HashMap::new()),
            kernel_disassembly: RefCell::new(None),
            max_hops: Cell::new(0),
        }
    }

    fn disassembly(&self, library: &str) -> Result<Rc<ObjectDisassembly>, ProfilerError> {
        if let Some(existing) = self.disassemblies.borrow().get(library) {
            return Ok(Rc::clone(existing));
        }
        let object = self
            .profiler
            .libraries
            .get(library)
            .ok_or_else(|| ProfilerError::UnknownLibrary { name: library.to_owned() })?;
        let disassembly = Rc::new(Disassembler::new().disassemble_object(object)?);
        self.disassemblies.borrow_mut().insert(library.to_owned(), Rc::clone(&disassembly));
        Ok(disassembly)
    }

    /// Error codes a system call can produce, from static analysis of the
    /// kernel image.  Kernel entry points are named `sys_<number>`.
    fn kernel_errors(&self, num: u32) -> Vec<i64> {
        if let Some(cached) = self.kernel_memo.borrow().get(&num) {
            return cached.clone();
        }
        let values = self.compute_kernel_errors(num);
        self.kernel_memo.borrow_mut().insert(num, values.clone());
        values
    }

    fn compute_kernel_errors(&self, num: u32) -> Vec<i64> {
        let Some(kernel) = &self.profiler.kernel else {
            return Vec::new();
        };
        if self.kernel_disassembly.borrow().is_none() {
            let Ok(disassembly) = Disassembler::new().disassemble_object(kernel) else {
                return Vec::new();
            };
            *self.kernel_disassembly.borrow_mut() = Some(Rc::new(disassembly));
        }
        let borrowed = self.kernel_disassembly.borrow();
        let disassembly = borrowed.as_ref().expect("kernel disassembly cached");
        let name = format!("sys_{num}");
        let Some(function) = disassembly.function(&name) else {
            return Vec::new();
        };
        let analysis = analyze_returns(&function.cfg, &kernel.platform().abi());
        analysis.constants().into_iter().filter(|v| *v < 0).collect()
    }

    /// Resolves the returnable values of a function, recursing into dependent
    /// functions (possibly in other libraries) as the paper describes.
    fn resolve(
        &self,
        library: &str,
        symbol: SymbolId,
        in_progress: &mut Vec<(String, SymbolId)>,
        depth: usize,
    ) -> Result<ResolvedReturns, ProfilerError> {
        let key = (library.to_owned(), symbol);
        if let Some(cached) = self.memo.borrow().get(&key) {
            return Ok(cached.clone());
        }
        if in_progress.contains(&key) || depth > self.profiler.options.max_call_depth {
            // Recursion cycle or depth bound: contribute nothing, as a
            // fixed-point seed.
            return Ok(ResolvedReturns { returns: Vec::new(), has_unresolved: true });
        }
        in_progress.push(key.clone());
        let result = self.resolve_uncached(library, symbol, in_progress, depth);
        in_progress.pop();
        if let Ok(resolved) = &result {
            self.memo.borrow_mut().insert(key, resolved.clone());
        }
        result
    }

    fn resolve_uncached(
        &self,
        library: &str,
        symbol: SymbolId,
        in_progress: &mut Vec<(String, SymbolId)>,
        depth: usize,
    ) -> Result<ResolvedReturns, ProfilerError> {
        let object = self
            .profiler
            .libraries
            .get(library)
            .ok_or_else(|| ProfilerError::UnknownLibrary { name: library.to_owned() })?;
        let disassembly = self.disassembly(library)?;
        let Some(function) = disassembly.function_by_symbol(symbol) else {
            // Imported or missing: resolve in the providing library.
            return self.resolve_import(object, symbol, in_progress, depth);
        };

        let abi = object.platform().abi();
        let analysis = analyze_returns(&function.cfg, &abi);
        self.max_hops.set(self.max_hops.get().max(analysis.max_propagation_hops));

        let mut resolved = ResolvedReturns::default();
        let kernel_errors = |num: u32| self.kernel_errors(num);
        for origin in &analysis.origins {
            match *origin {
                ValueOrigin::Const { value, block, .. } => {
                    let raw = side_effects_in_block(&function.cfg, block, &abi);
                    let effects = classify_side_effects(&raw, object, &kernel_errors);
                    resolved.push(value, effects);
                }
                ValueOrigin::SyscallReturn { num, .. } => {
                    for value in self.kernel_errors(num) {
                        resolved.push(value, Vec::new());
                    }
                }
                ValueOrigin::CalleeReturn { sym, .. } => {
                    let callee = self.resolve_callee(library, object, SymbolId(sym), in_progress, depth)?;
                    resolved.merge(callee);
                }
                ValueOrigin::IndirectCallReturn { .. } | ValueOrigin::Argument { .. } | ValueOrigin::Unknown => {
                    resolved.has_unresolved = true;
                }
            }
        }
        Ok(resolved)
    }

    fn resolve_callee(
        &self,
        library: &str,
        object: &SharedObject,
        callee: SymbolId,
        in_progress: &mut Vec<(String, SymbolId)>,
        depth: usize,
    ) -> Result<ResolvedReturns, ProfilerError> {
        let Some(symbol) = object.symbol(callee) else {
            return Ok(ResolvedReturns { returns: Vec::new(), has_unresolved: true });
        };
        match &symbol.def {
            SymbolDef::Defined { .. } => self.resolve(library, callee, in_progress, depth + 1),
            SymbolDef::Import { .. } => self.resolve_import(object, callee, in_progress, depth),
        }
    }

    fn resolve_import(
        &self,
        object: &SharedObject,
        symbol: SymbolId,
        in_progress: &mut Vec<(String, SymbolId)>,
        depth: usize,
    ) -> Result<ResolvedReturns, ProfilerError> {
        let Some(entry) = object.symbol(symbol) else {
            return Ok(ResolvedReturns { returns: Vec::new(), has_unresolved: true });
        };
        let name = entry.name.clone();
        let hint = match &entry.def {
            SymbolDef::Import { library_hint } => library_hint.clone(),
            SymbolDef::Defined { .. } => None,
        };
        // Prefer the hinted library, then the declared dependencies, then any
        // registered library exporting the symbol.
        let mut candidates: Vec<&str> = Vec::new();
        if let Some(hint) = &hint {
            candidates.push(hint.as_str());
        }
        for dep in object.dependencies() {
            candidates.push(dep.as_str());
        }
        for lib in self.profiler.libraries.keys() {
            candidates.push(lib.as_str());
        }
        for candidate in candidates {
            let Some(target) = self.profiler.libraries.get(candidate) else {
                continue;
            };
            let Some((id, target_symbol)) = target.symbol_by_name(&name) else {
                continue;
            };
            if target_symbol.is_export() {
                return self.resolve(candidate, id, in_progress, depth + 1);
            }
        }
        Ok(ResolvedReturns { returns: Vec::new(), has_unresolved: true })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_asm::{FaultSpec, FunctionSpec, LibraryCompiler, LibrarySpec};
    use lfi_isa::{Inst, Loc, Platform};
    use lfi_objfile::ObjectBuilder;
    use lfi_profile::SideEffectKind;

    fn compile(spec: LibrarySpec) -> SharedObject {
        LibraryCompiler::new().compile(&spec).object
    }

    /// A minimal kernel image whose `sys_6` handler can fail with -9, -5, -4.
    fn kernel() -> SharedObject {
        let abi = Platform::LinuxX86.abi();
        let spec = LibrarySpec::new("kernel.img", Platform::LinuxX86).function(
            FunctionSpec::scalar("sys_6", 3)
                .success(0)
                .fault(FaultSpec::returning(-9))
                .fault(FaultSpec::returning(-5))
                .fault(FaultSpec::returning(-4)),
        );
        let _ = abi;
        compile(spec)
    }

    #[test]
    fn direct_constants_and_errno_are_profiled() {
        let lib = compile(
            LibrarySpec::new("liba.so", Platform::LinuxX86).function(
                FunctionSpec::scalar("f", 1)
                    .success(0)
                    .fault(FaultSpec::returning(-1).with_errno(9))
                    .fault(FaultSpec::returning(-2)),
            ),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(lib);
        let report = profiler.profile_library("liba.so").unwrap();
        let f = report.profile.function("f").unwrap();
        assert_eq!(f.error_values().into_iter().collect::<Vec<_>>(), vec![-2, -1, 0]);
        let minus_one = f.error_returns.iter().find(|r| r.retval == -1).unwrap();
        assert_eq!(minus_one.side_effects.len(), 1);
        assert_eq!(minus_one.side_effects[0].kind, SideEffectKind::Tls);
        assert_eq!(minus_one.side_effects[0].value, 9);
        assert_eq!(report.stats.functions_analyzed, 1);
        assert!(report.stats.code_size_bytes > 0);
    }

    #[test]
    fn syscall_errors_come_from_the_kernel_image() {
        let lib = compile(
            LibrarySpec::new("libc.so.6", Platform::LinuxX86)
                .function(FunctionSpec::scalar("close", 1).success(0).fault(FaultSpec::via_syscall(6))),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(lib);
        profiler.set_kernel(kernel());
        let report = profiler.profile_library("libc.so.6").unwrap();
        let close = report.profile.function("close").unwrap();
        let minus_one = close.error_returns.iter().find(|r| r.retval == -1).unwrap();
        let mut errno_values: Vec<i64> = minus_one
            .side_effects
            .iter()
            .filter(|s| s.kind == SideEffectKind::Tls)
            .map(|s| s.value)
            .collect();
        errno_values.sort_unstable();
        // The kernel returns -9/-5/-4; the library negates them into errno.
        assert_eq!(errno_values, vec![4, 5, 9]);
    }

    #[test]
    fn without_a_kernel_image_syscall_errors_are_missed() {
        let lib = compile(
            LibrarySpec::new("libc.so.6", Platform::LinuxX86)
                .function(FunctionSpec::scalar("close", 1).success(0).fault(FaultSpec::via_syscall(6))),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(lib);
        let report = profiler.profile_library("libc.so.6").unwrap();
        let close = report.profile.function("close").unwrap();
        let minus_one = close.error_returns.iter().find(|r| r.retval == -1).unwrap();
        assert!(minus_one.side_effects.is_empty());
    }

    #[test]
    fn dependent_function_errors_propagate_across_libraries() {
        let inner = compile(
            LibrarySpec::new("libinner.so", Platform::LinuxX86).function(
                FunctionSpec::scalar("inner_fail", 0)
                    .success(0)
                    .fault(FaultSpec::returning(-77).with_errno(7)),
            ),
        );
        let outer = compile(
            LibrarySpec::new("libouter.so", Platform::LinuxX86)
                .dependency("libinner.so")
                .import("inner_fail", Some("libinner.so"))
                .function(FunctionSpec::scalar("outer", 1).success(0).fault(FaultSpec::via_callee("inner_fail"))),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(inner);
        profiler.add_library(outer);
        let report = profiler.profile_library("libouter.so").unwrap();
        let outer = report.profile.function("outer").unwrap();
        assert!(outer.error_values().contains(&-77));
        let propagated = outer.error_returns.iter().find(|r| r.retval == -77).unwrap();
        // The callee's errno side effect travels with the propagated value.
        assert!(propagated.side_effects.iter().any(|s| s.value == 7));
    }

    #[test]
    fn dependent_function_in_same_library_is_resolved() {
        let lib = compile(
            LibrarySpec::new("libself.so", Platform::LinuxX86)
                .function(FunctionSpec::scalar("helper", 0).success(0).fault(FaultSpec::returning(-3)).local())
                .function(FunctionSpec::scalar("outer", 1).success(0).fault(FaultSpec::via_callee("helper"))),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(lib);
        let report = profiler.profile_library("libself.so").unwrap();
        // Only `outer` is exported, and it inherits -3 from the local helper.
        assert_eq!(report.profile.function_count(), 1);
        assert!(report.profile.function("outer").unwrap().error_values().contains(&-3));
    }

    #[test]
    fn indirect_call_errors_are_missed_false_negatives() {
        let lib = compile(
            LibrarySpec::new("libind.so", Platform::LinuxX86).function(
                FunctionSpec::scalar("sneaky", 1)
                    .success(0)
                    .fault(FaultSpec::returning(-13).hidden_behind_indirect_call()),
            ),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(lib);
        let report = profiler.profile_library("libind.so").unwrap();
        assert!(!report.profile.function("sneaky").unwrap().error_values().contains(&-13));
    }

    #[test]
    fn phantom_guard_errors_are_reported_false_positives() {
        let lib = compile(
            LibrarySpec::new("libph.so", Platform::LinuxX86)
                .function(FunctionSpec::scalar("stateful", 1).success(0).fault(FaultSpec::returning(-99).phantom())),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(lib);
        let report = profiler.profile_library("libph.so").unwrap();
        assert!(report.profile.function("stateful").unwrap().error_values().contains(&-99));
    }

    #[test]
    fn heuristics_drop_success_returns_and_boolean_predicates() {
        let spec = LibrarySpec::new("libh.so", Platform::LinuxX86)
            .function(FunctionSpec::scalar("f", 1).success(0).fault(FaultSpec::returning(-1)))
            .function(FunctionSpec::scalar("is_file", 2).boolean_predicate());
        let lib = compile(spec);

        let mut conservative = Profiler::new();
        conservative.add_library(lib.clone());
        let report = conservative.profile_library("libh.so").unwrap();
        assert!(report.profile.function("f").unwrap().error_values().contains(&0));
        assert!(!report.profile.function("is_file").unwrap().is_empty());

        let mut tuned = Profiler::with_options(ProfilerOptions::with_heuristics());
        tuned.add_library(lib);
        let report = tuned.profile_library("libh.so").unwrap();
        assert_eq!(report.profile.function("f").unwrap().error_values().into_iter().collect::<Vec<_>>(), vec![-1]);
        assert!(report.profile.function("is_file").unwrap().is_empty());
    }

    #[test]
    fn stripped_libraries_still_profile_exports() {
        let lib = compile(
            LibrarySpec::new("libstrip.so", Platform::LinuxX86)
                .function(FunctionSpec::scalar("helper", 0).success(0).fault(FaultSpec::returning(-3)).local())
                .function(FunctionSpec::scalar("api", 1).success(0).fault(FaultSpec::via_callee("helper"))),
        )
        .stripped();
        let mut profiler = Profiler::new();
        profiler.add_library(lib);
        let report = profiler.profile_library("libstrip.so").unwrap();
        assert!(report.profile.function("api").unwrap().error_values().contains(&-3));
    }

    #[test]
    fn unknown_library_is_an_error() {
        let profiler = Profiler::new();
        assert!(matches!(profiler.profile_library("libmissing.so"), Err(ProfilerError::UnknownLibrary { .. })));
    }

    #[test]
    fn mutually_recursive_functions_terminate() {
        // a calls b on its error path, b calls a on its error path.
        let abi = Platform::LinuxX86.abi();
        let object = ObjectBuilder::new("librec.so", Platform::LinuxX86)
            .export("a", vec![Inst::Call { sym: 1 }, Inst::Ret])
            .export(
                "b",
                vec![
                    Inst::Cmp { a: Loc::Arg(0), b: 0i64.into() },
                    Inst::JmpCond { cond: lfi_isa::Cond::Eq, target: 4 },
                    Inst::MovImm { dst: abi.return_loc(), imm: -8 },
                    Inst::Ret,
                    Inst::Call { sym: 0 },
                    Inst::Ret,
                ],
            )
            .build();
        let mut profiler = Profiler::new();
        profiler.add_library(object);
        let report = profiler.profile_library("librec.so").unwrap();
        assert!(report.profile.function("a").unwrap().error_values().contains(&-8));
        assert!(report.profile.function("b").unwrap().error_values().contains(&-8));
    }

    #[test]
    fn profile_many_runs_in_parallel_and_preserves_order() {
        let liba = compile(
            LibrarySpec::new("liba.so", Platform::LinuxX86)
                .function(FunctionSpec::scalar("fa", 0).success(0).fault(FaultSpec::returning(-1))),
        );
        let libb = compile(
            LibrarySpec::new("libb.so", Platform::LinuxX86)
                .function(FunctionSpec::scalar("fb", 0).success(0).fault(FaultSpec::returning(-2))),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(liba);
        profiler.add_library(libb);
        let reports = profiler.profile_many(&["libb.so", "liba.so"]).unwrap();
        assert_eq!(reports[0].profile.library, "libb.so");
        assert_eq!(reports[1].profile.library, "liba.so");
        let all = profiler.profile_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].profile.library, "liba.so");
    }

    #[test]
    fn output_argument_side_effects_reach_the_profile() {
        let lib = compile(
            LibrarySpec::new("libout.so", Platform::LinuxX86).function(
                FunctionSpec::scalar("getaddr", 2)
                    .success(0)
                    .fault(FaultSpec::returning(-1).with_output_arg(1, 0)),
            ),
        );
        let mut profiler = Profiler::new();
        profiler.add_library(lib);
        let report = profiler.profile_library("libout.so").unwrap();
        let f = report.profile.function("getaddr").unwrap();
        let minus_one = f.error_returns.iter().find(|r| r.retval == -1).unwrap();
        assert!(minus_one
            .side_effects
            .iter()
            .any(|s| s.kind == SideEffectKind::OutputArg && s.offset == 1));
    }
}
