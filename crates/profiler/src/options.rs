/// Tuning knobs for the LFI profiler.
///
/// The two heuristics correspond to §3.1 of the paper.  Both are *unsound*
/// (they can drop genuine faults), so — exactly as in the paper — they are
/// disabled by default: "we prefer to risk injecting some non-faults rather
/// than miss valid faults".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfilerOptions {
    /// Heuristic 1: remove 0-return values from functions for which more than
    /// one constant return value was found (0 is then likely the success
    /// return, not a fault).
    pub drop_zero_success_returns: bool,
    /// Heuristic 2: drop short `isFile()`-style predicates that only return 0
    /// or 1 and make no calls — neither value reflects a failure.
    pub drop_boolean_predicates: bool,
    /// Maximum inter-procedural recursion depth when resolving dependent
    /// functions' return values.
    pub max_call_depth: usize,
    /// Instruction-count threshold under which a 0/1-returning function is
    /// considered "short" for heuristic 2.
    pub short_function_threshold: usize,
}

impl Default for ProfilerOptions {
    fn default() -> Self {
        Self {
            drop_zero_success_returns: false,
            drop_boolean_predicates: false,
            max_call_depth: 16,
            short_function_threshold: 24,
        }
    }
}

impl ProfilerOptions {
    /// The paper's default configuration (no heuristics).
    pub fn conservative() -> Self {
        Self::default()
    }

    /// Both heuristics enabled — the configuration used when comparing
    /// against documentation, where success returns would otherwise count as
    /// spurious faults.
    pub fn with_heuristics() -> Self {
        Self { drop_zero_success_returns: true, drop_boolean_predicates: true, ..Self::default() }
    }

    /// A stable 64-bit hash of these options
    /// ([FNV-1a](lfi_objfile::stable_hash), *not* `std`'s unstable
    /// `DefaultHasher`), for cache keys that are persisted across processes
    /// and toolchains — profiles depend on every option, so persisted
    /// profile-store keys must too.  The exhaustive destructuring makes
    /// adding an option field a compile error here rather than a silently
    /// stale key.
    pub fn stable_hash(&self) -> u64 {
        use lfi_objfile::stable_hash::{fold_u64, OFFSET_BASIS};
        let Self { drop_zero_success_returns, drop_boolean_predicates, max_call_depth, short_function_threshold } =
            *self;
        let mut hash =
            fold_u64(OFFSET_BASIS, u64::from(drop_zero_success_returns) | u64::from(drop_boolean_predicates) << 1);
        hash = fold_u64(hash, max_call_depth as u64);
        fold_u64(hash, short_function_threshold as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let options = ProfilerOptions::default();
        assert!(!options.drop_zero_success_returns);
        assert!(!options.drop_boolean_predicates);
        assert_eq!(options, ProfilerOptions::conservative());
    }

    #[test]
    fn heuristic_preset_enables_both() {
        let options = ProfilerOptions::with_heuristics();
        assert!(options.drop_zero_success_returns);
        assert!(options.drop_boolean_predicates);
    }

    #[test]
    fn stable_hash_distinguishes_every_field() {
        let base = ProfilerOptions::default();
        let variants = [
            ProfilerOptions { drop_zero_success_returns: true, ..base },
            ProfilerOptions { drop_boolean_predicates: true, ..base },
            ProfilerOptions { max_call_depth: base.max_call_depth + 1, ..base },
            ProfilerOptions { short_function_threshold: base.short_function_threshold + 1, ..base },
        ];
        for variant in variants {
            assert_ne!(variant.stable_hash(), base.stable_hash(), "{variant:?}");
        }
        assert_eq!(base.stable_hash(), ProfilerOptions::conservative().stable_hash());
    }
}
