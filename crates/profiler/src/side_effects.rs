//! Side-effect analysis (§3.2): discovering the `errno`-style TLS writes,
//! global-variable writes and output-argument writes that accompany an error
//! return.
//!
//! Following the paper, the analysis scans the basic block that contains the
//! constant assignment feeding the return location.  Within that block it
//! tracks, instruction by instruction, which registers hold the
//! position-independent-code base address, which hold pointers taken from
//! arguments, and which hold (possibly negated) system-call results; stores
//! through the former are module-data side effects, stores through the latter
//! are output-argument side effects.

use std::collections::HashMap;

use lfi_disasm::{BlockId, Cfg};
use lfi_isa::{Abi, Inst, Loc, Operand, Reg};
use lfi_objfile::{SharedObject, Storage};
use lfi_profile::{SideEffect, SideEffectKind};

/// The value stored by a side-effecting write, before kernel resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawSideValue {
    /// A compile-time constant.
    Const(i64),
    /// The raw result of the given system call.
    Syscall(u32),
    /// The negated result of the given system call (the errno idiom).
    NegatedSyscall(u32),
    /// Not statically resolvable.
    Unknown,
}

/// A side-effecting write found in a block, before classification against the
/// library's data layout is folded into a [`SideEffect`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawSideEffect {
    /// Where the write goes.
    pub target: RawSideTarget,
    /// What is written.
    pub value: RawSideValue,
}

/// The destination of a side-effecting write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawSideTarget {
    /// A slot in the module's data image (global or TLS, per the data layout).
    ModuleData {
        /// Offset within the module data image.
        offset: u32,
    },
    /// A write through a pointer passed as the `index`-th argument.
    OutputArg {
        /// Argument index.
        index: u8,
    },
}

/// Block-local state of one register during the forward scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegState {
    PicBase,
    ArgPointer(u8),
    Const(i64),
    SyscallResult(u32),
    NegatedSyscallResult(u32),
    Other,
}

/// Scans one basic block for side-effecting writes.
pub fn side_effects_in_block(cfg: &Cfg, block: BlockId, abi: &Abi) -> Vec<RawSideEffect> {
    let mut states: HashMap<Reg, RegState> = HashMap::new();
    let mut effects = Vec::new();
    let return_reg = abi.return_reg();

    let value_of = |operand: Operand, states: &HashMap<Reg, RegState>| -> RawSideValue {
        match operand {
            Operand::Imm(v) => RawSideValue::Const(v),
            Operand::Loc(Loc::Reg(r)) => match states.get(&r) {
                Some(RegState::Const(v)) => RawSideValue::Const(*v),
                Some(RegState::SyscallResult(n)) => RawSideValue::Syscall(*n),
                Some(RegState::NegatedSyscallResult(n)) => RawSideValue::NegatedSyscall(*n),
                _ => RawSideValue::Unknown,
            },
            Operand::Loc(_) => RawSideValue::Unknown,
        }
    };

    for inst in cfg.block_insts(block) {
        match *inst {
            Inst::LeaPicBase { dst } => {
                states.insert(dst, RegState::PicBase);
            }
            Inst::MovImm { dst: Loc::Reg(r), imm } => {
                states.insert(r, RegState::Const(imm));
            }
            Inst::Mov { dst: Loc::Reg(r), src } => {
                let state = match src {
                    Loc::Arg(n) => RegState::ArgPointer(n),
                    Loc::Reg(s) => states.get(&s).copied().unwrap_or(RegState::Other),
                    _ => RegState::Other,
                };
                states.insert(r, state);
            }
            Inst::Neg { dst: Loc::Reg(r) } => {
                let new_state = match states.get(&r) {
                    Some(RegState::SyscallResult(n)) => RegState::NegatedSyscallResult(*n),
                    Some(RegState::NegatedSyscallResult(n)) => RegState::SyscallResult(*n),
                    Some(RegState::Const(v)) => RegState::Const(-v),
                    _ => RegState::Other,
                };
                states.insert(r, new_state);
            }
            Inst::Alu { dst: Loc::Reg(r), .. } | Inst::Load { dst: r, .. } => {
                states.insert(r, RegState::Other);
            }
            Inst::Syscall { num } => {
                states.insert(return_reg, RegState::SyscallResult(num));
            }
            Inst::Call { .. } | Inst::CallIndirect { .. } => {
                // Calls clobber the return register; the PIC base register is
                // preserved by convention.
                states.insert(return_reg, RegState::Other);
            }
            Inst::Store { base, offset, src } => {
                let value = value_of(src, &states);
                match states.get(&base) {
                    Some(RegState::PicBase) if offset >= 0 => {
                        effects
                            .push(RawSideEffect { target: RawSideTarget::ModuleData { offset: offset as u32 }, value });
                    }
                    Some(RegState::ArgPointer(index)) => {
                        effects.push(RawSideEffect { target: RawSideTarget::OutputArg { index: *index }, value });
                    }
                    _ => {}
                }
            }
            // Direct stores to TLS/global locations (absolute addressing).
            Inst::MovImm { dst: Loc::Tls(offset), imm } | Inst::MovImm { dst: Loc::Global(offset), imm } => {
                effects.push(RawSideEffect {
                    target: RawSideTarget::ModuleData { offset },
                    value: RawSideValue::Const(imm),
                });
            }
            _ => {}
        }
    }
    effects
}

/// Turns raw side effects into profile-level [`SideEffect`]s, resolving
/// module-data offsets against the library's data layout and syscall-derived
/// values against the kernel's error set for that syscall.
pub fn classify_side_effects(
    raw: &[RawSideEffect],
    object: &SharedObject,
    kernel_errors: &dyn Fn(u32) -> Vec<i64>,
) -> Vec<SideEffect> {
    let mut out = Vec::new();
    for effect in raw {
        let values: Vec<i64> = match effect.value {
            RawSideValue::Const(v) => vec![v],
            RawSideValue::Syscall(num) => kernel_errors(num),
            RawSideValue::NegatedSyscall(num) => kernel_errors(num).into_iter().map(|v| -v).collect(),
            RawSideValue::Unknown => Vec::new(),
        };
        match &effect.target {
            RawSideTarget::ModuleData { offset } => {
                let kind = match object.data_symbol_at(*offset).map(|d| d.storage) {
                    Some(Storage::Tls) => SideEffectKind::Tls,
                    Some(Storage::Global) | None => SideEffectKind::Global,
                };
                for value in &values {
                    out.push(SideEffect { kind, module: object.name().to_owned(), offset: *offset, value: *value });
                }
            }
            RawSideTarget::OutputArg { index } => {
                for value in &values {
                    out.push(SideEffect {
                        kind: SideEffectKind::OutputArg,
                        module: object.name().to_owned(),
                        offset: u32::from(*index),
                        value: *value,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_isa::{Operand, Platform};
    use lfi_objfile::ObjectBuilder;

    fn abi() -> Abi {
        Platform::LinuxX86.abi()
    }

    fn block_effects(insts: Vec<Inst>) -> Vec<RawSideEffect> {
        let cfg = Cfg::build(insts);
        side_effects_in_block(&cfg, cfg.entry().unwrap(), &abi())
    }

    #[test]
    fn paper_listing_errno_idiom_is_detected() {
        // The §3.2 GNU libc listing: compute errno address off the PIC base,
        // store the negated syscall result, return -1.
        let abi = abi();
        let errno = abi.errno_tls_offset() as i32;
        let effects = block_effects(vec![
            Inst::Syscall { num: 6 },
            Inst::LeaPicBase { dst: Reg(3) },
            Inst::Mov { dst: Loc::Reg(Reg(2)), src: abi.return_loc() },
            Inst::Neg { dst: Loc::Reg(Reg(2)) },
            Inst::Store { base: Reg(3), offset: errno, src: Operand::Loc(Loc::Reg(Reg(2))) },
            Inst::MovImm { dst: abi.return_loc(), imm: -1 },
            Inst::Ret,
        ]);
        assert_eq!(effects.len(), 1);
        assert_eq!(effects[0].target, RawSideTarget::ModuleData { offset: abi.errno_tls_offset() });
        assert_eq!(effects[0].value, RawSideValue::NegatedSyscall(6));
    }

    #[test]
    fn constant_errno_store_is_detected() {
        let abi = abi();
        let effects = block_effects(vec![
            Inst::LeaPicBase { dst: Reg(3) },
            Inst::Store { base: Reg(3), offset: abi.errno_tls_offset() as i32, src: Operand::Imm(9) },
            Inst::MovImm { dst: abi.return_loc(), imm: -1 },
            Inst::Ret,
        ]);
        assert_eq!(
            effects,
            vec![RawSideEffect {
                target: RawSideTarget::ModuleData { offset: abi.errno_tls_offset() },
                value: RawSideValue::Const(9),
            }]
        );
    }

    #[test]
    fn output_argument_store_is_detected() {
        let effects = block_effects(vec![
            Inst::Mov { dst: Loc::Reg(Reg(4)), src: Loc::Arg(2) },
            Inst::Store { base: Reg(4), offset: 0, src: Operand::Imm(77) },
            Inst::Ret,
        ]);
        assert_eq!(
            effects,
            vec![RawSideEffect { target: RawSideTarget::OutputArg { index: 2 }, value: RawSideValue::Const(77) }]
        );
    }

    #[test]
    fn stores_through_unknown_pointers_are_ignored() {
        let effects = block_effects(vec![
            Inst::Load { dst: Reg(4), base: Reg(5), offset: 0 },
            Inst::Store { base: Reg(4), offset: 0, src: Operand::Imm(1) },
            Inst::Ret,
        ]);
        assert!(effects.is_empty());
    }

    #[test]
    fn register_copies_preserve_pointer_provenance() {
        let effects = block_effects(vec![
            Inst::Mov { dst: Loc::Reg(Reg(4)), src: Loc::Arg(1) },
            Inst::Mov { dst: Loc::Reg(Reg(5)), src: Loc::Reg(Reg(4)) },
            Inst::Store { base: Reg(5), offset: 4, src: Operand::Imm(3) },
            Inst::Ret,
        ]);
        assert_eq!(effects[0].target, RawSideTarget::OutputArg { index: 1 });
    }

    #[test]
    fn double_negation_recovers_raw_syscall_value() {
        let abi = abi();
        let effects = block_effects(vec![
            Inst::Syscall { num: 4 },
            Inst::LeaPicBase { dst: Reg(3) },
            Inst::Mov { dst: Loc::Reg(Reg(2)), src: abi.return_loc() },
            Inst::Neg { dst: Loc::Reg(Reg(2)) },
            Inst::Neg { dst: Loc::Reg(Reg(2)) },
            Inst::Store { base: Reg(3), offset: 0x10, src: Operand::Loc(Loc::Reg(Reg(2))) },
            Inst::Ret,
        ]);
        assert_eq!(effects[0].value, RawSideValue::Syscall(4));
    }

    #[test]
    fn classification_resolves_storage_class_and_kernel_errors() {
        let abi = abi();
        let object = ObjectBuilder::new("libc.so.6", Platform::LinuxX86)
            .data_symbol("errno", abi.errno_tls_offset(), Storage::Tls)
            .data_symbol("h_errno", 0x40, Storage::Global)
            .build();
        let raw = vec![
            RawSideEffect {
                target: RawSideTarget::ModuleData { offset: abi.errno_tls_offset() },
                value: RawSideValue::NegatedSyscall(6),
            },
            RawSideEffect { target: RawSideTarget::ModuleData { offset: 0x40 }, value: RawSideValue::Const(2) },
            RawSideEffect { target: RawSideTarget::OutputArg { index: 1 }, value: RawSideValue::Const(0) },
            RawSideEffect { target: RawSideTarget::ModuleData { offset: 0x99 }, value: RawSideValue::Unknown },
        ];
        let kernel = |num: u32| if num == 6 { vec![-9, -5, -4] } else { vec![] };
        let effects = classify_side_effects(&raw, &object, &kernel);
        // Three errno values + one global + one output arg; the unknown value
        // contributes nothing.
        assert_eq!(effects.len(), 5);
        let errno_values: Vec<i64> =
            effects.iter().filter(|e| e.kind == SideEffectKind::Tls).map(|e| e.value).collect();
        assert_eq!(errno_values, vec![9, 5, 4]);
        assert!(effects.iter().any(|e| e.kind == SideEffectKind::Global && e.value == 2));
        assert!(effects.iter().any(|e| e.kind == SideEffectKind::OutputArg && e.offset == 1));
    }
}
