use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Loc, Reg};

/// The right-hand operand of ALU, compare and store instructions: either an
/// immediate constant or the current value of a [`Loc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A signed immediate constant.
    Imm(i64),
    /// The value currently held in a location.
    Loc(Loc),
}

impl Operand {
    /// Returns the constant if this operand is an immediate.
    pub fn as_imm(self) -> Option<i64> {
        match self {
            Operand::Imm(v) => Some(v),
            Operand::Loc(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Imm(v) => write!(f, "{v:#x}"),
            Operand::Loc(l) => write!(f, "{l}"),
        }
    }
}

impl From<i64> for Operand {
    fn from(value: i64) -> Self {
        Operand::Imm(value)
    }
}

impl From<Loc> for Operand {
    fn from(value: Loc) -> Self {
        Operand::Loc(value)
    }
}

/// Two-operand arithmetic/logic operations (`dst = dst op src`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinAluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Multiplication.
    Mul,
}

impl fmt::Display for BinAluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinAluOp::Add => "add",
            BinAluOp::Sub => "sub",
            BinAluOp::And => "and",
            BinAluOp::Or => "or",
            BinAluOp::Xor => "xor",
            BinAluOp::Mul => "mul",
        };
        f.write_str(s)
    }
}

/// Branch conditions evaluated against the flags set by the latest
/// [`Inst::Cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl Cond {
    /// Evaluates the condition for a comparison of `a` against `b`.
    pub fn holds(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }

    /// The condition that holds exactly when `self` does not.
    pub fn negated(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// A single SimISA instruction.
///
/// Jump targets are expressed as *instruction indices* within the containing
/// function body; direct call targets are indices into the containing object
/// file's symbol table (see `lfi-objfile`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = imm` — move an immediate constant into a location.
    MovImm {
        /// Destination location.
        dst: Loc,
        /// Constant value.
        imm: i64,
    },
    /// `dst = src` — copy a location into another location.
    Mov {
        /// Destination location.
        dst: Loc,
        /// Source location.
        src: Loc,
    },
    /// `dst = dst op src` — arithmetic/logic.
    Alu {
        /// Operation to apply.
        op: BinAluOp,
        /// Destination (and left operand).
        dst: Loc,
        /// Right operand.
        src: Operand,
    },
    /// `dst = -dst` — arithmetic negation (the libc errno idiom negates the
    /// raw syscall result before storing it, §3.2).
    Neg {
        /// Location negated in place.
        dst: Loc,
    },
    /// Compare `a` against `b` and set the flags consumed by [`Inst::JmpCond`].
    Cmp {
        /// Left operand.
        a: Loc,
        /// Right operand.
        b: Operand,
    },
    /// Unconditional jump to an instruction index in the same function.
    Jmp {
        /// Destination instruction index.
        target: u32,
    },
    /// Conditional jump to an instruction index in the same function.
    JmpCond {
        /// Branch condition.
        cond: Cond,
        /// Destination instruction index.
        target: u32,
    },
    /// Indirect jump through a location; static analysis cannot resolve the
    /// target (the paper reports these are 0.13% of branches).
    JmpIndirect {
        /// Location holding the target.
        loc: Loc,
    },
    /// Direct call to the symbol with the given symbol-table index.
    Call {
        /// Symbol-table index of the callee.
        sym: u32,
    },
    /// Indirect call through a location (function pointer).
    CallIndirect {
        /// Location holding the callee address.
        loc: Loc,
    },
    /// `dst = mem[base + offset]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i32,
    },
    /// `mem[base + offset] = src`.
    Store {
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i32,
        /// Value stored.
        src: Operand,
    },
    /// Load the module's position-independent-code base address into a
    /// register (the `call/pop` + `add` idiom in the paper's §3.2 listing).
    LeaPicBase {
        /// Register receiving the module base.
        dst: Reg,
    },
    /// Invoke kernel system call `num`; the raw result (negative errno on
    /// failure, following the Linux convention) is placed in the ABI return
    /// location.
    Syscall {
        /// System call number.
        num: u32,
    },
    /// Return to the caller.
    Ret,
    /// No operation (alignment / padding).
    Nop,
}

impl Inst {
    /// Returns true if this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Jmp { .. } | Inst::JmpCond { .. } | Inst::JmpIndirect { .. } | Inst::Ret)
    }

    /// Returns true if this instruction transfers control to another function.
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. } | Inst::CallIndirect { .. } | Inst::Syscall { .. })
    }

    /// The location written by this instruction, if it writes exactly one
    /// directly-addressed location.  Memory stores through a base register and
    /// calls are reported as `None`.
    pub fn written_loc(&self) -> Option<Loc> {
        match *self {
            Inst::MovImm { dst, .. } | Inst::Mov { dst, .. } | Inst::Alu { dst, .. } | Inst::Neg { dst } => Some(dst),
            Inst::Load { dst, .. } => Some(Loc::Reg(dst)),
            Inst::LeaPicBase { dst } => Some(Loc::Reg(dst)),
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::MovImm { dst, imm } => write!(f, "mov   {dst}, {imm:#x}"),
            Inst::Mov { dst, src } => write!(f, "mov   {dst}, {src}"),
            Inst::Alu { op, dst, src } => write!(f, "{op}   {dst}, {src}"),
            Inst::Neg { dst } => write!(f, "neg   {dst}"),
            Inst::Cmp { a, b } => write!(f, "cmp   {a}, {b}"),
            Inst::Jmp { target } => write!(f, "jmp   @{target}"),
            Inst::JmpCond { cond, target } => write!(f, "j{cond}   @{target}"),
            Inst::JmpIndirect { loc } => write!(f, "jmp   *{loc}"),
            Inst::Call { sym } => write!(f, "call  sym#{sym}"),
            Inst::CallIndirect { loc } => write!(f, "call  *{loc}"),
            Inst::Load { dst, base, offset } => write!(f, "load  {dst}, [{base}{offset:+}]"),
            Inst::Store { base, offset, src } => write!(f, "store [{base}{offset:+}], {src}"),
            Inst::LeaPicBase { dst } => write!(f, "lea   {dst}, pic_base"),
            Inst::Syscall { num } => write!(f, "syscall {num}"),
            Inst::Ret => write!(f, "ret"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminators() {
        assert!(Inst::Ret.is_terminator());
        assert!(Inst::Jmp { target: 0 }.is_terminator());
        assert!(Inst::JmpCond { cond: Cond::Eq, target: 1 }.is_terminator());
        assert!(Inst::JmpIndirect { loc: Loc::Reg(Reg(1)) }.is_terminator());
        assert!(!Inst::Nop.is_terminator());
        assert!(!Inst::Call { sym: 0 }.is_terminator());
    }

    #[test]
    fn calls() {
        assert!(Inst::Call { sym: 3 }.is_call());
        assert!(Inst::CallIndirect { loc: Loc::Reg(Reg(2)) }.is_call());
        assert!(Inst::Syscall { num: 4 }.is_call());
        assert!(!Inst::Ret.is_call());
    }

    #[test]
    fn written_locations() {
        let dst = Loc::Reg(Reg(0));
        assert_eq!(Inst::MovImm { dst, imm: -1 }.written_loc(), Some(dst));
        assert_eq!(Inst::Mov { dst, src: Loc::Arg(0) }.written_loc(), Some(dst));
        assert_eq!(Inst::Alu { op: BinAluOp::Add, dst, src: Operand::Imm(1) }.written_loc(), Some(dst));
        assert_eq!(Inst::Load { dst: Reg(2), base: Reg(3), offset: 4 }.written_loc(), Some(Loc::Reg(Reg(2))));
        assert_eq!(Inst::LeaPicBase { dst: Reg(3) }.written_loc(), Some(Loc::Reg(Reg(3))));
        assert_eq!(Inst::Store { base: Reg(1), offset: 0, src: Operand::Imm(0) }.written_loc(), None);
        assert_eq!(Inst::Ret.written_loc(), None);
    }

    #[test]
    fn cond_evaluation() {
        assert!(Cond::Eq.holds(3, 3));
        assert!(Cond::Ne.holds(3, 4));
        assert!(Cond::Lt.holds(-1, 0));
        assert!(Cond::Le.holds(0, 0));
        assert!(Cond::Gt.holds(5, 4));
        assert!(Cond::Ge.holds(5, 5));
        assert!(!Cond::Lt.holds(1, 0));
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(-5i64).as_imm(), Some(-5));
        assert_eq!(Operand::from(Loc::Arg(1)).as_imm(), None);
    }

    #[test]
    fn display_is_never_empty() {
        let samples = [
            Inst::MovImm { dst: Loc::Reg(Reg(0)), imm: -1 },
            Inst::Ret,
            Inst::Nop,
            Inst::Syscall { num: 3 },
            Inst::Store { base: Reg(3), offset: 0x10, src: Operand::Imm(9) },
        ];
        for inst in samples {
            assert!(!inst.to_string().is_empty());
        }
    }
}
