//! Pre-decoded SimISA bodies: the execution fast path.
//!
//! [`crate::vm::Vm::run`] is the *reference* interpreter: it re-interprets
//! every operand on every step and keeps stack/TLS/global state in
//! `HashMap`s, which makes each step pay a hash probe per location touched.
//! That is fine for deriving ground truth over a handful of error paths, but
//! a fault-injection campaign executes the same few bodies millions of times.
//!
//! [`DecodedBody::compile`] performs all the per-step work that does not
//! depend on run-time values exactly once:
//!
//! * every `Loc` operand is resolved to a direct index into **one** dense
//!   frame vector — registers, stack slots, TLS slots and global slots share
//!   a single `Vec<i64>` (the set of offsets a body can touch is statically
//!   known), so a run-time access is a bounds-checked index instead of a
//!   hash probe, and the per-operand branch is only slot-vs-argument;
//! * the common instruction forms are *specialized*: an ALU op on a slot
//!   with an immediate or slot operand, a compare against an immediate, a
//!   move-immediate into a slot, each get their own opcode so the dispatch
//!   loop does no operand-shape matching at run time;
//! * static jump targets are validated once, at compile time, instead of on
//!   every taken branch;
//! * `Load`/`Store` instructions carry their module-data slot (the
//!   `PIC_BASE` aliasing rule) pre-resolved.
//!
//! Execution policy is kept out of the hot loop with an
//! [`ExecutionController`] in the candy VM style: the dispatch loop is
//! generic over the controller, so a [`RunForever`] controller compiles to a
//! branchless `true` and a [`StepBudget`] to a single counter compare —
//! no virtual call, no `Option` probe per step.
//!
//! The decoded interpreter is pinned outcome-identical to the reference
//! interpreter (same [`ExecOutcome`], same errors) by unit tests here and a
//! property test in the workspace test suite.

use std::collections::HashMap;

use crate::vm::{CallEnv, ExecOutcome, StoreEvent, PIC_BASE};
use crate::{BinAluOp, Cond, Inst, IsaError, Loc, Operand, Platform, Reg};

/// Decides, before each instruction, whether execution may continue — the
/// step-budget policy of the dispatch loop, kept out of the loop body by
/// monomorphisation.
///
/// The contract mirrors the reference interpreter: [`should_continue`] is
/// consulted *before* each fetch, and [`instruction_executed`] is invoked
/// once per executed instruction (including the final `ret`).  When
/// [`should_continue`] returns `false` the run stops with [`halt_error`].
///
/// [`should_continue`]: ExecutionController::should_continue
/// [`instruction_executed`]: ExecutionController::instruction_executed
/// [`halt_error`]: ExecutionController::halt_error
pub trait ExecutionController {
    /// May the next instruction execute?
    fn should_continue(&mut self) -> bool;

    /// One instruction has executed.
    fn instruction_executed(&mut self);

    /// The error reported when [`ExecutionController::should_continue`]
    /// denies further execution.
    fn halt_error(&self) -> IsaError;
}

/// An [`ExecutionController`] that never halts execution (the body's own
/// `ret`, or a dynamic error, ends the run).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunForever;

impl ExecutionController for RunForever {
    #[inline(always)]
    fn should_continue(&mut self) -> bool {
        true
    }

    #[inline(always)]
    fn instruction_executed(&mut self) {}

    fn halt_error(&self) -> IsaError {
        IsaError::StepLimitExceeded { limit: u64::MAX }
    }
}

/// An [`ExecutionController`] enforcing the same step budget as
/// [`crate::vm::VmOptions::step_limit`]: the `n+1`-th instruction is refused
/// once `n == limit` instructions have executed.
#[derive(Debug, Clone, Copy)]
pub struct StepBudget {
    limit: u64,
    executed: u64,
}

impl StepBudget {
    /// A budget admitting at most `limit` instructions.
    pub fn new(limit: u64) -> Self {
        Self { limit, executed: 0 }
    }

    /// Number of instructions executed so far under this budget.
    pub fn executed(&self) -> u64 {
        self.executed
    }
}

impl ExecutionController for StepBudget {
    #[inline(always)]
    fn should_continue(&mut self) -> bool {
        self.executed < self.limit
    }

    #[inline(always)]
    fn instruction_executed(&mut self) {
        self.executed += 1;
    }

    fn halt_error(&self) -> IsaError {
        IsaError::StepLimitExceeded { limit: self.limit }
    }
}

/// One key of the unified frame: which architectural location a frame slot
/// stands for.  Registers are normalised modulo [`Reg::COUNT`] so aliasing
/// register names share a slot, exactly like the reference register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SlotKey {
    Reg(u8),
    Stack(i32),
    Tls(u32),
    Global(u32),
}

/// A location resolved at decode time: either a direct index into the dense
/// frame vector, or an incoming argument (bounds-checked against `args` at
/// run time, exactly like the reference interpreter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DLoc {
    Slot(u32),
    Arg(u32),
}

/// A pre-resolved right-hand operand (fallback forms only — the hot
/// specialised opcodes carry their operands inline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DOperand {
    Imm(i64),
    Loc(DLoc),
}

/// One pre-decoded instruction.  The common forms are specialised on operand
/// shape at compile time (`*S` suffix: slot destination; `SI`/`SS`:
/// slot-immediate / slot-slot) so the dispatch loop reads and writes the
/// frame directly; generic fallbacks cover argument-operand shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DInst {
    MovImmS {
        dst: u32,
        imm: i64,
    },
    MovSS {
        dst: u32,
        src: u32,
    },
    AluSI {
        op: BinAluOp,
        dst: u32,
        imm: i64,
    },
    AluSS {
        op: BinAluOp,
        dst: u32,
        src: u32,
    },
    NegS {
        dst: u32,
    },
    CmpSI {
        a: u32,
        imm: i64,
    },
    CmpSS {
        a: u32,
        b: u32,
    },
    MovImm {
        dst: DLoc,
        imm: i64,
    },
    Mov {
        dst: DLoc,
        src: DLoc,
    },
    Alu {
        op: BinAluOp,
        dst: DLoc,
        src: DOperand,
    },
    Neg {
        dst: DLoc,
    },
    Cmp {
        a: DLoc,
        b: DOperand,
    },
    Jmp {
        target: u32,
    },
    JmpCond {
        cond: Cond,
        target: u32,
    },
    JmpIndirect {
        loc: DLoc,
    },
    Call {
        sym: u32,
    },
    CallIndirect {
        loc: DLoc,
    },
    Load {
        dst: u32,
        base: u32,
        global_slot: Option<u32>,
    },
    Store {
        base: u32,
        offset: i32,
        src: DOperand,
        global_slot: Option<u32>,
    },
    LeaPicBase {
        dst: u32,
    },
    Syscall {
        num: u32,
    },
    Ret,
    Nop,
}

/// Builds the dense slot index for the unified frame during compilation.
#[derive(Debug, Default)]
struct SlotMap {
    index: HashMap<SlotKey, u32>,
    keys: Vec<SlotKey>,
}

impl SlotMap {
    fn slot(&mut self, key: SlotKey) -> u32 {
        if let Some(&slot) = self.index.get(&key) {
            return slot;
        }
        let slot = self.keys.len() as u32;
        self.index.insert(key, slot);
        self.keys.push(key);
        slot
    }
}

#[inline(always)]
fn alu(op: BinAluOp, lhs: i64, rhs: i64) -> i64 {
    match op {
        BinAluOp::Add => lhs.wrapping_add(rhs),
        BinAluOp::Sub => lhs.wrapping_sub(rhs),
        BinAluOp::And => lhs & rhs,
        BinAluOp::Or => lhs | rhs,
        BinAluOp::Xor => lhs ^ rhs,
        BinAluOp::Mul => lhs.wrapping_mul(rhs),
    }
}

/// A function body compiled for the fast dispatch loop.
///
/// Compile once with [`DecodedBody::compile`], execute any number of times
/// with [`DecodedBody::run`]; execution is outcome-identical to
/// [`crate::vm::Vm::run`] on the same body (same [`ExecOutcome`], including
/// step counts, store events and the TLS/global write maps, and the same
/// dynamic errors).
///
/// The one *static* difference is deliberate: out-of-range `Jmp`/`JmpCond`
/// targets are rejected at compile time with [`IsaError::JumpOutOfRange`],
/// even when the reference interpreter would never reach them.
#[derive(Debug, Clone)]
pub struct DecodedBody {
    insts: Vec<DInst>,
    return_loc: DLoc,
    /// Total slots in the unified frame (registers + stack + TLS + globals).
    frame_len: usize,
    /// `(frame slot, TLS offset)` pairs, for assembling the outcome map.
    tls_slots: Vec<(u32, u32)>,
    /// `(frame slot, global offset)` pairs, for assembling the outcome map.
    global_slots: Vec<(u32, u32)>,
}

impl DecodedBody {
    /// Compiles `body` for `platform`'s ABI.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::JumpOutOfRange`] if any `Jmp`/`JmpCond` names an
    /// instruction index outside the body.
    pub fn compile(platform: Platform, body: &[Inst]) -> Result<Self, IsaError> {
        let mut slots = SlotMap::default();
        let len = body.len();

        fn resolve(loc: Loc, slots: &mut SlotMap) -> DLoc {
            match loc {
                Loc::Reg(Reg(r)) => DLoc::Slot(slots.slot(SlotKey::Reg(r % Reg::COUNT))),
                Loc::Stack(off) => DLoc::Slot(slots.slot(SlotKey::Stack(off))),
                Loc::Arg(n) => DLoc::Arg(u32::from(n)),
                Loc::Global(off) => DLoc::Slot(slots.slot(SlotKey::Global(off))),
                Loc::Tls(off) => DLoc::Slot(slots.slot(SlotKey::Tls(off))),
            }
        }
        macro_rules! resolve {
            ($loc:expr) => {
                resolve($loc, &mut slots)
            };
        }
        let check = |target: u32| -> Result<u32, IsaError> {
            if (target as usize) < len {
                Ok(target)
            } else {
                Err(IsaError::JumpOutOfRange { target: i64::from(target), len })
            }
        };
        macro_rules! reg {
            ($r:expr) => {
                slots.slot(SlotKey::Reg($r.0 % Reg::COUNT))
            };
        }
        macro_rules! operand {
            ($op:expr) => {
                match $op {
                    Operand::Imm(v) => DOperand::Imm(v),
                    Operand::Loc(l) => DOperand::Loc(resolve!(l)),
                }
            };
        }

        let mut insts = Vec::with_capacity(len);
        for inst in body {
            let dinst = match *inst {
                Inst::MovImm { dst, imm } => match resolve!(dst) {
                    DLoc::Slot(dst) => DInst::MovImmS { dst, imm },
                    dst => DInst::MovImm { dst, imm },
                },
                Inst::Mov { dst, src } => match (resolve!(dst), resolve!(src)) {
                    (DLoc::Slot(dst), DLoc::Slot(src)) => DInst::MovSS { dst, src },
                    (dst, src) => DInst::Mov { dst, src },
                },
                Inst::Alu { op, dst, src } => match (resolve!(dst), src) {
                    (DLoc::Slot(dst), Operand::Imm(imm)) => DInst::AluSI { op, dst, imm },
                    (DLoc::Slot(dst), Operand::Loc(l)) => match resolve!(l) {
                        DLoc::Slot(src) => DInst::AluSS { op, dst, src },
                        src => DInst::Alu { op, dst: DLoc::Slot(dst), src: DOperand::Loc(src) },
                    },
                    (dst, src) => DInst::Alu { op, dst, src: operand!(src) },
                },
                Inst::Neg { dst } => match resolve!(dst) {
                    DLoc::Slot(dst) => DInst::NegS { dst },
                    dst => DInst::Neg { dst },
                },
                Inst::Cmp { a, b } => match (resolve!(a), b) {
                    (DLoc::Slot(a), Operand::Imm(imm)) => DInst::CmpSI { a, imm },
                    (DLoc::Slot(a), Operand::Loc(l)) => match resolve!(l) {
                        DLoc::Slot(b) => DInst::CmpSS { a, b },
                        b => DInst::Cmp { a: DLoc::Slot(a), b: DOperand::Loc(b) },
                    },
                    (a, b) => DInst::Cmp { a, b: operand!(b) },
                },
                Inst::Jmp { target } => DInst::Jmp { target: check(target)? },
                Inst::JmpCond { cond, target } => DInst::JmpCond { cond, target: check(target)? },
                Inst::JmpIndirect { loc } => DInst::JmpIndirect { loc: resolve!(loc) },
                Inst::Call { sym } => DInst::Call { sym },
                Inst::CallIndirect { loc } => DInst::CallIndirect { loc: resolve!(loc) },
                Inst::Load { dst, base, offset } => {
                    let global_slot = (offset >= 0).then(|| slots.slot(SlotKey::Global(offset as u32)));
                    DInst::Load { dst: reg!(dst), base: reg!(base), global_slot }
                }
                Inst::Store { base, offset, src } => {
                    let src = operand!(src);
                    let global_slot = (offset >= 0).then(|| slots.slot(SlotKey::Global(offset as u32)));
                    DInst::Store { base: reg!(base), offset, src, global_slot }
                }
                Inst::LeaPicBase { dst } => DInst::LeaPicBase { dst: reg!(dst) },
                Inst::Syscall { num } => DInst::Syscall { num },
                Inst::Ret => DInst::Ret,
                Inst::Nop => DInst::Nop,
            };
            insts.push(dinst);
        }
        let return_loc = resolve!(platform.abi().return_loc());

        let mut tls_slots = Vec::new();
        let mut global_slots = Vec::new();
        for (slot, key) in slots.keys.iter().enumerate() {
            match *key {
                SlotKey::Tls(off) => tls_slots.push((slot as u32, off)),
                SlotKey::Global(off) => global_slots.push((slot as u32, off)),
                SlotKey::Reg(_) | SlotKey::Stack(_) => {}
            }
        }

        Ok(Self { insts, return_loc, frame_len: slots.keys.len(), tls_slots, global_slots })
    }

    /// Number of instructions in the compiled body.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the body holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Executes the compiled body under `controller`'s step policy,
    /// resolving calls and syscalls through `env`.
    ///
    /// # Errors
    ///
    /// The same dynamic errors as [`crate::vm::Vm::run`]: an indirect jump
    /// out of range, falling off the end of the body, an unresolved call, or
    /// the controller's [`ExecutionController::halt_error`].
    pub fn run<C: ExecutionController>(
        &self,
        args: &[i64],
        env: &mut dyn CallEnv,
        controller: &mut C,
    ) -> Result<ExecOutcome, IsaError> {
        let mut frame = vec![0i64; self.frame_len];
        // One written-bit per frame slot; only the TLS/global slots are read
        // back at `ret`, reproducing the reference's insert-only write maps.
        let mut written = vec![false; self.frame_len];
        let mut stores: Vec<StoreEvent> = Vec::new();
        let mut flags: (i64, i64) = (0, 0);
        let mut pc: usize = 0;
        let mut steps: u64 = 0;

        macro_rules! read {
            ($loc:expr) => {
                match $loc {
                    DLoc::Slot(s) => frame[s as usize],
                    DLoc::Arg(n) => args.get(n as usize).copied().unwrap_or(0),
                }
            };
        }
        macro_rules! write {
            ($loc:expr, $value:expr) => {
                match $loc {
                    DLoc::Slot(s) => {
                        frame[s as usize] = $value;
                        written[s as usize] = true;
                    }
                    // Writes to argument slots go to the caller's copy; they
                    // are not observable after return (reference semantics).
                    DLoc::Arg(_) => {}
                }
            };
        }
        macro_rules! operand {
            ($op:expr) => {
                match $op {
                    DOperand::Imm(v) => v,
                    DOperand::Loc(l) => read!(l),
                }
            };
        }

        loop {
            if !controller.should_continue() {
                return Err(controller.halt_error());
            }
            let Some(inst) = self.insts.get(pc) else {
                return Err(IsaError::FellOffEnd);
            };
            steps += 1;
            controller.instruction_executed();
            let mut next_pc = pc + 1;
            match *inst {
                DInst::MovImmS { dst, imm } => {
                    frame[dst as usize] = imm;
                    written[dst as usize] = true;
                }
                DInst::MovSS { dst, src } => {
                    frame[dst as usize] = frame[src as usize];
                    written[dst as usize] = true;
                }
                DInst::AluSI { op, dst, imm } => {
                    let d = dst as usize;
                    frame[d] = alu(op, frame[d], imm);
                    written[d] = true;
                }
                DInst::AluSS { op, dst, src } => {
                    let rhs = frame[src as usize];
                    let d = dst as usize;
                    frame[d] = alu(op, frame[d], rhs);
                    written[d] = true;
                }
                DInst::NegS { dst } => {
                    let d = dst as usize;
                    frame[d] = frame[d].wrapping_neg();
                    written[d] = true;
                }
                DInst::CmpSI { a, imm } => flags = (frame[a as usize], imm),
                DInst::CmpSS { a, b } => flags = (frame[a as usize], frame[b as usize]),
                DInst::MovImm { dst, imm } => write!(dst, imm),
                DInst::Mov { dst, src } => {
                    let v = read!(src);
                    write!(dst, v);
                }
                DInst::Alu { op, dst, src } => {
                    let rhs = operand!(src);
                    let lhs = read!(dst);
                    let result = alu(op, lhs, rhs);
                    write!(dst, result);
                }
                DInst::Neg { dst } => {
                    let v = read!(dst);
                    write!(dst, v.wrapping_neg());
                }
                DInst::Cmp { a, b } => flags = (read!(a), operand!(b)),
                DInst::Jmp { target } => next_pc = target as usize,
                DInst::JmpCond { cond, target } => {
                    if cond.holds(flags.0, flags.1) {
                        next_pc = target as usize;
                    }
                }
                DInst::JmpIndirect { loc } => {
                    let target = read!(loc);
                    next_pc = match usize::try_from(target) {
                        Ok(t) if t < self.insts.len() => t,
                        _ => return Err(IsaError::JumpOutOfRange { target, len: self.insts.len() }),
                    };
                }
                DInst::Call { sym } => {
                    let v = env.call(sym)?;
                    write!(self.return_loc, v);
                }
                DInst::CallIndirect { loc } => {
                    let target = read!(loc);
                    let v = env.call_indirect(target)?;
                    write!(self.return_loc, v);
                }
                DInst::Load { dst, base, global_slot } => {
                    let v = match global_slot {
                        Some(slot) if frame[base as usize] == PIC_BASE => frame[slot as usize],
                        _ => 0,
                    };
                    frame[dst as usize] = v;
                    written[dst as usize] = true;
                }
                DInst::Store { base, offset, src, global_slot } => {
                    let base_v = frame[base as usize];
                    let value = operand!(src);
                    stores.push(StoreEvent { base_value: base_v, offset, value });
                    if let Some(slot) = global_slot {
                        if base_v == PIC_BASE {
                            frame[slot as usize] = value;
                            written[slot as usize] = true;
                        }
                    }
                }
                DInst::LeaPicBase { dst } => {
                    frame[dst as usize] = PIC_BASE;
                    written[dst as usize] = true;
                }
                DInst::Syscall { num } => {
                    let v = env.syscall(num);
                    write!(self.return_loc, v);
                }
                DInst::Ret => {
                    let return_value = read!(self.return_loc);
                    let tls_writes = self
                        .tls_slots
                        .iter()
                        .filter(|&&(slot, _)| written[slot as usize])
                        .map(|&(slot, off)| (off, frame[slot as usize]))
                        .collect();
                    let global_writes = self
                        .global_slots
                        .iter()
                        .filter(|&&(slot, _)| written[slot as usize])
                        .map(|&(slot, off)| (off, frame[slot as usize]))
                        .collect();
                    return Ok(ExecOutcome { return_value, tls_writes, global_writes, stores, steps });
                }
                DInst::Nop => {}
            }
            pc = next_pc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{ConstEnv, FnEnv, Vm, VmOptions};

    fn abi_ret() -> Loc {
        Platform::LinuxX86.abi().return_loc()
    }

    fn both(body: &[Inst], args: &[i64]) -> (Result<ExecOutcome, IsaError>, Result<ExecOutcome, IsaError>) {
        let reference = Vm::new(Platform::LinuxX86).run(body, args, &mut ConstEnv::default());
        let decoded = DecodedBody::compile(Platform::LinuxX86, body).unwrap().run(
            args,
            &mut ConstEnv::default(),
            &mut StepBudget::new(VmOptions::default().step_limit),
        );
        (reference, decoded)
    }

    #[test]
    fn matches_reference_on_basics() {
        let abi = Platform::LinuxX86.abi();
        let errno_off = abi.errno_tls_offset() as i32;
        let body = vec![
            Inst::Syscall { num: 6 },
            Inst::LeaPicBase { dst: Reg(3) },
            Inst::Mov { dst: Loc::Reg(Reg(2)), src: abi.return_loc() },
            Inst::Neg { dst: Loc::Reg(Reg(2)) },
            Inst::Store { base: Reg(3), offset: errno_off, src: Operand::Loc(Loc::Reg(Reg(2))) },
            Inst::MovImm { dst: Loc::Tls(0x10), imm: 5 },
            Inst::MovImm { dst: Loc::Global(0x20), imm: 6 },
            Inst::MovImm { dst: abi.return_loc(), imm: -1 },
            Inst::Ret,
        ];
        let mut env = ConstEnv { call_result: 0, syscall_result: -9 };
        let reference = Vm::new(Platform::LinuxX86).run(&body, &[], &mut env.clone()).unwrap();
        let decoded = DecodedBody::compile(Platform::LinuxX86, &body)
            .unwrap()
            .run(&[], &mut env, &mut RunForever)
            .unwrap();
        assert_eq!(reference, decoded);
        assert_eq!(decoded.return_value, -1);
        assert_eq!(decoded.tls_writes.get(&0x10), Some(&5));
        assert_eq!(decoded.global_writes.get(&0x20), Some(&6));
    }

    #[test]
    fn branches_like_reference() {
        let body = vec![
            Inst::Cmp { a: Loc::Arg(0), b: Operand::Imm(0) },
            Inst::JmpCond { cond: Cond::Ne, target: 4 },
            Inst::MovImm { dst: abi_ret(), imm: 0 },
            Inst::Ret,
            Inst::MovImm { dst: abi_ret(), imm: 5 },
            Inst::Ret,
        ];
        for args in [[0i64], [1i64]] {
            let (reference, decoded) = both(&body, &args);
            assert_eq!(reference.unwrap(), decoded.unwrap());
        }
    }

    #[test]
    fn stack_slots_round_trip() {
        let body = vec![
            Inst::MovImm { dst: Loc::Stack(-8), imm: 11 },
            Inst::Mov { dst: Loc::Stack(4), src: Loc::Stack(-8) },
            Inst::Alu { op: BinAluOp::Add, dst: Loc::Stack(4), src: Operand::Loc(Loc::Stack(-16)) },
            Inst::Mov { dst: abi_ret(), src: Loc::Stack(4) },
            Inst::Ret,
        ];
        let (reference, decoded) = both(&body, &[]);
        assert_eq!(reference.unwrap(), decoded.unwrap());
    }

    #[test]
    fn argument_operands_fall_back_to_generic_forms() {
        // Arg as ALU source, Cmp operand, Mov source and (discarded) write
        // destination — every generic fallback arm, pinned to the reference.
        let body = vec![
            Inst::MovImm { dst: Loc::Arg(0), imm: 99 },
            Inst::Mov { dst: Loc::Reg(Reg(1)), src: Loc::Arg(0) },
            Inst::Alu { op: BinAluOp::Add, dst: Loc::Reg(Reg(1)), src: Operand::Loc(Loc::Arg(1)) },
            Inst::Cmp { a: Loc::Arg(0), b: Operand::Loc(Loc::Arg(1)) },
            Inst::JmpCond { cond: Cond::Gt, target: 6 },
            Inst::Nop,
            Inst::Mov { dst: abi_ret(), src: Loc::Reg(Reg(1)) },
            Inst::Ret,
        ];
        for args in [[7i64, 3], [3i64, 7]] {
            let (reference, decoded) = both(&body, &args);
            assert_eq!(reference.unwrap(), decoded.unwrap());
        }
    }

    #[test]
    fn static_jump_out_of_range_fails_at_compile_time() {
        let body = vec![Inst::Jmp { target: 17 }];
        let err = DecodedBody::compile(Platform::LinuxX86, &body).unwrap_err();
        assert_eq!(err, IsaError::JumpOutOfRange { target: 17, len: 1 });
        let body = vec![Inst::JmpCond { cond: Cond::Eq, target: 9 }, Inst::Ret];
        let err = DecodedBody::compile(Platform::LinuxX86, &body).unwrap_err();
        assert_eq!(err, IsaError::JumpOutOfRange { target: 9, len: 2 });
    }

    #[test]
    fn negative_indirect_target_reports_original_value() {
        let body = vec![Inst::MovImm { dst: Loc::Reg(Reg(1)), imm: -3 }, Inst::JmpIndirect { loc: Loc::Reg(Reg(1)) }];
        let (reference, decoded) = both(&body, &[]);
        assert_eq!(reference.unwrap_err(), IsaError::JumpOutOfRange { target: -3, len: 2 });
        assert_eq!(decoded.unwrap_err(), IsaError::JumpOutOfRange { target: -3, len: 2 });
    }

    #[test]
    fn step_budget_matches_reference_step_limit() {
        let body = vec![Inst::Jmp { target: 0 }];
        let reference = Vm::with_options(Platform::LinuxX86, VmOptions { step_limit: 64 }).run(
            &body,
            &[],
            &mut ConstEnv::default(),
        );
        let decoded = DecodedBody::compile(Platform::LinuxX86, &body).unwrap().run(
            &[],
            &mut ConstEnv::default(),
            &mut StepBudget::new(64),
        );
        assert_eq!(reference.unwrap_err(), IsaError::StepLimitExceeded { limit: 64 });
        assert_eq!(decoded.unwrap_err(), IsaError::StepLimitExceeded { limit: 64 });
    }

    #[test]
    fn budget_boundary_admits_exact_fit() {
        // A body that returns on its n-th instruction runs under a budget of
        // exactly n, in both interpreters.
        let body = vec![Inst::Nop, Inst::MovImm { dst: abi_ret(), imm: 3 }, Inst::Ret];
        let reference =
            Vm::with_options(Platform::LinuxX86, VmOptions { step_limit: 3 }).run(&body, &[], &mut ConstEnv::default());
        let mut budget = StepBudget::new(3);
        let decoded =
            DecodedBody::compile(Platform::LinuxX86, &body)
                .unwrap()
                .run(&[], &mut ConstEnv::default(), &mut budget);
        assert_eq!(reference.unwrap(), decoded.unwrap());
        assert_eq!(budget.executed(), 3);
    }

    #[test]
    fn fell_off_end_and_unresolved_call_match_reference() {
        let (reference, decoded) = both(&[Inst::Nop], &[]);
        assert_eq!(reference.unwrap_err(), IsaError::FellOffEnd);
        assert_eq!(decoded.unwrap_err(), IsaError::FellOffEnd);

        let body = vec![Inst::Call { sym: 3 }, Inst::Ret];
        let err = DecodedBody::compile(Platform::LinuxX86, &body)
            .unwrap()
            .run(&[], &mut FnEnv::new(|sym| Err(IsaError::UnresolvedCall { sym }), |_| 0), &mut RunForever)
            .unwrap_err();
        assert_eq!(err, IsaError::UnresolvedCall { sym: 3 });
    }

    #[test]
    fn sparc_return_register_is_respected() {
        let abi = Platform::SolarisSparc.abi();
        let body = vec![
            Inst::MovImm { dst: Loc::Reg(Reg(0)), imm: 42 },
            Inst::MovImm { dst: abi.return_loc(), imm: -2 },
            Inst::Ret,
        ];
        let out = DecodedBody::compile(Platform::SolarisSparc, &body)
            .unwrap()
            .run(&[], &mut ConstEnv::default(), &mut RunForever)
            .unwrap();
        assert_eq!(out.return_value, -2);
    }

    #[test]
    fn loads_alias_pic_stores_like_reference() {
        let body = vec![
            Inst::LeaPicBase { dst: Reg(5) },
            Inst::Store { base: Reg(5), offset: 0x40, src: Operand::Imm(77) },
            Inst::Load { dst: Reg(1), base: Reg(5), offset: 0x40 },
            Inst::Mov { dst: abi_ret(), src: Loc::Reg(Reg(1)) },
            Inst::Ret,
        ];
        let (reference, decoded) = both(&body, &[]);
        let (reference, decoded) = (reference.unwrap(), decoded.unwrap());
        assert_eq!(reference, decoded);
        assert_eq!(decoded.return_value, 77);
        // A load through a non-PIC base reads zero in both interpreters.
        let body = vec![Inst::Load { dst: Reg(1), base: Reg(2), offset: 0x40 }, Inst::Ret];
        let (reference, decoded) = both(&body, &[]);
        assert_eq!(reference.unwrap(), decoded.unwrap());
    }

    #[test]
    fn global_locs_alias_pic_relative_stores() {
        // The same global offset reached both as `Loc::Global` and through a
        // PIC-relative store shares one frame slot in the decoded body, just
        // as both paths hit one HashMap entry in the reference.
        let body = vec![
            Inst::MovImm { dst: Loc::Global(0x40), imm: 5 },
            Inst::LeaPicBase { dst: Reg(5) },
            Inst::Store { base: Reg(5), offset: 0x40, src: Operand::Imm(9) },
            Inst::Load { dst: Reg(1), base: Reg(5), offset: 0x40 },
            Inst::Mov { dst: abi_ret(), src: Loc::Reg(Reg(1)) },
            Inst::Ret,
        ];
        let (reference, decoded) = both(&body, &[]);
        let (reference, decoded) = (reference.unwrap(), decoded.unwrap());
        assert_eq!(reference, decoded);
        assert_eq!(decoded.return_value, 9);
        assert_eq!(decoded.global_writes.get(&0x40), Some(&9));
    }
}
