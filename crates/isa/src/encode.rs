//! Binary encoding and decoding of SimISA instructions.
//!
//! The LFI profiler analyzes *binaries*, so SimISA functions are stored in
//! object files as encoded byte streams and the disassembler (`lfi-disasm`)
//! decodes them back.  The encoding is byte-oriented, little-endian and
//! variable length.

use crate::{BinAluOp, Cond, Inst, IsaError, Loc, Operand, Reg};

// Opcode assignments.  Kept stable so object files remain readable across
// versions of the toolchain.
const OP_MOV_IMM: u8 = 0x01;
const OP_MOV: u8 = 0x02;
const OP_ALU: u8 = 0x03;
const OP_NEG: u8 = 0x04;
const OP_CMP: u8 = 0x05;
const OP_JMP: u8 = 0x06;
const OP_JMP_COND: u8 = 0x07;
const OP_JMP_INDIRECT: u8 = 0x08;
const OP_CALL: u8 = 0x09;
const OP_CALL_INDIRECT: u8 = 0x0a;
const OP_LOAD: u8 = 0x0b;
const OP_STORE: u8 = 0x0c;
const OP_LEA_PIC: u8 = 0x0d;
const OP_SYSCALL: u8 = 0x0e;
const OP_RET: u8 = 0x0f;
const OP_NOP: u8 = 0x10;

const LOC_REG: u8 = 0x00;
const LOC_STACK: u8 = 0x01;
const LOC_ARG: u8 = 0x02;
const LOC_GLOBAL: u8 = 0x03;
const LOC_TLS: u8 = 0x04;

const OPERAND_IMM: u8 = 0x00;
const OPERAND_LOC: u8 = 0x01;

fn push_loc(out: &mut Vec<u8>, loc: Loc) {
    match loc {
        Loc::Reg(Reg(r)) => {
            out.push(LOC_REG);
            out.extend_from_slice(&(r as u32).to_le_bytes());
        }
        Loc::Stack(off) => {
            out.push(LOC_STACK);
            out.extend_from_slice(&off.to_le_bytes());
        }
        Loc::Arg(n) => {
            out.push(LOC_ARG);
            out.extend_from_slice(&(n as u32).to_le_bytes());
        }
        Loc::Global(off) => {
            out.push(LOC_GLOBAL);
            out.extend_from_slice(&off.to_le_bytes());
        }
        Loc::Tls(off) => {
            out.push(LOC_TLS);
            out.extend_from_slice(&off.to_le_bytes());
        }
    }
}

fn push_operand(out: &mut Vec<u8>, op: Operand) {
    match op {
        Operand::Imm(v) => {
            out.push(OPERAND_IMM);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Operand::Loc(l) => {
            out.push(OPERAND_LOC);
            push_loc(out, l);
        }
    }
}

fn alu_code(op: BinAluOp) -> u8 {
    match op {
        BinAluOp::Add => 0,
        BinAluOp::Sub => 1,
        BinAluOp::And => 2,
        BinAluOp::Or => 3,
        BinAluOp::Xor => 4,
        BinAluOp::Mul => 5,
    }
}

fn cond_code(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Le => 3,
        Cond::Gt => 4,
        Cond::Ge => 5,
    }
}

/// Encodes a single instruction, appending its bytes to `out`.
pub fn encode_inst(inst: &Inst, out: &mut Vec<u8>) {
    match *inst {
        Inst::MovImm { dst, imm } => {
            out.push(OP_MOV_IMM);
            push_loc(out, dst);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Inst::Mov { dst, src } => {
            out.push(OP_MOV);
            push_loc(out, dst);
            push_loc(out, src);
        }
        Inst::Alu { op, dst, src } => {
            out.push(OP_ALU);
            out.push(alu_code(op));
            push_loc(out, dst);
            push_operand(out, src);
        }
        Inst::Neg { dst } => {
            out.push(OP_NEG);
            push_loc(out, dst);
        }
        Inst::Cmp { a, b } => {
            out.push(OP_CMP);
            push_loc(out, a);
            push_operand(out, b);
        }
        Inst::Jmp { target } => {
            out.push(OP_JMP);
            out.extend_from_slice(&target.to_le_bytes());
        }
        Inst::JmpCond { cond, target } => {
            out.push(OP_JMP_COND);
            out.push(cond_code(cond));
            out.extend_from_slice(&target.to_le_bytes());
        }
        Inst::JmpIndirect { loc } => {
            out.push(OP_JMP_INDIRECT);
            push_loc(out, loc);
        }
        Inst::Call { sym } => {
            out.push(OP_CALL);
            out.extend_from_slice(&sym.to_le_bytes());
        }
        Inst::CallIndirect { loc } => {
            out.push(OP_CALL_INDIRECT);
            push_loc(out, loc);
        }
        Inst::Load { dst, base, offset } => {
            out.push(OP_LOAD);
            out.push(dst.0);
            out.push(base.0);
            out.extend_from_slice(&offset.to_le_bytes());
        }
        Inst::Store { base, offset, src } => {
            out.push(OP_STORE);
            out.push(base.0);
            out.extend_from_slice(&offset.to_le_bytes());
            push_operand(out, src);
        }
        Inst::LeaPicBase { dst } => {
            out.push(OP_LEA_PIC);
            out.push(dst.0);
        }
        Inst::Syscall { num } => {
            out.push(OP_SYSCALL);
            out.extend_from_slice(&num.to_le_bytes());
        }
        Inst::Ret => out.push(OP_RET),
        Inst::Nop => out.push(OP_NOP),
    }
}

/// Encodes a full function body into a fresh byte vector.
pub fn encode_function(body: &[Inst]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() * 8);
    for inst in body {
        encode_inst(inst, &mut out);
    }
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, IsaError> {
        let b = *self.bytes.get(self.pos).ok_or(IsaError::TruncatedInstruction { offset: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, IsaError> {
        let end = self.pos + 4;
        let slice = self.bytes.get(self.pos..end).ok_or(IsaError::TruncatedInstruction { offset: self.pos })?;
        self.pos = end;
        Ok(u32::from_le_bytes(slice.try_into().expect("slice is 4 bytes")))
    }

    fn i32(&mut self) -> Result<i32, IsaError> {
        Ok(self.u32()? as i32)
    }

    fn i64(&mut self) -> Result<i64, IsaError> {
        let end = self.pos + 8;
        let slice = self.bytes.get(self.pos..end).ok_or(IsaError::TruncatedInstruction { offset: self.pos })?;
        self.pos = end;
        Ok(i64::from_le_bytes(slice.try_into().expect("slice is 8 bytes")))
    }

    fn loc(&mut self) -> Result<Loc, IsaError> {
        let tag_offset = self.pos;
        let tag = self.u8()?;
        let payload = self.u32()?;
        match tag {
            LOC_REG => Ok(Loc::Reg(Reg(payload as u8))),
            LOC_STACK => Ok(Loc::Stack(payload as i32)),
            LOC_ARG => Ok(Loc::Arg(payload as u8)),
            LOC_GLOBAL => Ok(Loc::Global(payload)),
            LOC_TLS => Ok(Loc::Tls(payload)),
            _ => Err(IsaError::InvalidLocation { tag, offset: tag_offset }),
        }
    }

    fn operand(&mut self) -> Result<Operand, IsaError> {
        let tag_offset = self.pos;
        let tag = self.u8()?;
        match tag {
            OPERAND_IMM => Ok(Operand::Imm(self.i64()?)),
            OPERAND_LOC => Ok(Operand::Loc(self.loc()?)),
            _ => Err(IsaError::InvalidOperand { tag, offset: tag_offset }),
        }
    }
}

fn decode_alu(code: u8, offset: usize) -> Result<BinAluOp, IsaError> {
    match code {
        0 => Ok(BinAluOp::Add),
        1 => Ok(BinAluOp::Sub),
        2 => Ok(BinAluOp::And),
        3 => Ok(BinAluOp::Or),
        4 => Ok(BinAluOp::Xor),
        5 => Ok(BinAluOp::Mul),
        _ => Err(IsaError::UnknownOpcode { opcode: code, offset }),
    }
}

fn decode_cond(code: u8, offset: usize) -> Result<Cond, IsaError> {
    match code {
        0 => Ok(Cond::Eq),
        1 => Ok(Cond::Ne),
        2 => Ok(Cond::Lt),
        3 => Ok(Cond::Le),
        4 => Ok(Cond::Gt),
        5 => Ok(Cond::Ge),
        _ => Err(IsaError::UnknownOpcode { opcode: code, offset }),
    }
}

/// Decodes a full function body from its encoded bytes.
///
/// # Errors
///
/// Returns [`IsaError`] if the byte stream is truncated or contains an
/// unknown opcode, location tag or operand tag.
pub fn decode_function(bytes: &[u8]) -> Result<Vec<Inst>, IsaError> {
    let mut cur = Cursor { bytes, pos: 0 };
    let mut out = Vec::new();
    while cur.pos < bytes.len() {
        let op_offset = cur.pos;
        let opcode = cur.u8()?;
        let inst = match opcode {
            OP_MOV_IMM => Inst::MovImm { dst: cur.loc()?, imm: cur.i64()? },
            OP_MOV => Inst::Mov { dst: cur.loc()?, src: cur.loc()? },
            OP_ALU => {
                let code_offset = cur.pos;
                let code = cur.u8()?;
                Inst::Alu { op: decode_alu(code, code_offset)?, dst: cur.loc()?, src: cur.operand()? }
            }
            OP_NEG => Inst::Neg { dst: cur.loc()? },
            OP_CMP => Inst::Cmp { a: cur.loc()?, b: cur.operand()? },
            OP_JMP => Inst::Jmp { target: cur.u32()? },
            OP_JMP_COND => {
                let code_offset = cur.pos;
                let code = cur.u8()?;
                Inst::JmpCond { cond: decode_cond(code, code_offset)?, target: cur.u32()? }
            }
            OP_JMP_INDIRECT => Inst::JmpIndirect { loc: cur.loc()? },
            OP_CALL => Inst::Call { sym: cur.u32()? },
            OP_CALL_INDIRECT => Inst::CallIndirect { loc: cur.loc()? },
            OP_LOAD => Inst::Load { dst: Reg(cur.u8()?), base: Reg(cur.u8()?), offset: cur.i32()? },
            OP_STORE => Inst::Store { base: Reg(cur.u8()?), offset: cur.i32()?, src: cur.operand()? },
            OP_LEA_PIC => Inst::LeaPicBase { dst: Reg(cur.u8()?) },
            OP_SYSCALL => Inst::Syscall { num: cur.u32()? },
            OP_RET => Inst::Ret,
            OP_NOP => Inst::Nop,
            other => return Err(IsaError::UnknownOpcode { opcode: other, offset: op_offset }),
        };
        out.push(inst);
    }
    Ok(out)
}

/// Returns the encoded size, in bytes, of a function body.
pub fn encoded_size(body: &[Inst]) -> usize {
    encode_function(body).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Platform;

    fn sample_body() -> Vec<Inst> {
        let abi = Platform::LinuxX86.abi();
        vec![
            Inst::Cmp { a: Loc::Arg(0), b: Operand::Imm(0) },
            Inst::JmpCond { cond: Cond::Ne, target: 4 },
            Inst::MovImm { dst: abi.return_loc(), imm: 0 },
            Inst::Ret,
            Inst::LeaPicBase { dst: Reg(3) },
            Inst::Syscall { num: 6 },
            Inst::Mov { dst: Loc::Reg(Reg(2)), src: abi.return_loc() },
            Inst::Neg { dst: Loc::Reg(Reg(2)) },
            Inst::Store { base: Reg(3), offset: 0x12fff4, src: Operand::Loc(Loc::Reg(Reg(2))) },
            Inst::MovImm { dst: abi.return_loc(), imm: -1 },
            Inst::Ret,
        ]
    }

    #[test]
    fn roundtrip_sample() {
        let body = sample_body();
        let bytes = encode_function(&body);
        let decoded = decode_function(&bytes).unwrap();
        assert_eq!(body, decoded);
    }

    #[test]
    fn empty_function_roundtrips() {
        assert!(decode_function(&[]).unwrap().is_empty());
        assert!(encode_function(&[]).is_empty());
    }

    #[test]
    fn truncated_stream_is_rejected() {
        // Cut inside the trailing `MovImm` (the final `ret` is one byte, so
        // removing two bytes lands mid-instruction).
        let bytes = encode_function(&sample_body());
        let err = decode_function(&bytes[..bytes.len() - 2]).unwrap_err();
        assert!(matches!(err, IsaError::TruncatedInstruction { .. }));
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let err = decode_function(&[0xee]).unwrap_err();
        assert_eq!(err, IsaError::UnknownOpcode { opcode: 0xee, offset: 0 });
    }

    #[test]
    fn invalid_location_tag_is_rejected() {
        // OP_NEG followed by a bogus location tag.
        let err = decode_function(&[OP_NEG, 0x07, 0, 0, 0, 0]).unwrap_err();
        assert!(matches!(err, IsaError::InvalidLocation { tag: 0x07, .. }));
    }

    #[test]
    fn invalid_operand_tag_is_rejected() {
        // OP_CMP, valid loc (reg 0), bogus operand tag.
        let mut bytes = vec![OP_CMP];
        push_loc(&mut bytes, Loc::Reg(Reg(0)));
        bytes.push(0x09);
        let err = decode_function(&bytes).unwrap_err();
        assert!(matches!(err, IsaError::InvalidOperand { tag: 0x09, .. }));
    }

    #[test]
    fn encoded_size_matches_encoding() {
        let body = sample_body();
        assert_eq!(encoded_size(&body), encode_function(&body).len());
        assert!(encoded_size(&body) > body.len());
    }

    #[test]
    fn all_location_kinds_roundtrip() {
        let locs = [
            Loc::Reg(Reg(15)),
            Loc::Stack(-64),
            Loc::Stack(128),
            Loc::Arg(7),
            Loc::Global(0xdead),
            Loc::Tls(0xbeef),
        ];
        for loc in locs {
            let body = vec![Inst::Neg { dst: loc }];
            assert_eq!(decode_function(&encode_function(&body)).unwrap(), body);
        }
    }
}
