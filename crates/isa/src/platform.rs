use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Loc, Reg};

/// The platforms the LFI paper evaluates on (§6.3): Linux/x86, Windows/x86 and
/// Solaris/SPARC.
///
/// In SimISA the platforms share one instruction encoding but differ in their
/// application binary interface — which register carries the return value,
/// how many arguments travel in registers, and which register is used as the
/// base for position-independent data access.  This mirrors the paper's
/// observation that the CFG analyses are ABI-independent while the *locations*
/// of interest are ABI-specific.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Linux on IA-32: return value in `r0` (the `eax` analogue), PIC base in
    /// `r3` (the `ebx` analogue), arguments on the stack.
    LinuxX86,
    /// Windows on IA-32: identical register conventions to Linux but a
    /// different loader (modelled in `lfi-runtime`) and TLS layout.
    WindowsX86,
    /// Solaris on SPARC: return value in `r8` (the `%o0` analogue), six
    /// register arguments, PIC base in `r7` (the `%l7` analogue).
    SolarisSparc,
}

impl Platform {
    /// All platforms supported by the reproduction, in the order used by the
    /// paper's accuracy table.
    pub const ALL: [Platform; 3] = [Platform::LinuxX86, Platform::WindowsX86, Platform::SolarisSparc];

    /// Returns the calling convention / ABI description for this platform.
    pub fn abi(self) -> Abi {
        match self {
            Platform::LinuxX86 => Abi {
                platform: self,
                return_reg: Reg(0),
                pic_base_reg: Reg(3),
                register_args: 0,
                errno_tls_offset: 0x12fff4,
            },
            Platform::WindowsX86 => Abi {
                platform: self,
                return_reg: Reg(0),
                pic_base_reg: Reg(3),
                register_args: 0,
                errno_tls_offset: 0x0c00,
            },
            Platform::SolarisSparc => Abi {
                platform: self,
                return_reg: Reg(8),
                pic_base_reg: Reg(7),
                register_args: 6,
                errno_tls_offset: 0x2000,
            },
        }
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Platform::LinuxX86 => "Linux/x86",
            Platform::WindowsX86 => "Windows/x86",
            Platform::SolarisSparc => "Solaris/SPARC",
        };
        f.write_str(name)
    }
}

/// The application binary interface of a [`Platform`].
///
/// The LFI profiler needs to know exactly one ABI fact to run its return-code
/// analysis — *where the return value is placed* — plus, for side-effect
/// analysis, which register is the position-independent-code base and where
/// the `errno` thread-local slot lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Abi {
    platform: Platform,
    return_reg: Reg,
    pic_base_reg: Reg,
    register_args: u8,
    errno_tls_offset: u32,
}

impl Abi {
    /// The platform this ABI belongs to.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// The location in which functions place their return value (the `eax`
    /// analogue on x86, `%o0` on SPARC).
    pub fn return_loc(&self) -> Loc {
        Loc::Reg(self.return_reg)
    }

    /// The register holding the return value.
    pub fn return_reg(&self) -> Reg {
        self.return_reg
    }

    /// The register conventionally loaded with the module base address in
    /// position-independent code prologues (`ebx`/`ecx` on x86, `%l7` on
    /// SPARC).  Side-effect analysis treats stores through this base as
    /// global/TLS writes.
    pub fn pic_base_reg(&self) -> Reg {
        self.pic_base_reg
    }

    /// Number of arguments passed in registers before spilling to the stack.
    pub fn register_args(&self) -> u8 {
        self.register_args
    }

    /// The location of the `n`-th incoming argument as seen by the callee.
    pub fn arg_loc(&self, n: u8) -> Loc {
        Loc::Arg(n)
    }

    /// The canonical thread-local-storage offset of the `errno` variable in
    /// this platform's C library.
    pub fn errno_tls_offset(&self) -> u32 {
        self.errno_tls_offset
    }

    /// The TLS location of `errno` on this platform.
    pub fn errno_loc(&self) -> Loc {
        Loc::Tls(self.errno_tls_offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn return_locations_differ_by_platform() {
        assert_eq!(Platform::LinuxX86.abi().return_loc(), Loc::Reg(Reg(0)));
        assert_eq!(Platform::WindowsX86.abi().return_loc(), Loc::Reg(Reg(0)));
        assert_eq!(Platform::SolarisSparc.abi().return_loc(), Loc::Reg(Reg(8)));
    }

    #[test]
    fn sparc_passes_register_args() {
        assert_eq!(Platform::SolarisSparc.abi().register_args(), 6);
        assert_eq!(Platform::LinuxX86.abi().register_args(), 0);
    }

    #[test]
    fn errno_is_a_tls_side_channel() {
        for p in Platform::ALL {
            let abi = p.abi();
            assert!(abi.errno_loc().is_side_channel());
            assert_eq!(abi.errno_loc(), Loc::Tls(abi.errno_tls_offset()));
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Platform::LinuxX86.to_string(), "Linux/x86");
        assert_eq!(Platform::WindowsX86.to_string(), "Windows/x86");
        assert_eq!(Platform::SolarisSparc.to_string(), "Solaris/SPARC");
    }

    #[test]
    fn abi_accessors_are_consistent() {
        for p in Platform::ALL {
            let abi = p.abi();
            assert_eq!(abi.platform(), p);
            assert_eq!(Loc::Reg(abi.return_reg()), abi.return_loc());
            assert_eq!(abi.arg_loc(3), Loc::Arg(3));
        }
    }
}
