use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Reg;

/// A *location* a value can live in.
///
/// The LFI return-code analysis is phrased in terms of constants propagating
/// between locations ("memory location or register", §3.1 of the paper).  The
/// product graph `G'` built by the profiler is keyed by `(basic block, Loc)`.
///
/// * [`Loc::Reg`] — a general-purpose register.
/// * [`Loc::Stack`] — a slot in the current frame, identified by its byte
///   offset from the frame base.  Negative offsets are locals, positive
///   offsets are incoming stack arguments (mirroring `[ebp±k]` on IA-32).
/// * [`Loc::Arg`] — an incoming argument slot, abstracted away from the ABI's
///   register/stack split.
/// * [`Loc::Global`] — a module-global data slot at the given offset in the
///   library's data image.
/// * [`Loc::Tls`] — a thread-local slot at the given offset (e.g. `errno`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Loc {
    /// A general-purpose register.
    Reg(Reg),
    /// A frame slot at the given byte offset from the frame base.
    Stack(i32),
    /// The `n`-th incoming argument.
    Arg(u8),
    /// A module-global data slot at the given offset.
    Global(u32),
    /// A thread-local-storage slot at the given offset.
    Tls(u32),
}

impl Loc {
    /// Returns true if this location survives a function call on every SimISA
    /// ABI (i.e. it is not a scratch register).
    ///
    /// Stack, argument, global and TLS slots are always preserved; registers
    /// are treated uniformly as caller-saved, matching the conservative
    /// assumption the LFI profiler makes.
    pub fn survives_calls(self) -> bool {
        !matches!(self, Loc::Reg(_))
    }

    /// Returns true if a write to this location is visible outside the
    /// function activation (the definition of a *side channel* in §3.2).
    pub fn is_side_channel(self) -> bool {
        matches!(self, Loc::Global(_) | Loc::Tls(_))
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Loc::Reg(r) => write!(f, "{r}"),
            Loc::Stack(off) => write!(f, "[fp{off:+}]"),
            Loc::Arg(n) => write!(f, "arg{n}"),
            Loc::Global(off) => write!(f, "global@{off:#x}"),
            Loc::Tls(off) => write!(f, "tls@{off:#x}"),
        }
    }
}

impl From<Reg> for Loc {
    fn from(value: Reg) -> Self {
        Loc::Reg(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Loc::Reg(Reg(0)).to_string(), "r0");
        assert_eq!(Loc::Stack(-8).to_string(), "[fp-8]");
        assert_eq!(Loc::Stack(12).to_string(), "[fp+12]");
        assert_eq!(Loc::Arg(2).to_string(), "arg2");
        assert_eq!(Loc::Global(0x40).to_string(), "global@0x40");
        assert_eq!(Loc::Tls(0x12fff4).to_string(), "tls@0x12fff4");
    }

    #[test]
    fn side_channel_classification() {
        assert!(Loc::Tls(0).is_side_channel());
        assert!(Loc::Global(4).is_side_channel());
        assert!(!Loc::Reg(Reg(0)).is_side_channel());
        assert!(!Loc::Stack(8).is_side_channel());
        assert!(!Loc::Arg(0).is_side_channel());
    }

    #[test]
    fn call_survival() {
        assert!(!Loc::Reg(Reg(3)).survives_calls());
        assert!(Loc::Stack(-4).survives_calls());
        assert!(Loc::Arg(1).survives_calls());
        assert!(Loc::Global(0).survives_calls());
        assert!(Loc::Tls(0).survives_calls());
    }

    #[test]
    fn reg_conversion() {
        assert_eq!(Loc::from(Reg(5)), Loc::Reg(Reg(5)));
    }
}
