//! A small interpreter for SimISA function bodies.
//!
//! The interpreter is not part of the LFI pipeline itself — the original tool
//! never executes library code during profiling — but it gives the
//! reproduction an *execution-derived ground truth*: by running a corpus
//! function over its error paths we can observe which values it actually
//! returns and which `errno`-style side effects it actually applies, and
//! score the static profiler against that (§6.3, the libpcre experiment).

use std::collections::HashMap;

use crate::{BinAluOp, Inst, IsaError, Loc, Operand, Platform, Reg};

/// Sentinel value loaded by [`Inst::LeaPicBase`]; stores through a register
/// holding this value are module-data writes at the store's offset.
pub const PIC_BASE: i64 = 0x5000_0000;

/// How calls out of the interpreted function are satisfied.
pub trait CallEnv {
    /// Resolve a direct call to symbol-table index `sym` and produce its
    /// return value.
    ///
    /// # Errors
    ///
    /// Implementations return [`IsaError::UnresolvedCall`] when the symbol
    /// cannot be resolved.
    fn call(&mut self, sym: u32) -> Result<i64, IsaError>;

    /// Resolve an indirect call whose target value is `target`.
    ///
    /// # Errors
    ///
    /// The default implementation rejects all indirect calls.
    fn call_indirect(&mut self, target: i64) -> Result<i64, IsaError> {
        let _ = target;
        Err(IsaError::UnresolvedCall { sym: u32::MAX })
    }

    /// Execute system call `num` and produce its raw result (negative errno on
    /// failure, per the Linux convention the paper's §3.2 listing follows).
    fn syscall(&mut self, num: u32) -> i64;
}

/// A [`CallEnv`] built from closures, convenient in tests.
pub struct FnEnv<C, S>
where
    C: FnMut(u32) -> Result<i64, IsaError>,
    S: FnMut(u32) -> i64,
{
    call_fn: C,
    syscall_fn: S,
}

impl<C, S> FnEnv<C, S>
where
    C: FnMut(u32) -> Result<i64, IsaError>,
    S: FnMut(u32) -> i64,
{
    /// Creates an environment from a call resolver and a syscall handler.
    pub fn new(call_fn: C, syscall_fn: S) -> Self {
        Self { call_fn, syscall_fn }
    }
}

impl<C, S> CallEnv for FnEnv<C, S>
where
    C: FnMut(u32) -> Result<i64, IsaError>,
    S: FnMut(u32) -> i64,
{
    fn call(&mut self, sym: u32) -> Result<i64, IsaError> {
        (self.call_fn)(sym)
    }

    fn syscall(&mut self, num: u32) -> i64 {
        (self.syscall_fn)(num)
    }
}

/// An environment in which every call returns a fixed value and every syscall
/// returns another fixed value.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstEnv {
    /// Value returned by every direct and indirect call.
    pub call_result: i64,
    /// Value returned by every system call.
    pub syscall_result: i64,
}

impl CallEnv for ConstEnv {
    fn call(&mut self, _sym: u32) -> Result<i64, IsaError> {
        Ok(self.call_result)
    }

    fn call_indirect(&mut self, _target: i64) -> Result<i64, IsaError> {
        Ok(self.call_result)
    }

    fn syscall(&mut self, _num: u32) -> i64 {
        self.syscall_result
    }
}

/// One memory store observed during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEvent {
    /// Value held by the base register at the time of the store.
    pub base_value: i64,
    /// Offset encoded in the store instruction.
    pub offset: i32,
    /// Value written.
    pub value: i64,
}

impl StoreEvent {
    /// Returns the module-data offset written if the store went through the
    /// position-independent-code base, i.e. `base == PIC_BASE`.
    pub fn module_offset(&self) -> Option<u32> {
        if self.base_value == PIC_BASE && self.offset >= 0 {
            Some(self.offset as u32)
        } else {
            None
        }
    }
}

/// The observable result of interpreting one function activation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Value left in the ABI return location when `ret` executed.
    pub return_value: i64,
    /// Final values of directly-addressed TLS slots written during execution.
    pub tls_writes: HashMap<u32, i64>,
    /// Final values of directly-addressed global slots written during execution.
    pub global_writes: HashMap<u32, i64>,
    /// Every store-through-register observed, in program order.
    pub stores: Vec<StoreEvent>,
    /// Number of instructions executed.
    pub steps: u64,
}

/// Interpreter configuration.
#[derive(Debug, Clone, Copy)]
pub struct VmOptions {
    /// Maximum number of instructions executed before aborting with
    /// [`IsaError::StepLimitExceeded`].
    pub step_limit: u64,
}

impl Default for VmOptions {
    fn default() -> Self {
        Self { step_limit: 100_000 }
    }
}

/// The SimISA interpreter.
#[derive(Debug, Clone)]
pub struct Vm {
    platform: Platform,
    options: VmOptions,
}

impl Vm {
    /// Creates an interpreter for the given platform with default options.
    pub fn new(platform: Platform) -> Self {
        Self { platform, options: VmOptions::default() }
    }

    /// Creates an interpreter with explicit options.
    pub fn with_options(platform: Platform, options: VmOptions) -> Self {
        Self { platform, options }
    }

    /// The platform whose ABI governs argument and return locations.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// Interprets `body` with the given arguments, resolving calls and
    /// syscalls through `env`.
    ///
    /// # Errors
    ///
    /// Returns an error if the function jumps out of range, never returns
    /// within the step limit, falls off the end of its body, or calls a
    /// symbol the environment cannot resolve.
    pub fn run(&self, body: &[Inst], args: &[i64], env: &mut dyn CallEnv) -> Result<ExecOutcome, IsaError> {
        self.run_reference(body, args, env)
    }

    /// Compiles `body` for the fast dispatch loop under this interpreter's
    /// platform ABI.  See [`crate::DecodedBody`].
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::JumpOutOfRange`] for a static jump target outside
    /// the body.
    pub fn compile(&self, body: &[Inst]) -> Result<crate::DecodedBody, IsaError> {
        crate::DecodedBody::compile(self.platform, body)
    }

    /// Runs a pre-compiled body under this interpreter's step limit —
    /// outcome-identical to [`Vm::run`] on the source instructions.
    ///
    /// # Errors
    ///
    /// Same dynamic errors as [`Vm::run`].
    pub fn run_decoded(
        &self,
        body: &crate::DecodedBody,
        args: &[i64],
        env: &mut dyn CallEnv,
    ) -> Result<ExecOutcome, IsaError> {
        body.run(args, env, &mut crate::StepBudget::new(self.options.step_limit))
    }

    fn run_reference(&self, body: &[Inst], args: &[i64], env: &mut dyn CallEnv) -> Result<ExecOutcome, IsaError> {
        let abi = self.platform.abi();
        let mut regs = [0i64; Reg::COUNT as usize];
        let mut stack: HashMap<i32, i64> = HashMap::new();
        let mut tls: HashMap<u32, i64> = HashMap::new();
        let mut globals: HashMap<u32, i64> = HashMap::new();
        let mut stores: Vec<StoreEvent> = Vec::new();
        let mut flags: (i64, i64) = (0, 0);
        let mut pc: usize = 0;
        let mut steps: u64 = 0;

        let read = |loc: Loc,
                    regs: &[i64; Reg::COUNT as usize],
                    stack: &HashMap<i32, i64>,
                    tls: &HashMap<u32, i64>,
                    globals: &HashMap<u32, i64>|
         -> i64 {
            match loc {
                Loc::Reg(Reg(r)) => regs[r as usize % Reg::COUNT as usize],
                Loc::Stack(off) => *stack.get(&off).unwrap_or(&0),
                Loc::Arg(n) => args.get(n as usize).copied().unwrap_or(0),
                Loc::Global(off) => *globals.get(&off).unwrap_or(&0),
                Loc::Tls(off) => *tls.get(&off).unwrap_or(&0),
            }
        };

        loop {
            if steps >= self.options.step_limit {
                return Err(IsaError::StepLimitExceeded { limit: self.options.step_limit });
            }
            let Some(inst) = body.get(pc) else {
                return Err(IsaError::FellOffEnd);
            };
            steps += 1;
            let mut next_pc = pc + 1;
            match *inst {
                Inst::MovImm { dst, imm } => {
                    write_loc(dst, imm, &mut regs, &mut stack, &mut tls, &mut globals);
                }
                Inst::Mov { dst, src } => {
                    let v = read(src, &regs, &stack, &tls, &globals);
                    write_loc(dst, v, &mut regs, &mut stack, &mut tls, &mut globals);
                }
                Inst::Alu { op, dst, src } => {
                    let rhs = match src {
                        Operand::Imm(v) => v,
                        Operand::Loc(l) => read(l, &regs, &stack, &tls, &globals),
                    };
                    let lhs = read(dst, &regs, &stack, &tls, &globals);
                    let result = match op {
                        BinAluOp::Add => lhs.wrapping_add(rhs),
                        BinAluOp::Sub => lhs.wrapping_sub(rhs),
                        BinAluOp::And => lhs & rhs,
                        BinAluOp::Or => lhs | rhs,
                        BinAluOp::Xor => lhs ^ rhs,
                        BinAluOp::Mul => lhs.wrapping_mul(rhs),
                    };
                    write_loc(dst, result, &mut regs, &mut stack, &mut tls, &mut globals);
                }
                Inst::Neg { dst } => {
                    let v = read(dst, &regs, &stack, &tls, &globals);
                    write_loc(dst, v.wrapping_neg(), &mut regs, &mut stack, &mut tls, &mut globals);
                }
                Inst::Cmp { a, b } => {
                    let lhs = read(a, &regs, &stack, &tls, &globals);
                    let rhs = match b {
                        Operand::Imm(v) => v,
                        Operand::Loc(l) => read(l, &regs, &stack, &tls, &globals),
                    };
                    flags = (lhs, rhs);
                }
                Inst::Jmp { target } => {
                    next_pc = check_target(target, body.len())?;
                }
                Inst::JmpCond { cond, target } => {
                    if cond.holds(flags.0, flags.1) {
                        next_pc = check_target(target, body.len())?;
                    }
                }
                Inst::JmpIndirect { loc } => {
                    let target = read(loc, &regs, &stack, &tls, &globals);
                    next_pc = check_indirect_target(target, body.len())?;
                }
                Inst::Call { sym } => {
                    let v = env.call(sym)?;
                    write_loc(abi.return_loc(), v, &mut regs, &mut stack, &mut tls, &mut globals);
                }
                Inst::CallIndirect { loc } => {
                    let target = read(loc, &regs, &stack, &tls, &globals);
                    let v = env.call_indirect(target)?;
                    write_loc(abi.return_loc(), v, &mut regs, &mut stack, &mut tls, &mut globals);
                }
                Inst::Load { dst, base, offset } => {
                    // Loads through the PIC base read module data; anything
                    // else reads zero (the interpreter has no process image).
                    let base_v = regs[base.0 as usize % Reg::COUNT as usize];
                    let v = if base_v == PIC_BASE && offset >= 0 {
                        *globals.get(&(offset as u32)).unwrap_or(&0)
                    } else {
                        0
                    };
                    regs[dst.0 as usize % Reg::COUNT as usize] = v;
                }
                Inst::Store { base, offset, src } => {
                    let base_v = regs[base.0 as usize % Reg::COUNT as usize];
                    let value = match src {
                        Operand::Imm(v) => v,
                        Operand::Loc(l) => read(l, &regs, &stack, &tls, &globals),
                    };
                    stores.push(StoreEvent { base_value: base_v, offset, value });
                    if base_v == PIC_BASE && offset >= 0 {
                        globals.insert(offset as u32, value);
                    }
                }
                Inst::LeaPicBase { dst } => {
                    regs[dst.0 as usize % Reg::COUNT as usize] = PIC_BASE;
                }
                Inst::Syscall { num } => {
                    let v = env.syscall(num);
                    write_loc(abi.return_loc(), v, &mut regs, &mut stack, &mut tls, &mut globals);
                }
                Inst::Ret => {
                    let return_value = read(abi.return_loc(), &regs, &stack, &tls, &globals);
                    return Ok(ExecOutcome { return_value, tls_writes: tls, global_writes: globals, stores, steps });
                }
                Inst::Nop => {}
            }
            pc = next_pc;
        }
    }
}

fn check_target(target: u32, len: usize) -> Result<usize, IsaError> {
    if (target as usize) < len {
        Ok(target as usize)
    } else {
        Err(IsaError::JumpOutOfRange { target: i64::from(target), len })
    }
}

/// Validates an indirect jump target read from a location at run time.
/// Negative values are rejected explicitly — the error carries the original
/// (possibly negative) value instead of a wrapped unsigned index.
fn check_indirect_target(target: i64, len: usize) -> Result<usize, IsaError> {
    match usize::try_from(target) {
        Ok(t) if t < len => Ok(t),
        _ => Err(IsaError::JumpOutOfRange { target, len }),
    }
}

fn write_loc(
    loc: Loc,
    value: i64,
    regs: &mut [i64; Reg::COUNT as usize],
    stack: &mut HashMap<i32, i64>,
    tls: &mut HashMap<u32, i64>,
    globals: &mut HashMap<u32, i64>,
) {
    match loc {
        Loc::Reg(Reg(r)) => regs[r as usize % Reg::COUNT as usize] = value,
        Loc::Stack(off) => {
            stack.insert(off, value);
        }
        Loc::Arg(_) => {
            // Writes to argument slots are modelled as writes to the caller's
            // stack copy; they are not observable after return in SimISA.
        }
        Loc::Global(off) => {
            globals.insert(off, value);
        }
        Loc::Tls(off) => {
            tls.insert(off, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cond;

    fn abi_ret() -> Loc {
        Platform::LinuxX86.abi().return_loc()
    }

    #[test]
    fn returns_constant() {
        let body = vec![Inst::MovImm { dst: abi_ret(), imm: -1 }, Inst::Ret];
        let out = Vm::new(Platform::LinuxX86).run(&body, &[], &mut ConstEnv::default()).unwrap();
        assert_eq!(out.return_value, -1);
        assert_eq!(out.steps, 2);
    }

    #[test]
    fn branches_on_argument() {
        // if arg0 == 0 { return 0 } else { return 5 }
        let body = vec![
            Inst::Cmp { a: Loc::Arg(0), b: Operand::Imm(0) },
            Inst::JmpCond { cond: Cond::Ne, target: 4 },
            Inst::MovImm { dst: abi_ret(), imm: 0 },
            Inst::Ret,
            Inst::MovImm { dst: abi_ret(), imm: 5 },
            Inst::Ret,
        ];
        let vm = Vm::new(Platform::LinuxX86);
        assert_eq!(vm.run(&body, &[0], &mut ConstEnv::default()).unwrap().return_value, 0);
        assert_eq!(vm.run(&body, &[1], &mut ConstEnv::default()).unwrap().return_value, 5);
    }

    #[test]
    fn errno_idiom_sets_tls_via_pic_store() {
        // The §3.2 listing: syscall fails, errno = -result, return -1.
        let abi = Platform::LinuxX86.abi();
        let errno_off = abi.errno_tls_offset() as i32;
        let body = vec![
            Inst::Syscall { num: 6 },
            Inst::LeaPicBase { dst: Reg(3) },
            Inst::Mov { dst: Loc::Reg(Reg(2)), src: abi.return_loc() },
            Inst::Neg { dst: Loc::Reg(Reg(2)) },
            Inst::Store { base: Reg(3), offset: errno_off, src: Operand::Loc(Loc::Reg(Reg(2))) },
            Inst::MovImm { dst: abi.return_loc(), imm: -1 },
            Inst::Ret,
        ];
        let mut env = ConstEnv { call_result: 0, syscall_result: -9 };
        let out = Vm::new(Platform::LinuxX86).run(&body, &[], &mut env).unwrap();
        assert_eq!(out.return_value, -1);
        let module_writes: Vec<_> = out.stores.iter().filter_map(StoreEvent::module_offset).collect();
        assert_eq!(module_writes, vec![abi.errno_tls_offset()]);
        assert_eq!(out.stores[0].value, 9);
    }

    #[test]
    fn call_result_lands_in_return_loc() {
        let body = vec![Inst::Call { sym: 7 }, Inst::Ret];
        let mut env = FnEnv::new(|sym| Ok(i64::from(sym) * 10), |_| 0);
        let out = Vm::new(Platform::LinuxX86).run(&body, &[], &mut env).unwrap();
        assert_eq!(out.return_value, 70);
    }

    #[test]
    fn sparc_uses_different_return_register() {
        let abi = Platform::SolarisSparc.abi();
        let body = vec![
            Inst::MovImm { dst: Loc::Reg(Reg(0)), imm: 42 },
            Inst::MovImm { dst: abi.return_loc(), imm: -2 },
            Inst::Ret,
        ];
        let out = Vm::new(Platform::SolarisSparc).run(&body, &[], &mut ConstEnv::default()).unwrap();
        assert_eq!(out.return_value, -2);
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let body = vec![Inst::Jmp { target: 0 }];
        let vm = Vm::with_options(Platform::LinuxX86, VmOptions { step_limit: 64 });
        let err = vm.run(&body, &[], &mut ConstEnv::default()).unwrap_err();
        assert_eq!(err, IsaError::StepLimitExceeded { limit: 64 });
    }

    #[test]
    fn missing_ret_is_an_error() {
        let body = vec![Inst::Nop];
        let err = Vm::new(Platform::LinuxX86).run(&body, &[], &mut ConstEnv::default()).unwrap_err();
        assert_eq!(err, IsaError::FellOffEnd);
    }

    #[test]
    fn out_of_range_jump_is_an_error() {
        let body = vec![Inst::Jmp { target: 17 }];
        let err = Vm::new(Platform::LinuxX86).run(&body, &[], &mut ConstEnv::default()).unwrap_err();
        assert_eq!(err, IsaError::JumpOutOfRange { target: 17, len: 1 });
    }

    #[test]
    fn negative_indirect_jump_reports_the_original_value() {
        // Regression: a negative indirect target used to be cast `as u32`,
        // so the error reported the wrapped index (4294967293 for -3)
        // instead of the value actually read.
        let body = vec![
            Inst::MovImm { dst: Loc::Reg(Reg(1)), imm: -3 },
            Inst::JmpIndirect { loc: Loc::Reg(Reg(1)) },
            Inst::Ret,
        ];
        let err = Vm::new(Platform::LinuxX86).run(&body, &[], &mut ConstEnv::default()).unwrap_err();
        assert_eq!(err, IsaError::JumpOutOfRange { target: -3, len: 3 });

        // In-range indirect targets still dispatch.
        let body = vec![
            Inst::MovImm { dst: Loc::Reg(Reg(1)), imm: 3 },
            Inst::JmpIndirect { loc: Loc::Reg(Reg(1)) },
            Inst::MovImm { dst: abi_ret(), imm: 9 },
            Inst::Ret,
        ];
        let out = Vm::new(Platform::LinuxX86).run(&body, &[], &mut ConstEnv::default()).unwrap();
        assert_eq!(out.return_value, 0, "instruction 2 is skipped by the jump");
    }

    #[test]
    fn unresolved_call_propagates() {
        let body = vec![Inst::Call { sym: 3 }, Inst::Ret];
        let mut env = FnEnv::new(|sym| Err(IsaError::UnresolvedCall { sym }), |_| 0);
        let err = Vm::new(Platform::LinuxX86).run(&body, &[], &mut env).unwrap_err();
        assert_eq!(err, IsaError::UnresolvedCall { sym: 3 });
    }

    #[test]
    fn alu_operations() {
        let r = abi_ret();
        let cases: Vec<(BinAluOp, i64, i64, i64)> = vec![
            (BinAluOp::Add, 4, 3, 7),
            (BinAluOp::Sub, 4, 3, 1),
            (BinAluOp::And, 0b1100, 0b1010, 0b1000),
            (BinAluOp::Or, 0b1100, 0b1010, 0b1110),
            (BinAluOp::Xor, 0b1100, 0b1010, 0b0110),
            (BinAluOp::Mul, 6, 7, 42),
        ];
        for (op, a, b, expected) in cases {
            let body = vec![Inst::MovImm { dst: r, imm: a }, Inst::Alu { op, dst: r, src: Operand::Imm(b) }, Inst::Ret];
            let out = Vm::new(Platform::LinuxX86).run(&body, &[], &mut ConstEnv::default()).unwrap();
            assert_eq!(out.return_value, expected, "{op:?}");
        }
    }

    #[test]
    fn direct_tls_and_global_writes_are_recorded() {
        let body = vec![
            Inst::MovImm { dst: Loc::Tls(0x10), imm: 5 },
            Inst::MovImm { dst: Loc::Global(0x20), imm: 6 },
            Inst::MovImm { dst: abi_ret(), imm: 0 },
            Inst::Ret,
        ];
        let out = Vm::new(Platform::LinuxX86).run(&body, &[], &mut ConstEnv::default()).unwrap();
        assert_eq!(out.tls_writes.get(&0x10), Some(&5));
        assert_eq!(out.global_writes.get(&0x20), Some(&6));
    }
}
