use std::error::Error;
use std::fmt;

/// Errors produced while decoding or executing SimISA code.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// The byte stream ended in the middle of an instruction.
    TruncatedInstruction {
        /// Byte offset at which decoding stopped.
        offset: usize,
    },
    /// An unknown opcode byte was encountered.
    UnknownOpcode {
        /// The offending opcode.
        opcode: u8,
        /// Byte offset of the opcode.
        offset: usize,
    },
    /// A location tag byte did not name a valid location kind.
    InvalidLocation {
        /// The offending tag.
        tag: u8,
        /// Byte offset of the tag.
        offset: usize,
    },
    /// An operand tag byte did not name a valid operand kind.
    InvalidOperand {
        /// The offending tag.
        tag: u8,
        /// Byte offset of the tag.
        offset: usize,
    },
    /// The interpreter exceeded its execution step budget (likely an infinite
    /// loop in synthetic code).
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// The interpreter jumped to an instruction index outside the function.
    ///
    /// `target` is the *original* requested value: an indirect jump through a
    /// location holding a negative value reports that negative value, not a
    /// wrapped unsigned index.
    JumpOutOfRange {
        /// The requested instruction index, as read (possibly negative).
        target: i64,
        /// Number of instructions in the function.
        len: usize,
    },
    /// The interpreter reached the end of a function without a `ret`.
    FellOffEnd,
    /// A call could not be resolved by the environment.
    UnresolvedCall {
        /// The symbol index that could not be resolved.
        sym: u32,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::TruncatedInstruction { offset } => {
                write!(f, "instruction stream truncated at byte {offset}")
            }
            IsaError::UnknownOpcode { opcode, offset } => {
                write!(f, "unknown opcode {opcode:#04x} at byte {offset}")
            }
            IsaError::InvalidLocation { tag, offset } => {
                write!(f, "invalid location tag {tag:#04x} at byte {offset}")
            }
            IsaError::InvalidOperand { tag, offset } => {
                write!(f, "invalid operand tag {tag:#04x} at byte {offset}")
            }
            IsaError::StepLimitExceeded { limit } => {
                write!(f, "execution exceeded the step limit of {limit}")
            }
            IsaError::JumpOutOfRange { target, len } => {
                write!(f, "jump target {target} outside function of {len} instructions")
            }
            IsaError::FellOffEnd => write!(f, "execution fell off the end of the function"),
            IsaError::UnresolvedCall { sym } => write!(f, "call to unresolved symbol index {sym}"),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let errors = [
            IsaError::TruncatedInstruction { offset: 7 },
            IsaError::UnknownOpcode { opcode: 0xff, offset: 2 },
            IsaError::InvalidLocation { tag: 9, offset: 3 },
            IsaError::InvalidOperand { tag: 8, offset: 4 },
            IsaError::StepLimitExceeded { limit: 10 },
            IsaError::JumpOutOfRange { target: 99, len: 3 },
            IsaError::FellOffEnd,
            IsaError::UnresolvedCall { sym: 5 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
