//! # lfi-isa — SimISA, the synthetic instruction set used by the LFI reproduction
//!
//! The original LFI profiler ([Marinescu & Candea, DSN 2009]) disassembles
//! real x86 / SPARC shared libraries.  This reproduction replaces the concrete
//! machine ISA with **SimISA**, a compact register machine that preserves every
//! property the LFI analyses rely on:
//!
//! * values live in *locations* ([`Loc`]): registers, stack slots, argument
//!   slots, globals and thread-local storage;
//! * platform ABIs ([`Abi`], [`Platform`]) differ in which location carries the
//!   return value and how position-independent code obtains its base address;
//! * control flow is expressed with conditional/unconditional jumps, direct and
//!   indirect calls, `syscall` and `ret`, so control-flow-graph recovery and
//!   reverse constant propagation work exactly as described in the paper;
//! * instructions have a binary encoding ([`encode`]) so the profiler operates
//!   on *binaries*, not on a convenient in-memory IR.
//!
//! The crate also ships a small interpreter ([`vm`]) used to derive execution
//! ground truth for the profiler-accuracy experiments (§6.3 of the paper).
//!
//! ```
//! use lfi_isa::{Inst, Loc, Operand, Platform, Reg};
//!
//! let abi = Platform::LinuxX86.abi();
//! // A function that returns the constant -1 in the platform return location.
//! let body = vec![Inst::MovImm { dst: abi.return_loc(), imm: -1 }, Inst::Ret];
//! let bytes = lfi_isa::encode::encode_function(&body);
//! let decoded = lfi_isa::encode::decode_function(&bytes).unwrap();
//! assert_eq!(body, decoded);
//! assert_eq!(abi.return_loc(), Loc::Reg(Reg(0)));
//! let _ = Operand::Imm(-1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decoded;
pub mod encode;
mod error;
mod inst;
mod loc;
mod platform;
mod reg;
pub mod vm;

pub use decoded::{DecodedBody, ExecutionController, RunForever, StepBudget};
pub use error::IsaError;
pub use inst::{BinAluOp, Cond, Inst, Operand};
pub use loc::Loc;
pub use platform::{Abi, Platform};
pub use reg::Reg;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Inst>();
        assert_send_sync::<Loc>();
        assert_send_sync::<Platform>();
        assert_send_sync::<Abi>();
        assert_send_sync::<IsaError>();
    }
}
