use std::fmt;

use serde::{Deserialize, Serialize};

/// A general-purpose register of the SimISA machine.
///
/// SimISA exposes 16 general-purpose registers, `r0` through `r15`.  Platform
/// ABIs assign roles to registers (return value, argument passing, PIC base);
/// see [`crate::Abi`].
///
/// ```
/// use lfi_isa::Reg;
/// assert_eq!(Reg(3).to_string(), "r3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// Number of general-purpose registers in the machine.
    pub const COUNT: u8 = 16;

    /// Returns true if the register index is within the architectural range.
    pub fn is_valid(self) -> bool {
        self.0 < Self::COUNT
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u8> for Reg {
    fn from(value: u8) -> Self {
        Reg(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_index() {
        for i in 0..Reg::COUNT {
            assert_eq!(Reg(i).to_string(), format!("r{i}"));
        }
    }

    #[test]
    fn validity_bound() {
        assert!(Reg(0).is_valid());
        assert!(Reg(15).is_valid());
        assert!(!Reg(16).is_valid());
        assert!(!Reg(255).is_valid());
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Reg(1) < Reg(2));
        assert_eq!(Reg::from(7u8), Reg(7));
    }
}
