//! The [`Workload`] trait: the application under test as a first-class,
//! reusable object (§5's start script + workload pair), plus the
//! [`FnWorkload`] closure adapter and the [`WorkloadRegistry`] for named
//! lookup.
//!
//! The paper's controller drives "the target application" through a
//! developer-provided start script and workload.  Before this trait existed,
//! every campaign call site re-invented that pair as two bare closures; a
//! `Workload` packages the pair (and its setup/teardown discipline) under a
//! stable name so examples, experiments, app drivers and exploration engines
//! can share one implementation.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use lfi_runtime::{ExitStatus, PooledProcess, Process};

use crate::TestCase;

/// A named, reusable application-under-test: how to build a fresh process
/// for a test case and how to exercise it.
///
/// Implementations are shared across campaign worker threads (`Send + Sync`,
/// `&self` receivers), so per-case state must live in the [`Process`] the
/// [`Workload::setup`] call returns — typically captured by the closures of
/// the `NativeLibrary` functions loaded into it.  [`Campaign::start`] calls
/// the hooks in this order, once per scheduled case:
///
/// 1. [`Workload::setup`] — build the fresh process (the start script);
///    the campaign then preloads the synthesized interceptor.
/// 2. [`Workload::health_check`] — veto the case (reported as skipped)
///    when the prepared process is unusable.
/// 3. [`Workload::run`] — exercise the process; the returned status is the
///    case's outcome.
/// 4. [`Workload::teardown`] — release external resources; runs after the
///    injection log has been snapshotted, so calls made here never pollute
///    the case's log.
///
/// [`Campaign::start`]: crate::Campaign::start
pub trait Workload: Send + Sync {
    /// Stable, human-readable workload name (registry key, report label).
    fn name(&self) -> &str;

    /// Builds (or checks out of a `ProcessArena`) a process for one test
    /// case — the paper's start script.  Called once per case, possibly
    /// concurrently for different cases.  Workloads without an arena return
    /// `process.into()`; arena-backed workloads return the checkout guard,
    /// and the campaign's drop of the guard restores the process to the
    /// pool after the case.
    fn setup(&self, case: &TestCase) -> PooledProcess;

    /// Exercises the prepared process and reports how the run ended.
    fn run(&self, process: &mut Process) -> ExitStatus;

    /// Releases per-case resources after the run.  Called after the
    /// injection log is snapshotted: library calls made here are dispatched
    /// normally but never appear in the case's [`TestLog`](crate::TestLog).
    fn teardown(&self, _process: &mut Process) {}

    /// Whether the prepared process is fit to run.  Returning `false` skips
    /// the case (a `Skipped` event with
    /// [`SkipReason::Unhealthy`](crate::SkipReason::Unhealthy)) without
    /// invoking [`Workload::run`] or any observer hook.  Prefer passive
    /// checks (e.g. symbol resolution): library *calls* made here are
    /// intercepted and would shift the case's call ordinals.
    fn health_check(&self, _process: &mut Process) -> bool {
        true
    }
}

/// Adapter that turns the classic `(setup, run)` closure pair into a
/// [`Workload`], so pre-trait call sites keep working:
///
/// ```
/// use lfi_controller::{Campaign, FnWorkload, TestCase};
/// use lfi_runtime::{ExitStatus, NativeLibrary, Process};
/// use lfi_scenario::Plan;
///
/// let workload = FnWorkload::new(
///     "echo",
///     || {
///         let mut process = Process::new();
///         process.load(NativeLibrary::builder("libc.so.6").function("read", |ctx| ctx.arg(2)).build());
///         process
///     },
///     |process| match process.call("read", &[3, 0, 8]) {
///         Ok(n) if n >= 0 => ExitStatus::Exited(0),
///         _ => ExitStatus::Exited(1),
///     },
/// );
/// let report = Campaign::new().case(TestCase::new("baseline", Plan::new())).start(workload).into_report();
/// assert_eq!(report.outcomes.len(), 1);
/// ```
pub struct FnWorkload<S, R> {
    name: String,
    setup: S,
    run: R,
}

impl<S, R> FnWorkload<S, R>
where
    S: Fn() -> Process + Send + Sync,
    R: Fn(&mut Process) -> ExitStatus + Send + Sync,
{
    /// Wraps a `(setup, run)` closure pair under a name.
    pub fn new(name: impl Into<String>, setup: S, run: R) -> Self {
        Self { name: name.into(), setup, run }
    }
}

impl<S, R> FnWorkload<S, R>
where
    S: Fn() -> Process + Send + Sync + 'static,
    R: Fn(&mut Process) -> ExitStatus + Send + Sync + 'static,
{
    /// Wraps a `(setup, run)` closure pair straight into the shared handle
    /// the streaming APIs take.
    pub fn shared(name: impl Into<String>, setup: S, run: R) -> Arc<dyn Workload> {
        Arc::new(Self::new(name, setup, run))
    }
}

impl<S, R> Workload for FnWorkload<S, R>
where
    S: Fn() -> Process + Send + Sync,
    R: Fn(&mut Process) -> ExitStatus + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn setup(&self, _case: &TestCase) -> PooledProcess {
        (self.setup)().into()
    }

    fn run(&self, process: &mut Process) -> ExitStatus {
        (self.run)(process)
    }
}

impl<S, R> fmt::Debug for FnWorkload<S, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnWorkload").field("name", &self.name).finish()
    }
}

/// A name-keyed collection of shared [`Workload`]s, so examples and
/// experiments can look applications up by name instead of re-constructing
/// them.  Iteration order is the sorted name order (deterministic).
#[derive(Clone, Default)]
pub struct WorkloadRegistry {
    entries: BTreeMap<String, Arc<dyn Workload>>,
}

impl WorkloadRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a workload under its own [`Workload::name`], returning the
    /// workload it displaced, if any (last registration wins).
    pub fn register(&mut self, workload: impl Workload + 'static) -> Option<Arc<dyn Workload>> {
        self.register_arc(Arc::new(workload))
    }

    /// Registers an already-shared workload under its own name.
    pub fn register_arc(&mut self, workload: Arc<dyn Workload>) -> Option<Arc<dyn Workload>> {
        self.entries.insert(workload.name().to_owned(), workload)
    }

    /// Looks a workload up by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Workload>> {
        self.entries.get(name).cloned()
    }

    /// The registered names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Number of registered workloads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Debug for WorkloadRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkloadRegistry")
            .field("names", &self.entries.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_runtime::NativeLibrary;
    use lfi_scenario::Plan;

    fn echo_workload(
    ) -> FnWorkload<impl Fn() -> Process + Send + Sync, impl Fn(&mut Process) -> ExitStatus + Send + Sync> {
        FnWorkload::new(
            "echo",
            || {
                let mut process = Process::new();
                process.load(NativeLibrary::builder("libc.so.6").function("read", |ctx| ctx.arg(2)).build());
                process
            },
            |process| match process.call("read", &[3, 0, 8]) {
                Ok(n) if n >= 0 => ExitStatus::Exited(0),
                _ => ExitStatus::Exited(1),
            },
        )
    }

    #[test]
    fn fn_workload_adapts_a_closure_pair() {
        let workload = echo_workload();
        assert_eq!(workload.name(), "echo");
        let case = TestCase::new("baseline", Plan::new());
        let mut process = workload.setup(&case);
        assert!(workload.health_check(&mut process), "default health check accepts");
        assert_eq!(workload.run(&mut process), ExitStatus::Exited(0));
        workload.teardown(&mut process); // default: a no-op
        assert!(format!("{workload:?}").contains("echo"));
    }

    #[test]
    fn registry_looks_workloads_up_by_name() {
        let mut registry = WorkloadRegistry::new();
        assert!(registry.is_empty());
        assert!(registry.register(echo_workload()).is_none());
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.names().collect::<Vec<_>>(), vec!["echo"]);
        assert!(registry.get("echo").is_some());
        assert!(registry.get("missing").is_none());
        // Last registration wins; the displaced workload is returned.
        let displaced = registry.register(echo_workload());
        assert!(displaced.is_some_and(|w| w.name() == "echo"));
        assert_eq!(registry.len(), 1);
        assert!(format!("{registry:?}").contains("echo"));
        let clone = registry.clone();
        assert_eq!(clone.len(), registry.len());
    }

    #[test]
    fn registry_races_resolve_to_last_registration_wins() {
        // The registry itself needs `&mut` — concurrent use goes through a
        // lock, and under contention the usual insert contract must hold:
        // whichever registration lands last owns the name, every loser is
        // handed back exactly once, and `names()` stays sorted.
        use std::sync::Mutex;

        fn tagged(
            name: String,
            code: i32,
        ) -> FnWorkload<impl Fn() -> Process + Send + Sync, impl Fn(&mut Process) -> ExitStatus + Send + Sync> {
            FnWorkload::new(name, Process::new, move |_: &mut Process| ExitStatus::Exited(code))
        }

        let registry = Mutex::new(WorkloadRegistry::new());
        let displaced = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for code in 0..8 {
                let (registry, displaced) = (&registry, &displaced);
                scope.spawn(move || {
                    // All eight threads fight over the same name...
                    if let Some(old) = registry.lock().unwrap().register(tagged("contended".into(), code)) {
                        displaced.lock().unwrap().push(old);
                    }
                    // ...and each also claims a private one.
                    assert!(registry.lock().unwrap().register(tagged(format!("w{code}"), code)).is_none());
                });
            }
        });
        let registry = registry.into_inner().unwrap();
        let displaced = displaced.into_inner().unwrap();

        // One survivor + seven displaced — nothing lost, nothing duplicated.
        assert_eq!(displaced.len(), 7);
        let survivor = registry.get("contended").expect("the name stays claimed");
        let mut codes: Vec<i64> = displaced
            .iter()
            .chain(std::iter::once(&survivor))
            .map(|w| {
                let case = TestCase::new("probe", Plan::new());
                let mut process = w.setup(&case);
                match w.run(&mut process) {
                    ExitStatus::Exited(code) => i64::from(code),
                    other => panic!("unexpected status {other:?}"),
                }
            })
            .collect();
        codes.sort_unstable();
        assert_eq!(codes, (0..8).collect::<Vec<i64>>());

        // Deterministic, sorted iteration regardless of registration order.
        assert_eq!(registry.len(), 9);
        let names: Vec<&str> = registry.names().collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(names, vec!["contended", "w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"]);
    }
}
