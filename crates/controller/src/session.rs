//! The streaming campaign session: [`Campaign::start`] returns a
//! [`CampaignRun`] — an iterator of [`CaseEvent`]s backed by a bounded
//! channel — instead of blocking until every case has finished.
//!
//! [`Campaign::start`]: crate::Campaign::start

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::{CampaignObserver, CampaignReport, Injector, TestCase, TestOutcome, Workload};

/// One incremental event from a running campaign session.
///
/// `index` is the case's position in the scheduled case list (the list the
/// campaign was built with, truncated by `ExecutionPolicy::max_cases`), so
/// events of concurrent cases can be correlated.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseEvent {
    /// A worker claimed the case and is about to set it up.
    Started {
        /// Position in the scheduled case list.
        index: usize,
        /// The test case's name.
        name: String,
    },
    /// One injection performed during the case.  Injection events are
    /// reported *after* the case's workload finishes (the log is drained
    /// post-hoc, exactly like the [`CampaignObserver::on_injection`] hook),
    /// in log order, immediately before the case's `Outcome` event.
    Injection {
        /// Position in the scheduled case list.
        index: usize,
        /// The recorded injection.
        record: crate::InjectionRecord,
    },
    /// The case finished; this is the last event the case emits.
    Outcome {
        /// Position in the scheduled case list.
        index: usize,
        /// The case's full outcome (status, log, replay script).
        outcome: TestOutcome,
    },
    /// The case was scheduled but never executed.
    Skipped {
        /// Position in the scheduled case list.
        index: usize,
        /// The test case's name.
        name: String,
        /// Why the case never ran.
        reason: SkipReason,
    },
}

impl CaseEvent {
    /// The scheduled-case index this event belongs to.
    pub fn index(&self) -> usize {
        match self {
            CaseEvent::Started { index, .. }
            | CaseEvent::Injection { index, .. }
            | CaseEvent::Outcome { index, .. }
            | CaseEvent::Skipped { index, .. } => *index,
        }
    }
}

/// Why a scheduled case never executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// [`CancelHandle::cancel`] stopped the run (or the session was dropped
    /// mid-stream).
    Cancelled,
    /// `ExecutionPolicy::stop_on_first_crash` halted the run after an
    /// earlier case crashed.
    CrashHalt,
    /// The campaign-wide injection budget was exhausted.
    BudgetExhausted,
    /// The workload's [`Workload::health_check`] vetoed the prepared
    /// process.
    Unhealthy,
}

// Stop reasons in the shared atomic (0 = still running).
const REASON_NONE: u8 = 0;
const REASON_CANCELLED: u8 = 1;
const REASON_CRASH: u8 = 2;
const REASON_BUDGET: u8 = 3;

// Per-case scheduling states.
const STATE_PENDING: u8 = 0;
const STATE_RUNNING: u8 = 1;
const STATE_DONE: u8 = 2;
const STATE_SKIPPED: u8 = 3;

/// A clonable handle that cancels a [`CampaignRun`]: no further case is
/// claimed, cases already in flight finish and are reported, and every
/// never-executed case surfaces as a `Skipped` event (and in
/// [`CampaignReport::cases_skipped`]).
#[derive(Clone)]
pub struct CancelHandle {
    shared: Arc<RunShared>,
}

impl CancelHandle {
    /// Requests cancellation.  Takes effect at the next case boundary on
    /// every worker.
    ///
    /// **Idempotency contract** (services that cancel a run from several
    /// paths — a user request, a crash-halt policy, a lease expiry — rely on
    /// this): `cancel` may be called any number of times, from any thread,
    /// at any point in the run's life.  Repeated calls are no-ops — the
    /// first stop reason to arrive wins, and no additional `Skipped` events
    /// or skip counts are produced by later calls.  Calling `cancel` after
    /// the run has drained (or after [`CampaignRun::into_report`] consumed
    /// it) is equally a no-op: the handle only flips a shared atomic, so a
    /// late cancel can never panic, double-count a skip tail, or disturb the
    /// already-produced report.
    pub fn cancel(&self) {
        self.shared.halt(REASON_CANCELLED);
    }

    /// True once the run is stopping (for any reason, not only
    /// cancellation).
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for CancelHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelHandle").field("stopping", &self.is_stopping()).finish()
    }
}

/// Live progress counters of a [`CampaignRun`], read from shared atomics —
/// safe to poll from any thread while the run streams.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunProgress {
    /// Cases scheduled (after `max_cases` truncation).
    pub cases: usize,
    /// Cases a worker has claimed so far.
    pub started: usize,
    /// Cases that ran to an outcome.
    pub finished: usize,
    /// Cases skipped (health-check vetoes plus never-claimed cases counted
    /// once the stream drains).
    pub skipped: usize,
    /// Finished cases whose workload crashed.
    pub crashes: usize,
    /// Injections performed across all finished cases.
    pub injections: usize,
}

/// The five execution counters of a run as one plain value — what a status
/// RPC or a progress line actually wants, without the [`RunProgress::cases`]
/// denominator (which is configuration, not progress) and without
/// hand-assembling five atomic loads at every call site.  Produced by
/// [`RunProgress::snapshot`] / [`CampaignRun::snapshot`]; aggregators (like
/// the `lfi-fabric` job service) fold per-lease runs into one of these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Cases a worker has claimed so far.
    pub started: usize,
    /// Cases that ran to an outcome.
    pub finished: usize,
    /// Cases skipped (health-check vetoes plus never-claimed cases counted
    /// once the stream drains).
    pub skipped: usize,
    /// Finished cases whose workload crashed.
    pub crashes: usize,
    /// Injections performed across all finished cases.
    pub injections: usize,
}

impl RunProgress {
    /// The execution counters as a plain [`ProgressSnapshot`].
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            started: self.started,
            finished: self.finished,
            skipped: self.skipped,
            crashes: self.crashes,
            injections: self.injections,
        }
    }
}

/// State shared between the session handle, its workers and cancel handles.
struct RunShared {
    cases: Vec<TestCase>,
    observers: Vec<Arc<dyn CampaignObserver>>,
    stop_on_first_crash: bool,
    capture_calls: bool,
    budget: Option<Arc<AtomicUsize>>,
    next: AtomicUsize,
    stop: AtomicBool,
    stop_reason: AtomicU8,
    states: Vec<AtomicU8>,
    started: AtomicUsize,
    finished: AtomicUsize,
    skipped: AtomicUsize,
    crashes: AtomicUsize,
    injections: AtomicUsize,
}

impl RunShared {
    /// Flags the run as stopping; the first reason to arrive wins (it labels
    /// the synthesized `Skipped` events).
    fn halt(&self, reason: u8) {
        let _ = self
            .stop_reason
            .compare_exchange(REASON_NONE, reason, Ordering::AcqRel, Ordering::Acquire);
        self.stop.store(true, Ordering::Release);
    }

    fn skip_reason(&self) -> SkipReason {
        match self.stop_reason.load(Ordering::Acquire) {
            REASON_CRASH => SkipReason::CrashHalt,
            REASON_BUDGET => SkipReason::BudgetExhausted,
            _ => SkipReason::Cancelled,
        }
    }
}

/// Configuration handed from the [`Campaign`](crate::Campaign) builder to
/// [`CampaignRun::launch`].
pub(crate) struct RunConfig {
    pub cases: Vec<TestCase>,
    pub observers: Vec<Arc<dyn CampaignObserver>>,
    pub stop_on_first_crash: bool,
    pub capture_calls: bool,
    pub budget: Option<Arc<AtomicUsize>>,
    pub workers: usize,
}

/// A running campaign session: iterate it for incremental [`CaseEvent`]s,
/// poll [`CampaignRun::progress`], cancel through a
/// [`CampaignRun::cancel_handle`], and collapse the remainder into a
/// [`CampaignReport`] with [`CampaignRun::into_report`].
///
/// # Event ordering contract
///
/// * Every *executed* case emits `Started`, then its `Injection` events (in
///   log order, reported after the workload finishes), then exactly one
///   `Outcome`.
/// * A case vetoed by [`Workload::health_check`] emits `Started` then
///   `Skipped` (reason [`SkipReason::Unhealthy`]) — no observer hooks fire.
/// * Cases never claimed before the run stopped emit a single `Skipped`
///   event each; these are delivered after every worker has drained, in
///   ascending case order.
/// * With `parallelism(1)` the whole event sequence is deterministic: for
///   fixed-seed plans and a deterministic workload, two runs of the same
///   campaign produce identical event streams (including under
///   `stop_on_first_crash`).  With `parallelism(n)` the per-case
///   subsequences above still hold, but events of different cases
///   interleave in completion order.
///
/// # Cancellation contract
///
/// [`CancelHandle::cancel`] (or dropping the run) prevents workers from
/// claiming further cases; in-flight cases finish and are reported.  Events
/// already queued are still delivered to an iterator, and the final report
/// accounts for every scheduled case: `outcomes.len() + cases_skipped ==
/// scheduled cases`.  The event channel is bounded, so a slow consumer
/// paces the workers instead of buffering unboundedly.
///
/// # Control-plane contract
///
/// Closed-loop controllers (the `lfi-rules` engine) feed decisions back
/// into a running campaign.  Two attachment points exist, with different
/// guarantees:
///
/// * **Observer side (worker thread, deterministic).**  A
///   [`CampaignObserver`] sees each executed case's hooks *synchronously on
///   the worker thread* and can stop the run via
///   [`CampaignObserver::should_halt`], which is honoured before the case's
///   events ship.  Because workers run ahead of the stream consumer (up to
///   the channel bound), this is the only attachment point where a halt
///   decision is deterministic at `parallelism(1)`: the halt lands before
///   the next case is claimed, so fixed-seed serial reruns halt after the
///   identical case and a rule engine evaluated in these hooks produces a
///   byte-identical decision log.
/// * **Consumer side (event stream, racy by design).**  A consumer
///   iterating the run may call [`CancelHandle::cancel`] in response to an
///   event, but the workers have typically run ahead by then: which cases
///   were already claimed — and therefore still finish — depends on
///   scheduling, even at `parallelism(1)`.  Consumer-side control is
///   appropriate for coarse interventions (budget overruns, operator
///   stops), not for decision streams that must replay.
///
/// Action delivery is **at most once per event**: an observer hook fires
/// exactly once per executed case event, a skipped case fires no hooks, and
/// a halted run delivers no further `Started` events — so a controller
/// keyed on the event sequence can never double-apply a decision.
/// Cancellation (either side) composes with the ordering contract above:
/// the final report still accounts for every scheduled case, and
/// [`CampaignReport::progress`] carries the authoritative execution
/// counters even when the consumer stopped reading before the stream
/// drained.
pub struct CampaignRun {
    shared: Arc<RunShared>,
    receiver: Option<Receiver<Vec<CaseEvent>>>,
    workers: Vec<JoinHandle<()>>,
    slots: Vec<Option<TestOutcome>>,
    skipped: usize,
    pending: VecDeque<CaseEvent>,
}

impl CampaignRun {
    /// Spawns the worker pool and returns the streaming session handle.
    pub(crate) fn launch(config: RunConfig, workload: Arc<dyn Workload>) -> CampaignRun {
        let case_count = config.cases.len();
        let shared = Arc::new(RunShared {
            states: (0..case_count).map(|_| AtomicU8::new(STATE_PENDING)).collect(),
            cases: config.cases,
            observers: config.observers,
            stop_on_first_crash: config.stop_on_first_crash,
            capture_calls: config.capture_calls,
            budget: config.budget,
            next: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            stop_reason: AtomicU8::new(REASON_NONE),
            started: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            skipped: AtomicUsize::new(0),
            crashes: AtomicUsize::new(0),
            injections: AtomicUsize::new(0),
        });
        // Each message is one case's burst of events (`Started` alone, then
        // the post-run injections + outcome together), so the per-case
        // channel handoffs stay constant however chatty the injection log
        // is.  The bound paces producers against a slow consumer without
        // ever deadlocking a worker against its own case's events.
        let (sender, receiver) = std::sync::mpsc::sync_channel((config.workers * 4).max(16));
        let workers = (0..config.workers)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                let workload = Arc::clone(&workload);
                let sender = sender.clone();
                std::thread::Builder::new()
                    .name(format!("lfi-campaign-{worker}"))
                    .spawn(move || worker_loop(&shared, workload.as_ref(), &sender))
                    .expect("campaign worker thread spawns")
            })
            .collect();
        drop(sender);
        CampaignRun {
            shared,
            receiver: Some(receiver),
            workers,
            slots: (0..case_count).map(|_| None).collect(),
            skipped: 0,
            pending: VecDeque::new(),
        }
    }

    /// A handle that cancels the run from anywhere (clonable, sendable).
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle { shared: Arc::clone(&self.shared) }
    }

    /// Live progress counters (readable while the run streams).
    pub fn progress(&self) -> RunProgress {
        RunProgress {
            cases: self.shared.cases.len(),
            started: self.shared.started.load(Ordering::Acquire),
            finished: self.shared.finished.load(Ordering::Acquire),
            skipped: self.shared.skipped.load(Ordering::Acquire),
            crashes: self.shared.crashes.load(Ordering::Acquire),
            injections: self.shared.injections.load(Ordering::Acquire),
        }
    }

    /// The execution counters as one plain value — shorthand for
    /// `self.progress().snapshot()`.
    pub fn snapshot(&self) -> ProgressSnapshot {
        self.progress().snapshot()
    }

    /// Number of scheduled cases (after `max_cases` truncation).
    pub fn case_count(&self) -> usize {
        self.shared.cases.len()
    }

    /// Drains every remaining event and collapses the session into the
    /// blocking report: outcomes in case order plus the skipped-case count.
    /// Undelivered events are absorbed by value — the blocking wrappers
    /// never pay the retain-and-yield clone the iterator path needs.
    ///
    /// # Panics
    ///
    /// Re-raises a worker thread's panic (i.e. a panicking
    /// [`Workload`] hook), like the pre-session blocking driver did.
    pub fn into_report(mut self) -> CampaignReport {
        while let Some(event) = self.pending.pop_front() {
            self.absorb_owned(event);
        }
        if let Some(receiver) = self.receiver.take() {
            for burst in receiver.iter() {
                for event in burst {
                    self.absorb_owned(event);
                }
            }
            self.finish();
            while let Some(event) = self.pending.pop_front() {
                self.absorb_owned(event);
            }
        }
        let progress = self.progress().snapshot();
        CampaignReport {
            outcomes: std::mem::take(&mut self.slots).into_iter().flatten().collect(),
            cases_skipped: self.skipped,
            progress,
        }
    }

    /// Folds a delivered event into the session-side report state (the
    /// iterator path, which must also yield the event to the consumer).
    fn absorb(&mut self, event: &CaseEvent) {
        match event {
            CaseEvent::Outcome { index, outcome } => self.slots[*index] = Some(outcome.clone()),
            CaseEvent::Skipped { .. } => self.skipped += 1,
            _ => {}
        }
    }

    /// [`CampaignRun::absorb`] by value: outcomes move into their slots.
    fn absorb_owned(&mut self, event: CaseEvent) {
        match event {
            CaseEvent::Outcome { index, outcome } => self.slots[index] = Some(outcome),
            CaseEvent::Skipped { .. } => self.skipped += 1,
            _ => {}
        }
    }

    /// Joins the drained workers — re-raising the first worker panic, so a
    /// panicking [`Workload`] hook surfaces to the caller instead of
    /// silently truncating the report — and synthesizes `Skipped` events
    /// for every case that was never claimed, in ascending case order.
    fn finish(&mut self) {
        for handle in self.workers.drain(..) {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
        let reason = self.shared.skip_reason();
        for (index, state) in self.shared.states.iter().enumerate() {
            if state.load(Ordering::Acquire) == STATE_PENDING {
                self.shared.skipped.fetch_add(1, Ordering::AcqRel);
                self.pending.push_back(CaseEvent::Skipped {
                    index,
                    name: self.shared.cases[index].name.clone(),
                    reason,
                });
            }
        }
    }
}

impl Iterator for CampaignRun {
    type Item = CaseEvent;

    fn next(&mut self) -> Option<CaseEvent> {
        while self.pending.is_empty() {
            let Some(receiver) = &self.receiver else { break };
            match receiver.recv() {
                Ok(burst) => self.pending.extend(burst),
                Err(_) => {
                    // Every worker dropped its sender: the run is complete.
                    self.receiver = None;
                    self.finish();
                }
            }
        }
        let event = self.pending.pop_front();
        if let Some(event) = &event {
            self.absorb(event);
        }
        event
    }
}

impl Drop for CampaignRun {
    fn drop(&mut self) {
        // Dropping mid-stream is a cancellation: stop claiming, unblock any
        // worker parked on the bounded channel, and reap the threads.  A
        // worker panic still surfaces (like `std::thread::scope`) unless
        // this drop is itself part of a panic unwind.
        self.shared.halt(REASON_CANCELLED);
        self.receiver = None;
        for handle in self.workers.drain(..) {
            if let Err(payload) = handle.join() {
                if !std::thread::panicking() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

impl std::fmt::Debug for CampaignRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignRun")
            .field("cases", &self.shared.cases.len())
            .field("progress", &self.progress())
            .finish()
    }
}

/// Delivers one case's burst of events, blocking while the bounded channel
/// is full (this is the backpressure that lets a consumer pace the
/// workers).  Returns `false` when the receiver is gone (the session was
/// dropped) — the worker should wind down.  Dropping the receiver wakes
/// parked senders, so a dropped session never wedges its workers.
fn deliver(shared: &RunShared, sender: &SyncSender<Vec<CaseEvent>>, burst: Vec<CaseEvent>) -> bool {
    if sender.send(burst).is_err() {
        shared.halt(REASON_CANCELLED);
        return false;
    }
    true
}

/// The worker loop: claim cases, execute them through the workload, stream
/// events.
fn worker_loop(shared: &RunShared, workload: &dyn Workload, sender: &SyncSender<Vec<CaseEvent>>) {
    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let index = shared.next.fetch_add(1, Ordering::Relaxed);
        let Some(case) = shared.cases.get(index) else { break };
        shared.states[index].store(STATE_RUNNING, Ordering::Release);
        shared.started.fetch_add(1, Ordering::AcqRel);
        if !deliver(shared, sender, vec![CaseEvent::Started { index, name: case.name.clone() }]) {
            break;
        }
        if !execute_case(shared, workload, sender, index, case) {
            break;
        }
    }
}

/// Executes one claimed case end to end and streams its events.  Returns
/// `false` when the event channel is gone.
fn execute_case(
    shared: &RunShared,
    workload: &dyn Workload,
    sender: &SyncSender<Vec<CaseEvent>>,
    index: usize,
    case: &TestCase,
) -> bool {
    let mut process = workload.setup(case);
    let injector = Injector::with_budget(case.plan.clone(), shared.budget.clone());
    process.preload(injector.synthesize_interceptor());
    if shared.capture_calls {
        process.set_call_log_enabled(true);
    }
    if !workload.health_check(&mut process) {
        shared.states[index].store(STATE_SKIPPED, Ordering::Release);
        shared.skipped.fetch_add(1, Ordering::AcqRel);
        return deliver(
            shared,
            sender,
            vec![CaseEvent::Skipped { index, name: case.name.clone(), reason: SkipReason::Unhealthy }],
        );
    }
    for observer in &shared.observers {
        observer.on_test_start(case);
    }
    let status = workload.run(&mut process);
    // The dropped counter must be read before the drain resets it.
    let calls_dropped = if shared.capture_calls { process.state().call_log_dropped() } else { 0 };
    let calls = if shared.capture_calls { process.drain_call_log() } else { Vec::new() };
    let log = injector.log();
    // Teardown runs after the log snapshot, so its library calls never
    // pollute the case's record.
    workload.teardown(&mut process);
    for observer in &shared.observers {
        for record in &log.injections {
            observer.on_injection(case, record);
        }
    }
    let replay = log.replay_plan();
    let injections = log.injection_count();
    let outcome = TestOutcome { name: case.name.clone(), status, log, replay, calls, calls_dropped };
    for observer in &shared.observers {
        observer.on_outcome(&outcome);
    }
    let crashed = outcome.status.is_crash();
    let observer_halt = shared.observers.iter().any(|observer| observer.should_halt(&outcome));
    shared.injections.fetch_add(injections, Ordering::AcqRel);
    if crashed {
        shared.crashes.fetch_add(1, Ordering::AcqRel);
    }
    shared.states[index].store(STATE_DONE, Ordering::Release);
    shared.finished.fetch_add(1, Ordering::AcqRel);
    // Stop decisions happen before the events ship, so with one worker no
    // further case can slip in ahead of the halt (deterministic streams).
    if shared.stop_on_first_crash && crashed {
        shared.halt(REASON_CRASH);
    }
    if observer_halt {
        shared.halt(REASON_CANCELLED);
    }
    if shared.budget.as_ref().is_some_and(|pool| pool.load(Ordering::Acquire) == 0) {
        shared.halt(REASON_BUDGET);
    }
    let mut burst: Vec<CaseEvent> = Vec::with_capacity(outcome.log.injections.len() + 1);
    for record in &outcome.log.injections {
        burst.push(CaseEvent::Injection { index, record: record.clone() });
    }
    burst.push(CaseEvent::Outcome { index, outcome });
    deliver(shared, sender, burst)
}
