//! The campaign driver: run a workload under a set of fault scenarios and
//! collect per-test-case outcomes, logs and replay scripts (§5, §5.2).

use std::fmt;

use lfi_runtime::{ExitStatus, Process};
use lfi_scenario::Plan;

use crate::{Injector, TestLog};

/// One fault-injection test case: a name and the scenario to apply.
#[derive(Debug, Clone, PartialEq)]
pub struct TestCase {
    /// Human-readable test-case name (appears in the report).
    pub name: String,
    /// The fault scenario to drive.
    pub plan: Plan,
}

impl TestCase {
    /// Creates a test case.
    pub fn new(name: impl Into<String>, plan: Plan) -> Self {
        Self { name: name.into(), plan }
    }
}

/// The outcome of one test case.
#[derive(Debug, Clone, PartialEq)]
pub struct TestOutcome {
    /// Test-case name.
    pub name: String,
    /// How the workload run ended.
    pub status: ExitStatus,
    /// The injection log.
    pub log: TestLog,
    /// The replay script distilled from the log.
    pub replay: Plan,
}

impl TestOutcome {
    /// Number of injections performed during the run.
    pub fn injection_count(&self) -> usize {
        self.log.injection_count()
    }
}

/// The report produced by a campaign: one outcome per test case.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignReport {
    /// Outcomes, in test-case order.
    pub outcomes: Vec<TestOutcome>,
}

impl CampaignReport {
    /// Outcomes whose workload crashed with a signal — the report entries the
    /// paper says "can pinpoint bugs or weak spots in the target software".
    pub fn crashes(&self) -> impl Iterator<Item = &TestOutcome> {
        self.outcomes.iter().filter(|o| o.status.is_crash())
    }

    /// Outcomes whose workload exited unsuccessfully but did not crash.
    pub fn failures(&self) -> impl Iterator<Item = &TestOutcome> {
        self.outcomes.iter().filter(|o| !o.status.is_crash() && !o.status.is_success())
    }

    /// Total number of injections across the campaign.
    pub fn total_injections(&self) -> usize {
        self.outcomes.iter().map(TestOutcome::injection_count).sum()
    }

    /// Renders the campaign report as text (the "test log" of Figure 1).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# LFI campaign report: {} test cases\n", self.outcomes.len()));
        for outcome in &self.outcomes {
            out.push_str(&format!(
                "{}: {} ({} injections)\n",
                outcome.name,
                outcome.status,
                outcome.injection_count()
            ));
        }
        out.push_str(&format!(
            "# crashes: {}, failures: {}, total injections: {}\n",
            self.crashes().count(),
            self.failures().count(),
            self.total_injections()
        ));
        out
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} test cases, {} crashes, {} failures",
            self.outcomes.len(),
            self.crashes().count(),
            self.failures().count()
        )
    }
}

/// Runs a set of fault-injection test cases against a workload.
///
/// For each test case the driver builds a fresh process via `setup`
/// (equivalent to the developer-provided start script of §5), synthesizes and
/// preloads the interceptor for the case's plan, runs `workload`, and records
/// the exit status together with the injection log and replay script.
pub fn run_campaign<S, W>(cases: &[TestCase], mut setup: S, mut workload: W) -> CampaignReport
where
    S: FnMut() -> Process,
    W: FnMut(&mut Process) -> ExitStatus,
{
    let mut report = CampaignReport::default();
    for case in cases {
        let mut process = setup();
        let injector = Injector::new(case.plan.clone());
        process.preload(injector.synthesize_interceptor());
        let status = workload(&mut process);
        report.outcomes.push(TestOutcome {
            name: case.name.clone(),
            status,
            log: injector.log(),
            replay: injector.replay_plan(),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_runtime::{NativeLibrary, Signal};
    use lfi_scenario::{FaultAction, PlanEntry, Trigger};

    fn libc() -> NativeLibrary {
        NativeLibrary::builder("libc.so.6")
            .function("malloc", |ctx| if ctx.arg(0) > 1 << 30 { 0 } else { 0x1000 })
            .function("read", |ctx| ctx.arg(2))
            .build()
    }

    /// A toy workload: read a header, allocate that many bytes, crash with
    /// SIGABRT if the allocation fails.
    fn workload(process: &mut Process) -> ExitStatus {
        let header = process.call("read", &[3, 0, 8]).unwrap_or(-1);
        if header < 0 {
            return ExitStatus::Exited(1);
        }
        let size = if header == 8 { 64 } else { 1 << 40 };
        let pointer = process.call("malloc", &[size]).unwrap_or(0);
        if pointer == 0 {
            return ExitStatus::Crashed(Signal::Abort);
        }
        ExitStatus::Exited(0)
    }

    #[test]
    fn campaign_separates_clean_runs_failures_and_crashes() {
        let cases = vec![
            TestCase::new("baseline", Plan::new()),
            TestCase::new(
                "fail-read",
                Plan::new().entry(PlanEntry {
                    function: "read".into(),
                    trigger: Trigger::on_call(1),
                    action: FaultAction::return_value(-1).with_errno(5),
                }),
            ),
            TestCase::new(
                "short-read",
                Plan::new().entry(PlanEntry {
                    function: "read".into(),
                    trigger: Trigger::on_call(1),
                    action: FaultAction::return_value(4),
                }),
            ),
        ];
        let report = run_campaign(
            &cases,
            || {
                let mut p = Process::new();
                p.load(libc());
                p
            },
            workload,
        );
        assert_eq!(report.outcomes.len(), 3);
        assert!(report.outcomes[0].status.is_success());
        assert_eq!(report.outcomes[1].status, ExitStatus::Exited(1));
        assert_eq!(report.outcomes[2].status, ExitStatus::Crashed(Signal::Abort));
        assert_eq!(report.crashes().count(), 1);
        assert_eq!(report.failures().count(), 1);
        assert_eq!(report.total_injections(), 2);
        let text = report.to_text();
        assert!(text.contains("short-read"));
        assert!(text.contains("SIGABRT"));
        assert!(report.to_string().contains("3 test cases"));
    }

    #[test]
    fn replay_script_from_a_crashing_case_reproduces_the_crash() {
        let crash_case = TestCase::new(
            "short-read",
            Plan::new().entry(PlanEntry {
                function: "read".into(),
                trigger: Trigger::on_call(1),
                action: FaultAction::return_value(4),
            }),
        );
        let setup = || {
            let mut p = Process::new();
            p.load(libc());
            p
        };
        let report = run_campaign(std::slice::from_ref(&crash_case), setup, workload);
        let replay = report.outcomes[0].replay.clone();
        assert!(!replay.is_empty());
        let report2 = run_campaign(&[TestCase::new("replay", replay)], setup, workload);
        assert_eq!(report2.outcomes[0].status, ExitStatus::Crashed(Signal::Abort));
    }
}
