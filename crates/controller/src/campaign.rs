//! The campaign driver (§5, §5.2): run a workload under a set of fault
//! scenarios and collect per-test-case outcomes, logs and replay scripts.
//!
//! Campaigns are configured through the fluent [`Campaign`] builder: test
//! cases (hand-made, or derived from a
//! [`ScenarioGenerator`](lfi_scenario::generator::ScenarioGenerator)),
//! [`CampaignObserver`] hooks, an [`ExecutionPolicy`], and a parallelism
//! degree for running independent test cases on worker threads.  Execution
//! is session-based: [`Campaign::start`] hands a [`Workload`] to a worker
//! pool and returns a streaming [`CampaignRun`]; the blocking entry points
//! ([`Campaign::run`], [`Campaign::run_per_case`],
//! [`Campaign::run_workload`]) are thin collect-into-report wrappers over
//! it.

use std::fmt;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

use lfi_intern::Symbol;
use lfi_profile::FaultProfile;
use lfi_runtime::{ExitStatus, Process};
use lfi_scenario::generator::ScenarioGenerator;
use lfi_scenario::Plan;

use crate::session::RunConfig;
use crate::{CampaignRun, FnWorkload, InjectionRecord, ProgressSnapshot, TestLog, Workload};

/// One fault-injection test case: a name and the scenario to apply.
#[derive(Debug, Clone, PartialEq)]
pub struct TestCase {
    /// Human-readable test-case name (appears in the report).
    pub name: String,
    /// The fault scenario to drive.
    pub plan: Plan,
}

impl TestCase {
    /// Creates a test case.
    pub fn new(name: impl Into<String>, plan: Plan) -> Self {
        Self { name: name.into(), plan }
    }
}

/// The outcome of one test case.
#[derive(Debug, Clone, PartialEq)]
pub struct TestOutcome {
    /// Test-case name.
    pub name: String,
    /// How the workload run ended.
    pub status: ExitStatus,
    /// The injection log.
    pub log: TestLog,
    /// The replay script distilled from the log.
    pub replay: Plan,
    /// The case's dispatch call log, drained from its process after the
    /// workload finished (empty unless [`Campaign::capture_call_log`] was
    /// enabled).  Exploration engines mine this stream for which functions a
    /// workload actually reaches, and how often.
    pub calls: Vec<Symbol>,
    /// How many dispatched calls the bounded log dropped once it hit its
    /// capacity (see `ProcessState::set_call_log_capacity`).  Non-zero means
    /// [`TestOutcome::calls`] is a truncated prefix — consumers that treat
    /// an *absent* function as proof of unreachability must check this.
    pub calls_dropped: u64,
}

impl TestOutcome {
    /// Number of injections performed during the run.
    pub fn injection_count(&self) -> usize {
        self.log.injection_count()
    }
}

/// The report produced by a campaign: one outcome per executed test case,
/// plus an account of the scheduled cases that never ran.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignReport {
    /// Outcomes, in test-case order.
    pub outcomes: Vec<TestOutcome>,
    /// Scheduled cases that never executed: the run was cancelled, halted by
    /// `stop_on_first_crash`, starved by an exhausted injection budget, or a
    /// case failed its workload's health check.  Cases trimmed up front by
    /// `ExecutionPolicy::max_cases` are *not* counted — they were never
    /// scheduled.
    pub cases_skipped: usize,
    /// The run's final execution counters.  On a cleanly drained run these
    /// agree with the outcome list; on a run that ended via cancellation
    /// (or a dropped consumer) they also count the work of cases whose
    /// events were never delivered — in particular
    /// [`ProgressSnapshot::injections`] is the authoritative injection
    /// total for partial runs, which is what [`CampaignReport::to_text`]
    /// reports.
    pub progress: ProgressSnapshot,
}

impl CampaignReport {
    /// Outcomes whose workload crashed with a signal — the report entries the
    /// paper says "can pinpoint bugs or weak spots in the target software".
    pub fn crashes(&self) -> impl Iterator<Item = &TestOutcome> {
        self.outcomes.iter().filter(|o| o.status.is_crash())
    }

    /// Outcomes whose workload exited unsuccessfully but did not crash.
    pub fn failures(&self) -> impl Iterator<Item = &TestOutcome> {
        self.outcomes.iter().filter(|o| !o.status.is_crash() && !o.status.is_success())
    }

    /// Total number of injections across the campaign: the sum over the
    /// delivered outcomes, or the run's progress counter when that is
    /// larger (a cancelled/abandoned run performs injections whose outcome
    /// events are never delivered).
    pub fn total_injections(&self) -> usize {
        let delivered: usize = self.outcomes.iter().map(TestOutcome::injection_count).sum();
        delivered.max(self.progress.injections)
    }

    /// Renders the campaign report as text (the "test log" of Figure 1).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# LFI campaign report: {} test cases\n", self.outcomes.len()));
        for outcome in &self.outcomes {
            out.push_str(&format!("{}: {} ({} injections)\n", outcome.name, outcome.status, outcome.injection_count()));
        }
        out.push_str(&format!(
            "# crashes: {}, failures: {}, cases skipped: {}, total injections: {}\n",
            self.crashes().count(),
            self.failures().count(),
            self.cases_skipped,
            self.total_injections()
        ));
        out
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} test cases, {} crashes, {} failures",
            self.outcomes.len(),
            self.crashes().count(),
            self.failures().count()
        )?;
        if self.cases_skipped > 0 {
            write!(f, ", {} skipped", self.cases_skipped)?;
        }
        Ok(())
    }
}

/// Hooks invoked while a campaign runs.
///
/// Observers may be shared across worker threads, so implementations must be
/// `Send + Sync`; interior mutability (e.g. a mutex-guarded vector) is the
/// expected pattern for collecting data.  For each executed test case the
/// driver calls `on_test_start`, then `on_injection` once per injection
/// recorded during the run (in log order, after the workload finishes), then
/// `on_outcome`; cases skipped by a health check or a halted run fire no
/// hooks.  With `parallelism(n)`, hooks of *different* cases interleave; the
/// per-case ordering still holds.
pub trait CampaignObserver: Send + Sync {
    /// A test case is about to run.
    fn on_test_start(&self, _case: &TestCase) {}

    /// An injection was performed during `case` (reported from the injection
    /// log once the case's workload finishes).
    fn on_injection(&self, _case: &TestCase, _record: &InjectionRecord) {}

    /// A test case finished.
    fn on_outcome(&self, _outcome: &TestOutcome) {}

    /// Asked once per executed case, on the worker thread, right after the
    /// case's [`CampaignObserver::on_outcome`] hooks and *before* its
    /// events ship to the stream consumer.  Returning `true` halts the run
    /// exactly like a [`CancelHandle`](crate::CancelHandle) cancellation —
    /// no further case is claimed; in-flight cases (under `parallelism(n)`)
    /// still finish and are reported.
    ///
    /// Because the decision lands before the events ship, a halt at
    /// `parallelism(1)` is deterministic: the same case always is the last
    /// one executed, exactly like `stop_on_first_crash`.  This is the hook
    /// closed-loop rule engines use to stop a campaign mid-flight without
    /// racing the consumer.
    fn should_halt(&self, _outcome: &TestOutcome) -> bool {
        false
    }
}

/// When a campaign stops before exhausting its test-case list.
///
/// The default policy runs every case.  `max_cases` truncates the list up
/// front; `stop_on_first_crash` stops the campaign after the case that
/// triggers it (with `parallelism(n)`, cases already in flight still finish
/// and are reported).  `injection_budget` is a *hard* bound: the remaining
/// budget lives in one atomic shared by every case's injector, so even
/// concurrent workers cannot collectively perform more injections than the
/// budget allows — once the pool is empty, in-flight cases finish with all
/// further triggers demoted to pass-throughs, and no new case is scheduled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutionPolicy {
    stop_on_first_crash: bool,
    max_cases: Option<usize>,
    injection_budget: Option<usize>,
}

impl ExecutionPolicy {
    /// The default policy: run every test case.
    pub fn run_all() -> Self {
        Self::default()
    }

    /// Stop scheduling new cases once a case crashes.
    pub fn stop_on_first_crash(mut self) -> Self {
        self.stop_on_first_crash = true;
        self
    }

    /// Run at most `max` test cases.
    pub fn max_cases(mut self, max: usize) -> Self {
        self.max_cases = Some(max);
        self
    }

    /// Caps the whole campaign at `budget` injections.  The budget is a
    /// shared atomic token pool: every firing trigger in every case (on any
    /// worker thread) consumes one token, an empty pool turns further
    /// triggers into pass-throughs, and the scheduler stops claiming new
    /// cases once the pool is dry — so the cap holds exactly even under
    /// [`Campaign::parallelism`].
    pub fn injection_budget(mut self, budget: usize) -> Self {
        self.injection_budget = Some(budget);
        self
    }
}

/// A per-case workload closure: consumes the prepared process and reports
/// how the run ended.  Boxed so case-specific state (a fresh simulated
/// world, a request trace, …) can be captured per case — see
/// [`Campaign::run_per_case`].
pub type CaseWorkload = Box<dyn FnOnce(&mut Process) -> ExitStatus + Send>;

/// Fluent builder for fault-injection campaigns.
///
/// [`Campaign::start`] turns the builder into a streaming
/// [`CampaignRun`] session; [`Campaign::run`] is the blocking shorthand:
///
/// ```
/// use lfi_controller::{Campaign, ExecutionPolicy, TestCase};
/// use lfi_runtime::{ExitStatus, NativeLibrary, Process};
/// use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};
///
/// let case = TestCase::new(
///     "fail-read",
///     Plan::new().entry(PlanEntry {
///         function: "read".into(),
///         trigger: Trigger::on_call(1),
///         action: FaultAction::return_value(-1).with_errno(5),
///     }),
/// );
/// let report = Campaign::new()
///     .case(TestCase::new("baseline", Plan::new()))
///     .case(case)
///     .policy(ExecutionPolicy::run_all())
///     .parallelism(2)
///     .run(
///         || {
///             let mut process = Process::new();
///             process.load(NativeLibrary::builder("libc.so.6").function("read", |ctx| ctx.arg(2)).build());
///             process
///         },
///         |process| match process.call("read", &[3, 0, 8]) {
///             Ok(n) if n >= 0 => ExitStatus::Exited(0),
///             _ => ExitStatus::Exited(1),
///         },
///     );
/// assert_eq!(report.outcomes.len(), 2);
/// assert_eq!(report.failures().count(), 1);
/// ```
#[derive(Default)]
pub struct Campaign {
    cases: Vec<TestCase>,
    observers: Vec<Arc<dyn CampaignObserver>>,
    policy: ExecutionPolicy,
    parallelism: usize,
    capture_calls: bool,
}

impl Campaign {
    /// An empty campaign (serial, run-all policy, no cases).
    pub fn new() -> Self {
        Self::default()
    }

    /// A campaign whose test cases are derived from a scenario generator:
    /// one case per generated plan entry (the paper's one-fault-per-run
    /// style), each inheriting the generated plan's seed.
    ///
    /// Call-count triggers are re-anchored to the *first* call in their
    /// case: generators like `Exhaustive` use consecutive ordinals so that
    /// one run can iterate a function's whole fault set, but split into
    /// single-fault cases those ordinals would leave case *n* waiting for
    /// *n* calls that its workload may never make.  Probability and
    /// stack-trace conditions are preserved.  To keep the original
    /// ordinals, build cases by hand with [`Campaign::cases`].
    pub fn from_generator<G>(generator: &G, profiles: &[FaultProfile]) -> Self
    where
        G: ScenarioGenerator + ?Sized,
    {
        let plan = generator.generate(profiles);
        let seed = plan.seed;
        let cases = plan
            .entries
            .into_iter()
            .enumerate()
            .map(|(index, mut entry)| {
                let name = format!("{}-{:04}-{}", generator.name(), index, entry.function);
                if entry.trigger.inject_at_call.is_some() {
                    entry.trigger.inject_at_call = Some(1);
                }
                TestCase::new(name, Plan { entries: vec![entry], seed })
            })
            .collect();
        Campaign { cases, ..Self::default() }
    }

    /// Adds one test case.
    pub fn case(mut self, case: TestCase) -> Self {
        self.cases.push(case);
        self
    }

    /// Adds test cases in bulk.
    pub fn cases(mut self, cases: impl IntoIterator<Item = TestCase>) -> Self {
        self.cases.extend(cases);
        self
    }

    /// Attaches an observer (hooks run in registration order).
    pub fn observer(mut self, observer: impl CampaignObserver + 'static) -> Self {
        self.observers.push(Arc::new(observer));
        self
    }

    /// Attaches an already-shared observer.
    pub fn observer_arc(mut self, observer: Arc<dyn CampaignObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Sets the execution policy (default: run every case).
    pub fn policy(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Runs up to `workers` test cases concurrently, each on its own
    /// [`Process`] (0 and 1 both mean serial).  Outcomes are reported in
    /// test-case order regardless of completion order.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Records each case's dispatch call log and drains it into
    /// [`TestOutcome::calls`] after the workload finishes (default: off).
    /// This is the per-case reachability stream adaptive exploration engines
    /// consume; leave it off for plain campaigns — a chatty workload's call
    /// stream is much larger than its injection log.
    pub fn capture_call_log(mut self, capture: bool) -> Self {
        self.capture_calls = capture;
        self
    }

    /// The configured test cases.
    pub fn case_list(&self) -> &[TestCase] {
        &self.cases
    }

    /// Starts the campaign as a streaming session: a worker pool (sized by
    /// [`Campaign::parallelism`]) drives the [`Workload`] case by case, and
    /// the returned [`CampaignRun`] yields [`CaseEvent`](crate::CaseEvent)s
    /// incrementally over a bounded channel.  See [`CampaignRun`] for the
    /// event ordering and cancellation contracts.
    pub fn start(self, workload: impl Workload + 'static) -> CampaignRun {
        self.start_arc(Arc::new(workload))
    }

    /// [`Campaign::start`] for a workload that is already shared (e.g. one
    /// pulled from a [`WorkloadRegistry`](crate::WorkloadRegistry)).
    pub fn start_arc(self, workload: Arc<dyn Workload>) -> CampaignRun {
        let limit = self.policy.max_cases.map_or(self.cases.len(), |max| max.min(self.cases.len()));
        let mut cases = self.cases;
        cases.truncate(limit);
        let workers = self.parallelism.clamp(1, cases.len().max(1));
        let budget = self.policy.injection_budget.map(|budget| Arc::new(AtomicUsize::new(budget)));
        CampaignRun::launch(
            RunConfig {
                cases,
                observers: self.observers,
                stop_on_first_crash: self.policy.stop_on_first_crash,
                capture_calls: self.capture_calls,
                budget,
                workers,
            },
            workload,
        )
    }

    /// Runs the campaign to completion under a [`Workload`] and collects the
    /// report — the blocking shorthand for
    /// `self.start(workload).into_report()`.
    pub fn run_workload(self, workload: impl Workload + 'static) -> CampaignReport {
        self.start(workload).into_report()
    }

    /// Runs the campaign with a shared setup/workload closure pair: `setup`
    /// builds a fresh process per case (the developer-provided start script
    /// of §5), `workload` exercises it.  A thin wrapper that adapts the pair
    /// through [`FnWorkload`] and collects [`Campaign::start`]'s stream into
    /// a report.
    pub fn run<S, W>(self, setup: S, workload: W) -> CampaignReport
    where
        S: Fn() -> Process + Send + Sync + 'static,
        W: Fn(&mut Process) -> ExitStatus + Send + Sync + 'static,
    {
        self.run_workload(FnWorkload::new("closure-pair", setup, workload))
    }

    /// Runs the campaign with a per-case runner, for workloads that need
    /// case-local state: the runner returns the fresh process *and* the
    /// workload closure for that case.  A thin wrapper over
    /// [`Campaign::start`], like [`Campaign::run`].
    pub fn run_per_case<R>(self, runner: R) -> CampaignReport
    where
        R: Fn(&TestCase) -> (Process, CaseWorkload) + Send + Sync + 'static,
    {
        self.run_workload(PerCaseWorkload::new(runner))
    }
}

impl fmt::Debug for Campaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Campaign")
            .field("cases", &self.cases.len())
            .field("observers", &self.observers.len())
            .field("policy", &self.policy)
            .field("parallelism", &self.parallelism)
            .field("capture_calls", &self.capture_calls)
            .finish()
    }
}

/// Adapter behind [`Campaign::run_per_case`]: each case's `setup` stashes
/// the runner-produced closure under the executing worker's thread id, and
/// `run` — which the session always calls on the same worker thread,
/// immediately after setup — takes it back out.
struct PerCaseWorkload<R> {
    runner: R,
    pending: parking_lot::Mutex<std::collections::HashMap<std::thread::ThreadId, CaseWorkload>>,
}

impl<R> PerCaseWorkload<R>
where
    R: Fn(&TestCase) -> (Process, CaseWorkload) + Send + Sync,
{
    fn new(runner: R) -> Self {
        Self { runner, pending: parking_lot::Mutex::new(std::collections::HashMap::new()) }
    }
}

impl<R> Workload for PerCaseWorkload<R>
where
    R: Fn(&TestCase) -> (Process, CaseWorkload) + Send + Sync,
{
    fn name(&self) -> &str {
        "per-case-runner"
    }

    fn setup(&self, case: &TestCase) -> lfi_runtime::PooledProcess {
        let (process, workload) = (self.runner)(case);
        self.pending.lock().insert(std::thread::current().id(), workload);
        process.into()
    }

    fn run(&self, process: &mut Process) -> ExitStatus {
        let workload = self
            .pending
            .lock()
            .remove(&std::thread::current().id())
            .expect("setup stashes this case's workload on the executing worker thread");
        workload(process)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CaseEvent, SkipReason};
    use lfi_profile::{ErrorReturn, FunctionProfile};
    use lfi_runtime::{NativeLibrary, Signal};
    use lfi_scenario::generator::{Exhaustive, Filtered};
    use lfi_scenario::{FaultAction, PlanEntry, Trigger};
    use std::sync::Mutex;

    fn libc() -> NativeLibrary {
        NativeLibrary::builder("libc.so.6")
            .function("malloc", |ctx| if ctx.arg(0) > 1 << 30 { 0 } else { 0x1000 })
            .function("read", |ctx| ctx.arg(2))
            .build()
    }

    fn setup() -> Process {
        let mut process = Process::new();
        process.load(libc());
        process
    }

    /// A toy workload: read a header, allocate that many bytes, crash with
    /// SIGABRT if the allocation fails.
    fn workload(process: &mut Process) -> ExitStatus {
        let header = process.call("read", &[3, 0, 8]).unwrap_or(-1);
        if header < 0 {
            return ExitStatus::Exited(1);
        }
        let size = if header == 8 { 64 } else { 1 << 40 };
        let pointer = process.call("malloc", &[size]).unwrap_or(0);
        if pointer == 0 {
            return ExitStatus::Crashed(Signal::Abort);
        }
        ExitStatus::Exited(0)
    }

    fn standard_cases() -> Vec<TestCase> {
        vec![
            TestCase::new("baseline", Plan::new()),
            TestCase::new(
                "fail-read",
                Plan::new().entry(PlanEntry {
                    function: "read".into(),
                    trigger: Trigger::on_call(1),
                    action: FaultAction::return_value(-1).with_errno(5),
                }),
            ),
            TestCase::new(
                "short-read",
                Plan::new().entry(PlanEntry {
                    function: "read".into(),
                    trigger: Trigger::on_call(1),
                    action: FaultAction::return_value(4),
                }),
            ),
        ]
    }

    #[test]
    fn campaign_separates_clean_runs_failures_and_crashes() {
        let campaign = Campaign::new().cases(standard_cases());
        assert_eq!(campaign.case_list().len(), 3);
        let report = campaign.run(setup, workload);
        assert_eq!(report.outcomes.len(), 3);
        assert!(report.outcomes[0].status.is_success());
        assert_eq!(report.outcomes[1].status, ExitStatus::Exited(1));
        assert_eq!(report.outcomes[2].status, ExitStatus::Crashed(Signal::Abort));
        assert_eq!(report.crashes().count(), 1);
        assert_eq!(report.failures().count(), 1);
        assert_eq!(report.total_injections(), 2);
        assert_eq!(report.cases_skipped, 0);
        let text = report.to_text();
        assert!(text.contains("short-read"));
        assert!(text.contains("SIGABRT"));
        assert!(text.contains("cases skipped: 0"));
        assert!(report.to_string().contains("3 test cases"));
        assert!(format!("{:?}", Campaign::new().cases(standard_cases())).contains("cases: 3"));
    }

    #[test]
    fn replay_script_from_a_crashing_case_reproduces_the_crash() {
        let crash_case = TestCase::new(
            "short-read",
            Plan::new().entry(PlanEntry {
                function: "read".into(),
                trigger: Trigger::on_call(1),
                action: FaultAction::return_value(4),
            }),
        );
        let report = Campaign::new().case(crash_case).run(setup, workload);
        let replay = report.outcomes[0].replay.clone();
        assert!(!replay.is_empty());
        let report2 = Campaign::new().case(TestCase::new("replay", replay)).run(setup, workload);
        assert_eq!(report2.outcomes[0].status, ExitStatus::Crashed(Signal::Abort));
    }

    /// Records every hook invocation with its case name.
    #[derive(Default)]
    struct EventLog {
        events: Mutex<Vec<String>>,
    }

    impl CampaignObserver for Arc<EventLog> {
        fn on_test_start(&self, case: &TestCase) {
            self.events.lock().unwrap().push(format!("start:{}", case.name));
        }

        fn on_injection(&self, case: &TestCase, record: &InjectionRecord) {
            self.events.lock().unwrap().push(format!("inject:{}:{}", case.name, record.function));
        }

        fn on_outcome(&self, outcome: &TestOutcome) {
            self.events.lock().unwrap().push(format!("outcome:{}:{}", outcome.name, outcome.status));
        }
    }

    #[test]
    fn observers_see_start_injection_outcome_in_order() {
        let log = Arc::new(EventLog::default());
        let report = Campaign::new().cases(standard_cases()).observer(Arc::clone(&log)).run(setup, workload);
        assert_eq!(report.outcomes.len(), 3);
        let events = log.events.lock().unwrap().clone();
        assert_eq!(
            events,
            vec![
                "start:baseline",
                "outcome:baseline:exited with status 0",
                "start:fail-read",
                "inject:fail-read:read",
                "outcome:fail-read:exited with status 1",
                "start:short-read",
                "inject:short-read:read",
                "outcome:short-read:killed by SIGABRT",
            ]
        );
    }

    #[test]
    fn parallel_and_serial_runs_produce_the_same_report() {
        // Many deterministic cases: each injects a distinct short read.
        let cases: Vec<TestCase> = (0..24)
            .map(|i| {
                TestCase::new(
                    format!("case-{i:02}"),
                    Plan::new().entry(PlanEntry {
                        function: "read".into(),
                        trigger: Trigger::on_call(1),
                        action: FaultAction::return_value(if i % 3 == 0 { 4 } else { 8 }),
                    }),
                )
            })
            .collect();
        let serial = Campaign::new().cases(cases.clone()).run(setup, workload);
        let parallel = Campaign::new().cases(cases).parallelism(8).run(setup, workload);
        // Outcomes are slot-ordered, so the full reports match exactly.
        assert_eq!(serial, parallel);
        assert_eq!(serial.outcomes.len(), 24);
        assert_eq!(serial.crashes().count(), 8);
    }

    #[test]
    fn parallel_campaigns_with_sharded_state_stay_deterministic() {
        // Random triggers on a fixed seed: every case owns its injector (and
        // therefore its own per-function RNG shards), so a parallelism(4)
        // run must produce byte-for-byte the report of a parallelism(1) run.
        let cases: Vec<TestCase> = (0..16)
            .map(|i| {
                TestCase::new(
                    format!("random-{i:02}"),
                    Plan::new().with_seed(1000 + i).entry(PlanEntry {
                        function: "read".into(),
                        trigger: Trigger::with_probability(0.4),
                        action: FaultAction::return_value(-1).with_errno(5),
                    }),
                )
            })
            .collect();
        let workload = |process: &mut Process| {
            let mut failures = 0;
            for _ in 0..20 {
                if process.call("read", &[3, 0, 8]).unwrap_or(-1) < 0 {
                    failures += 1;
                }
            }
            ExitStatus::Exited(failures)
        };
        let serial = Campaign::new().cases(cases.clone()).parallelism(1).run(setup, workload);
        let parallel = Campaign::new().cases(cases).parallelism(4).run(setup, workload);
        assert_eq!(serial, parallel);
        assert!(serial.total_injections() > 0, "the random triggers actually fired");
    }

    #[test]
    fn stop_on_first_crash_halts_the_campaign() {
        let report = Campaign::new()
            .cases(standard_cases())
            .policy(ExecutionPolicy::run_all().stop_on_first_crash())
            .run(setup, workload);
        // standard cases crash only in case 3; a crash-first ordering:
        let crash_first = vec![standard_cases().remove(2), standard_cases().remove(0), standard_cases().remove(1)];
        let stopped = Campaign::new()
            .cases(crash_first)
            .policy(ExecutionPolicy::run_all().stop_on_first_crash())
            .run(setup, workload);
        assert_eq!(report.outcomes.len(), 3, "crash in the last case stops nothing");
        assert_eq!(report.cases_skipped, 0);
        assert_eq!(stopped.outcomes.len(), 1, "crash in the first case stops the rest");
        assert!(stopped.outcomes[0].status.is_crash());
        // The halted cases no longer vanish silently: the report says so.
        assert_eq!(stopped.cases_skipped, 2);
        assert!(stopped.to_text().contains("cases skipped: 2"));
        assert!(stopped.to_string().contains("2 skipped"));
    }

    #[test]
    fn max_cases_and_injection_budget_bound_the_run() {
        let capped = Campaign::new()
            .cases(standard_cases())
            .policy(ExecutionPolicy::run_all().max_cases(2))
            .run(setup, workload);
        assert_eq!(capped.outcomes.len(), 2);
        // max_cases trims up front; the trimmed case was never scheduled.
        assert_eq!(capped.cases_skipped, 0);

        let budgeted = Campaign::new()
            .cases(standard_cases())
            .policy(ExecutionPolicy::run_all().injection_budget(1))
            .run(setup, workload);
        // baseline injects 0, fail-read drains the budget of 1, short-read
        // never runs — and is accounted for as skipped.
        assert_eq!(budgeted.outcomes.len(), 2);
        assert_eq!(budgeted.total_injections(), 1);
        assert_eq!(budgeted.cases_skipped, 1);
    }

    #[test]
    fn injection_budget_is_a_hard_bound_under_parallelism() {
        // Regression test: the budget used to be checked only *after* a case
        // finished, so n concurrent workers could each run a full case and
        // collectively overshoot the budget by up to (n-1) cases' worth of
        // injections.  The budget is now a token pool shared by every case's
        // injector: with 12 cases of 5 injections each (60 available) and a
        // budget of 12, any parallelism degree must land on exactly 12.
        let cases: Vec<TestCase> = (0..12)
            .map(|i| {
                let mut plan = Plan::new().with_seed(42 + i);
                for call in 1..=5 {
                    plan = plan.entry(PlanEntry {
                        function: "read".into(),
                        trigger: Trigger::on_call(call),
                        action: FaultAction::return_value(-1).with_errno(5),
                    });
                }
                TestCase::new(format!("budget-{i:02}"), plan)
            })
            .collect();
        let hammer = |process: &mut Process| {
            for _ in 0..5 {
                let _ = process.call("read", &[3, 0, 8]);
            }
            ExitStatus::Exited(0)
        };
        for workers in [1, 4, 8] {
            let report = Campaign::new()
                .cases(cases.clone())
                .policy(ExecutionPolicy::run_all().injection_budget(12))
                .parallelism(workers)
                .run(setup, hammer);
            assert_eq!(report.total_injections(), 12, "parallelism({workers}) overshot the injection budget");
            assert_eq!(report.outcomes.len() + report.cases_skipped, 12, "every scheduled case is accounted for");
        }
    }

    #[test]
    fn capture_call_log_drains_each_cases_dispatch_stream() {
        let report = Campaign::new().cases(standard_cases()).capture_call_log(true).run(setup, workload);
        // Every case's workload starts with read; the baseline and fail-read
        // cases proceed to malloc, the short-read crash also calls malloc.
        for outcome in &report.outcomes {
            assert_eq!(outcome.calls.first().map(|s| s.as_str()), Some("read"), "{}", outcome.name);
        }
        assert_eq!(report.outcomes[0].calls.len(), 2, "baseline: read + malloc");
        // The per-function call totals ride along in the test log.
        assert_eq!(report.outcomes[1].log.calls_to("read"), 1);
        // Without capture the stream stays empty.
        let quiet = Campaign::new().cases(standard_cases()).run(setup, workload);
        assert!(quiet.outcomes.iter().all(|o| o.calls.is_empty() && o.calls_dropped == 0));

        // A capacity-bounded log surfaces its truncation in the outcome, so
        // consumers never mistake a truncated stream for a complete one.
        let truncated = Campaign::new().case(TestCase::new("tiny-log", Plan::new())).capture_call_log(true).run(
            || {
                let mut process = setup();
                process.state_mut().set_call_log_capacity(1);
                process
            },
            workload,
        );
        assert_eq!(truncated.outcomes[0].calls.len(), 1);
        assert_eq!(truncated.outcomes[0].calls_dropped, 1, "read recorded, malloc dropped");
    }

    #[test]
    fn from_generator_builds_one_case_per_plan_entry() {
        let mut profile = FaultProfile::new("libc.so.6");
        profile.push_function(FunctionProfile {
            name: "read".into(),
            error_returns: vec![ErrorReturn::bare(-1), ErrorReturn::bare(4)],
        });
        profile.push_function(FunctionProfile { name: "malloc".into(), error_returns: vec![ErrorReturn::bare(0)] });
        let campaign =
            Campaign::from_generator(&Filtered::new(Exhaustive).allow(["read"]), std::slice::from_ref(&profile));
        assert_eq!(campaign.case_list().len(), 2);
        assert!(campaign.case_list().iter().all(|c| c.plan.len() == 1));
        assert!(campaign.case_list()[0].name.contains("filtered"));
        assert!(campaign.case_list()[0].name.ends_with("read"));
        // Exhaustive ordinals (call 1, call 2, ...) are re-anchored so each
        // single-fault case injects on its workload's first call.
        assert!(campaign.case_list().iter().all(|c| c.plan.entries[0].trigger.inject_at_call == Some(1)));

        let report = campaign.run(setup, workload);
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.failures().count(), 1); // read() -> -1
        assert_eq!(report.crashes().count(), 1); // read() -> 4 => huge malloc
    }

    #[test]
    fn per_case_runners_carry_case_local_state() {
        let report = Campaign::new().cases(standard_cases()).parallelism(2).run_per_case(|case| {
            // Case-local state: the workload closure owns the case name.
            let name = case.name.clone();
            let case_workload: CaseWorkload = Box::new(move |process| {
                let _ = name; // a stand-in for a per-case world
                workload(process)
            });
            (setup(), case_workload)
        });
        assert_eq!(report.outcomes.len(), 3);
        assert_eq!(report.crashes().count(), 1);
    }

    #[test]
    fn run_workload_drives_a_named_workload() {
        let report =
            Campaign::new()
                .cases(standard_cases())
                .run_workload(FnWorkload::new("toy-reader", setup, workload));
        assert_eq!(report.outcomes.len(), 3);
        assert_eq!(report.crashes().count(), 1);
    }

    #[test]
    fn start_streams_events_and_reports_progress() {
        let mut run = Campaign::new()
            .cases(standard_cases())
            .start(FnWorkload::new("toy-reader", setup, workload));
        assert_eq!(run.case_count(), 3);
        let events: Vec<CaseEvent> = run.by_ref().collect();
        // 3 Started + 2 Injection + 3 Outcome events, per-case ordering.
        assert_eq!(events.len(), 8);
        assert!(matches!(&events[0], CaseEvent::Started { index: 0, name } if name == "baseline"));
        assert!(matches!(&events[1], CaseEvent::Outcome { index: 0, .. }));
        assert!(matches!(&events[3], CaseEvent::Injection { index: 1, .. }));
        assert!(events.iter().all(|e| !matches!(e, CaseEvent::Skipped { .. })));
        assert_eq!(events[2].index(), 1);
        let progress = run.progress();
        assert_eq!(progress.cases, 3);
        assert_eq!(progress.finished, 3);
        assert_eq!(progress.crashes, 1);
        assert_eq!(progress.injections, 2);
        assert_eq!(progress.skipped, 0);
        assert!(format!("{run:?}").contains("cases: 3"));
        let report = run.into_report();
        assert_eq!(report.outcomes.len(), 3);
        assert_eq!(report, Campaign::new().cases(standard_cases()).run(setup, workload));
    }

    #[test]
    fn cancelling_a_run_skips_the_unclaimed_cases() {
        // The workload parks on a gate, so the cancel deterministically
        // arrives while case 0 is still in flight.
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let gated_workload = {
            let gate = Arc::clone(&gate);
            move |process: &mut Process| {
                while !gate.load(std::sync::atomic::Ordering::Acquire) {
                    std::thread::yield_now();
                }
                workload(process)
            }
        };
        let mut run =
            Campaign::new()
                .cases(standard_cases())
                .start(FnWorkload::new("gated-reader", setup, gated_workload));
        let cancel = run.cancel_handle();
        assert!(!cancel.is_stopping());
        // Consume the first case's Started event, cancel, then open the gate.
        let first = run.next().expect("first event");
        assert!(matches!(first, CaseEvent::Started { index: 0, .. }));
        cancel.clone().cancel();
        assert!(cancel.is_stopping());
        assert!(format!("{cancel:?}").contains("stopping: true"));
        gate.store(true, std::sync::atomic::Ordering::Release);
        let report = run.into_report();
        // The in-flight case finished and was reported; the unclaimed cases
        // surface as skipped.
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.cases_skipped, 2);
        assert_eq!(report.outcomes.len() + report.cases_skipped, 3);
    }

    #[test]
    fn dropping_a_run_mid_stream_releases_its_workers() {
        let mut run = Campaign::new()
            .cases((0..64).map(|i| TestCase::new(format!("case-{i:02}"), Plan::new())))
            .parallelism(4)
            .start(FnWorkload::new("toy-reader", setup, workload));
        let _ = run.next();
        drop(run); // must not hang on the bounded channel
    }

    /// A workload whose health check rejects every case.
    struct Unhealthy;

    impl Workload for Unhealthy {
        fn name(&self) -> &str {
            "unhealthy"
        }

        fn setup(&self, _case: &TestCase) -> lfi_runtime::PooledProcess {
            setup().into()
        }

        fn run(&self, _process: &mut Process) -> ExitStatus {
            unreachable!("health check vetoes every case")
        }

        fn health_check(&self, _process: &mut Process) -> bool {
            false
        }
    }

    #[test]
    #[should_panic(expected = "workload bug")]
    fn worker_panics_propagate_to_the_blocking_caller() {
        // A panicking Workload hook must surface like it did under the old
        // inline driver — never a silently truncated report.
        let _ = Campaign::new()
            .cases(standard_cases())
            .run(setup, |_process: &mut Process| panic!("workload bug"));
    }

    #[test]
    #[should_panic(expected = "workload bug")]
    fn worker_panics_propagate_to_the_streaming_consumer() {
        let run =
            Campaign::new()
                .cases(standard_cases())
                .start(FnWorkload::new("buggy", setup, |_process: &mut Process| panic!("workload bug")));
        for _ in run {}
    }

    #[test]
    fn health_check_vetoes_surface_as_unhealthy_skips() {
        let mut run = Campaign::new().cases(standard_cases()).start(Unhealthy);
        let events: Vec<CaseEvent> = run.by_ref().collect();
        assert_eq!(events.len(), 6, "Started + Skipped per case");
        assert!(
            events
                .iter()
                .filter(|e| matches!(e, CaseEvent::Skipped { reason: SkipReason::Unhealthy, .. }))
                .count()
                == 3
        );
        let report = run.into_report();
        assert!(report.outcomes.is_empty());
        assert_eq!(report.cases_skipped, 3);
    }
}
