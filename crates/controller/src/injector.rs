//! The runtime half of the LFI controller: interceptor synthesis and trigger
//! evaluation (§5.1).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lfi_profile::{FaultProfile, SideEffect, SideEffectKind};
use lfi_runtime::{CallContext, NativeLibrary};
use lfi_scenario::{Plan, PlanEntry};

use crate::{InjectionRecord, TestLog};

/// Name given to synthesized interceptor libraries.
pub const INTERCEPTOR_LIBRARY_NAME: &str = "liblfi_interceptor.so";

/// The injection engine: owns the fault scenario, the per-function call
/// counters (the `call_count` static of the paper's stub), the random number
/// generator for probabilistic triggers, and the test log.
///
/// An [`Injector`] is cheap to clone; clones share the same state, which is
/// how every synthesized stub reaches the shared counters and log.
#[derive(Debug, Clone)]
pub struct Injector {
    inner: Arc<Mutex<InjectorState>>,
}

#[derive(Debug)]
struct InjectorState {
    plan: Plan,
    /// Plan-entry indices grouped by intercepted function, so that trigger
    /// evaluation touches only the entries relevant to the current call (the
    /// overhead in §6.4 grows with the triggers *per function*, not with the
    /// whole plan).
    entries_by_function: HashMap<String, Vec<usize>>,
    /// Functions with at least one stack-trace trigger; the (comparatively
    /// expensive) backtrace snapshot is only taken for these.
    stack_sensitive: HashMap<String, bool>,
    rng: StdRng,
    call_counts: HashMap<String, u64>,
    log: TestLog,
    /// Return values observed on calls that reached the original definition
    /// (pass-through or untriggered), per intercepted function — the raw
    /// material for dynamic profile refinement.
    observed: BTreeMap<String, BTreeMap<i64, u64>>,
}

/// An error return value observed at run time that the static fault profile
/// does not list.
///
/// §3.1 notes two ways static profiles can be incomplete: error codes hidden
/// behind indirect calls (false negatives) and the general reliance on what
/// the binary alone reveals.  Related work (Süßkraut & Fetzer, §7) learns
/// error values by observing execution; the LFI controller is in the perfect
/// position to do the same for free, because every pass-through call already
/// flows through its stubs.  A finding is a *candidate* new fault — it still
/// needs the usual vetting before being added to a profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefinementFinding {
    /// The intercepted function.
    pub function: String,
    /// The observed return value missing from the profile.
    pub value: i64,
    /// How many times it was observed.
    pub occurrences: u64,
}

/// What a stub decided to do for one intercepted call.
#[derive(Debug, Clone, PartialEq)]
struct Decision {
    retval: Option<i64>,
    errno: Option<i64>,
    side_effects: Vec<SideEffect>,
    call_original: bool,
    arg_modifications: Vec<(u8, lfi_scenario::ArgOp, i64)>,
    call_number: u64,
}

impl Injector {
    /// Creates an injection engine for a fault scenario.  The random seed is
    /// taken from the plan (or 0 when absent) so runs are reproducible.
    pub fn new(plan: Plan) -> Self {
        let seed = plan.seed.unwrap_or(0);
        let mut entries_by_function: HashMap<String, Vec<usize>> = HashMap::new();
        let mut stack_sensitive: HashMap<String, bool> = HashMap::new();
        for (index, entry) in plan.entries.iter().enumerate() {
            entries_by_function.entry(entry.function.clone()).or_default().push(index);
            let sensitive = stack_sensitive.entry(entry.function.clone()).or_insert(false);
            *sensitive |= !entry.trigger.stack_trace.is_empty();
        }
        Self {
            inner: Arc::new(Mutex::new(InjectorState {
                plan,
                entries_by_function,
                stack_sensitive,
                rng: StdRng::seed_from_u64(seed),
                call_counts: HashMap::new(),
                log: TestLog::new(),
                observed: BTreeMap::new(),
            })),
        }
    }

    /// The return values observed on calls that reached the original library
    /// (either untriggered calls or pass-through injections), per function,
    /// with occurrence counts.
    pub fn observed_returns(&self) -> BTreeMap<String, BTreeMap<i64, u64>> {
        self.inner.lock().observed.clone()
    }

    /// Diffs the observed behaviour against a set of static fault profiles
    /// and returns every *negative* return value seen at run time that no
    /// profile lists for that function — dynamic refinement of the static
    /// analysis (§3.1's indirect-call false negatives are the typical cause).
    pub fn refinement_findings(&self, profiles: &[FaultProfile]) -> Vec<RefinementFinding> {
        let observed = self.observed_returns();
        let mut findings = Vec::new();
        for (function, values) in observed {
            let profiled: Option<std::collections::BTreeSet<i64>> =
                profiles.iter().find_map(|p| p.function(&function)).map(|f| f.error_values());
            for (value, occurrences) in values {
                if value >= 0 {
                    continue;
                }
                let known = profiled.as_ref().is_some_and(|set| set.contains(&value));
                if !known {
                    findings.push(RefinementFinding { function: function.clone(), value, occurrences });
                }
            }
        }
        findings
    }

    /// The functions this injector will intercept.
    pub fn intercepted_functions(&self) -> Vec<String> {
        self.inner.lock().plan.intercepted_functions().into_iter().map(str::to_owned).collect()
    }

    /// Synthesizes the interceptor library: one stub per function named in the
    /// plan.  Load it with [`lfi_runtime::Process::preload`] so it shadows the
    /// original definitions, exactly as `LD_PRELOAD` does for the real tool.
    pub fn synthesize_interceptor(&self) -> NativeLibrary {
        self.synthesize_interceptor_named(INTERCEPTOR_LIBRARY_NAME)
    }

    /// Synthesizes the interceptor library under a custom name.  Interceptors
    /// for multiple plans can coexist in one process (§6.4 runs libc, libapr
    /// and libaprutil interceptors simultaneously); they do not interfere
    /// because stubs are keyed purely by function name.
    pub fn synthesize_interceptor_named(&self, library_name: &str) -> NativeLibrary {
        let mut builder = NativeLibrary::builder(library_name);
        for function in self.intercepted_functions() {
            let engine = self.clone();
            let symbol = function.clone();
            builder = builder.function(function, move |ctx| engine.stub_body(&symbol, ctx));
        }
        builder.build()
    }

    /// A snapshot of the log so far.
    pub fn log(&self) -> TestLog {
        self.inner.lock().log.clone()
    }

    /// The replay script distilled from the log so far (§5.2).
    pub fn replay_plan(&self) -> Plan {
        self.inner.lock().log.replay_plan()
    }

    /// Resets call counters, the log and the observed-return record, keeping
    /// the plan (used between repetitions of a workload).
    pub fn reset(&self) {
        let mut state = self.inner.lock();
        let seed = state.plan.seed.unwrap_or(0);
        state.call_counts.clear();
        state.log = TestLog::new();
        state.rng = StdRng::seed_from_u64(seed);
        state.observed.clear();
    }

    /// Records a return value that came back from the original definition.
    fn record_observed(&self, symbol: &str, value: i64) {
        let mut state = self.inner.lock();
        *state.observed.entry(symbol.to_owned()).or_default().entry(value).or_insert(0) += 1;
    }

    /// The body shared by every synthesized stub.
    fn stub_body(&self, symbol: &str, ctx: &mut CallContext<'_>) -> i64 {
        let decision = self.decide(symbol, ctx);
        match decision {
            None => {
                // No trigger fired: clean up and jump to the original, as the
                // paper's stub does.  If there is no original definition the
                // call degenerates to a no-op success.
                let result = ctx.call_next().unwrap_or(0);
                self.record_observed(symbol, result);
                result
            }
            Some(decision) => self.apply(symbol, decision, ctx),
        }
    }

    /// Evaluates the plan's triggers for one intercepted call.
    fn decide(&self, symbol: &str, ctx: &CallContext<'_>) -> Option<Decision> {
        let mut state = self.inner.lock();
        let count = state.call_counts.entry(symbol.to_owned()).or_insert(0);
        *count += 1;
        let call_number = *count;
        state.log.intercepted_calls += 1;

        // The stack excluding the frame of the intercepted call itself: what
        // the paper's `<stacktrace>` frames are matched against.  Snapshotting
        // it costs an allocation, so it is only taken when some trigger for
        // this function actually inspects the stack.
        let caller_stack: Vec<&str> = if state.stack_sensitive.get(symbol).copied().unwrap_or(false) {
            ctx.stack().iter().rev().skip(1).map(String::as_str).collect()
        } else {
            Vec::new()
        };

        let mut chosen: Option<Decision> = None;
        // Split borrows: iterate over the plan while using the RNG.
        let InjectorState { plan, entries_by_function, rng, .. } = &mut *state;
        let candidate_indices = entries_by_function.get(symbol).map(Vec::as_slice).unwrap_or(&[]);
        for &entry_index in candidate_indices {
            let entry = &plan.entries[entry_index];
            if !trigger_matches(entry, call_number, &caller_stack, rng) {
                continue;
            }
            let (retval, errno, side_effects) = resolve_action(entry, rng);
            chosen = Some(Decision {
                retval,
                errno,
                side_effects,
                call_original: entry.action.call_original,
                arg_modifications: entry.action.arg_modifications.iter().map(|m| (m.argument, m.op, m.value)).collect(),
                call_number,
            });
            break;
        }
        chosen
    }

    /// Applies a decision: argument rewrites, errno, side effects, pass-through
    /// and the injected return value; then logs the injection.
    fn apply(&self, symbol: &str, decision: Decision, ctx: &mut CallContext<'_>) -> i64 {
        for (argument, op, value) in &decision.arg_modifications {
            let current = ctx.arg(*argument as usize);
            ctx.set_arg(*argument as usize, op.apply(current, *value));
        }
        if let Some(errno) = decision.errno {
            ctx.set_errno(errno);
        }
        for effect in &decision.side_effects {
            match effect.kind {
                SideEffectKind::Tls => {
                    ctx.state().set_tls(&effect.module.clone(), effect.offset, effect.value);
                    // errno lives in TLS; reflect the canonical value too so
                    // programs that read errno through the process state see
                    // the injected error.
                    ctx.set_errno(effect.value);
                }
                SideEffectKind::Global => {
                    ctx.state().set_global(&effect.module.clone(), effect.offset, effect.value);
                }
                SideEffectKind::OutputArg => {
                    // The simulated process has no byte-addressable memory, so
                    // output-argument writes are recorded in the log only.
                }
            }
        }

        let stack = ctx.stack().to_vec();
        let passthrough_result = if decision.call_original { ctx.call_next().ok() } else { None };

        {
            let mut state = self.inner.lock();
            state.log.injections.push(InjectionRecord {
                function: symbol.to_owned(),
                call_number: decision.call_number,
                retval: if decision.call_original { None } else { decision.retval },
                errno: decision.errno,
                side_effects: decision.side_effects.clone(),
                call_original: decision.call_original,
                stack,
            });
        }

        if decision.call_original {
            // Pass-through entries (argument modification, overhead runs)
            // return whatever the original returned.
            if let Some(result) = passthrough_result {
                self.record_observed(symbol, result);
            }
            passthrough_result.unwrap_or_else(|| decision.retval.unwrap_or(0))
        } else {
            decision.retval.unwrap_or(0)
        }
    }
}

fn trigger_matches(entry: &PlanEntry, call_number: u64, caller_stack: &[&str], rng: &mut StdRng) -> bool {
    if let Some(n) = entry.trigger.inject_at_call {
        if n != call_number {
            return false;
        }
    }
    if let Some(p) = entry.trigger.probability {
        if !rng.gen_bool(p.clamp(0.0, 1.0)) {
            return false;
        }
    }
    if !entry.trigger.stack_trace.is_empty() {
        // Frame i of the trigger must equal the i-th innermost caller frame.
        for (i, frame) in entry.trigger.stack_trace.iter().enumerate() {
            match caller_stack.get(i) {
                Some(actual) if *actual == frame => {}
                _ => return false,
            }
        }
    }
    true
}

fn resolve_action(entry: &PlanEntry, rng: &mut StdRng) -> (Option<i64>, Option<i64>, Vec<SideEffect>) {
    if entry.action.random_choices.is_empty() {
        return (entry.action.retval, entry.action.errno, entry.action.side_effects.clone());
    }
    let index = rng.gen_range(0..entry.action.random_choices.len());
    let choice = &entry.action.random_choices[index];
    let errno = choice
        .side_effects
        .iter()
        .find(|s| s.kind == SideEffectKind::Tls)
        .map(|s| s.value)
        .or(entry.action.errno);
    (Some(choice.retval), errno, choice.side_effects.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_profile::ErrorReturn;
    use lfi_runtime::Process;
    use lfi_scenario::{ArgOp, FaultAction, Trigger};

    fn libc() -> NativeLibrary {
        NativeLibrary::builder("libc.so.6")
            .function("read", |ctx| ctx.arg(2))
            .function("write", |ctx| ctx.arg(2))
            .constant("close", 0)
            .build()
    }

    fn process_with(plan: Plan) -> (Process, Injector) {
        let mut process = Process::new();
        process.load(libc());
        let injector = Injector::new(plan);
        process.preload(injector.synthesize_interceptor());
        (process, injector)
    }

    #[test]
    fn call_count_trigger_fires_exactly_once() {
        let plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(3),
            action: FaultAction::return_value(-1).with_errno(9),
        });
        let (mut process, injector) = process_with(plan);
        let results: Vec<i64> = (0..5).map(|_| process.call("read", &[3, 0, 64]).unwrap()).collect();
        assert_eq!(results, vec![64, 64, -1, 64, 64]);
        assert_eq!(process.state().errno(), 9);
        let log = injector.log();
        assert_eq!(log.injection_count(), 1);
        assert_eq!(log.injections[0].call_number, 3);
        assert_eq!(log.intercepted_calls, 5);
    }

    #[test]
    fn uninjected_calls_pass_through_untouched() {
        let plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(100),
            action: FaultAction::return_value(-1),
        });
        let (mut process, injector) = process_with(plan);
        for _ in 0..10 {
            assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), 8);
        }
        // Functions not named in the plan are not intercepted at all.
        assert_eq!(process.call("close", &[5]).unwrap(), 0);
        assert_eq!(injector.log().injection_count(), 0);
        assert_eq!(injector.log().intercepted_calls, 10);
    }

    #[test]
    fn stack_trace_trigger_only_fires_in_matching_context() {
        let plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(1).frame("refresh_files"),
            action: FaultAction::return_value(0).with_errno(9),
        });
        let (mut process, injector) = process_with(plan.clone());
        // Wrong context: no injection.
        assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), 8);
        drop(injector);

        let (mut process, injector) = process_with(plan);
        process.push_frame("refresh_files");
        assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), 0);
        process.pop_frame();
        assert_eq!(injector.log().injection_count(), 1);
        assert_eq!(injector.log().injections[0].stack, vec!["refresh_files".to_owned(), "read".to_owned()]);
    }

    #[test]
    fn argument_modification_with_passthrough() {
        // The paper's third example: 20th call to read, subtract 10 from the
        // byte count, pass the call on.
        let plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(2),
            action: FaultAction::default().passthrough().modify_arg(2, ArgOp::Sub, 10),
        });
        let (mut process, injector) = process_with(plan);
        assert_eq!(process.call("read", &[3, 0, 64]).unwrap(), 64);
        assert_eq!(process.call("read", &[3, 0, 64]).unwrap(), 54);
        assert_eq!(process.call("read", &[3, 0, 64]).unwrap(), 64);
        let log = injector.log();
        assert_eq!(log.injection_count(), 1);
        assert!(log.injections[0].call_original);
    }

    #[test]
    fn observed_returns_refine_an_incomplete_profile() {
        // The "original" read occasionally fails with -11 (EWOULDBLOCK-style)
        // — a value the static profile below does not list.  A monitoring
        // plan (a trigger that never fires) lets the controller watch the
        // pass-through traffic and report the missing value.
        let flaky = NativeLibrary::builder("libc.so.6")
            .function("read", |ctx| if ctx.arg(0) == 13 { -11 } else { ctx.arg(2) })
            .build();
        let plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(u64::MAX),
            action: FaultAction::return_value(-1),
        });
        let mut process = Process::new();
        process.load(flaky);
        let injector = Injector::new(plan);
        process.preload(injector.synthesize_interceptor());

        for fd in 0..20 {
            let _ = process.call("read", &[fd, 0, 64]).unwrap();
        }

        let observed = injector.observed_returns();
        assert_eq!(observed["read"][&-11], 1);
        assert_eq!(observed["read"][&64], 19);

        // A static profile that only knows about -1 gets refined with -11.
        let mut profile = lfi_profile::FaultProfile::new("libc.so.6");
        profile.push_function(lfi_profile::FunctionProfile {
            name: "read".into(),
            error_returns: vec![ErrorReturn::bare(-1)],
        });
        let findings = injector.refinement_findings(&[profile.clone()]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0], RefinementFinding { function: "read".into(), value: -11, occurrences: 1 });

        // Values the profile already lists, and non-negative values, are not
        // reported.
        profile.functions[0].error_returns.push(ErrorReturn::bare(-11));
        assert!(injector.refinement_findings(&[profile]).is_empty());

        // reset() forgets the observations.
        injector.reset();
        assert!(injector.observed_returns().is_empty());
    }

    #[test]
    fn passthrough_injections_also_feed_the_observation_record() {
        // A pass-through entry (argument modification) still lets the
        // original's return value be observed.
        let plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(1),
            action: FaultAction::default().passthrough().modify_arg(2, ArgOp::Sub, 10),
        });
        let (mut process, injector) = process_with(plan);
        assert_eq!(process.call("read", &[3, 0, 64]).unwrap(), 54);
        let observed = injector.observed_returns();
        assert_eq!(observed["read"][&54], 1);
    }

    #[test]
    fn indirect_calls_are_resolved_at_runtime_and_injected_per_callee() {
        // §3.1: "the LFI controller could dynamically resolve indirect calls
        // at runtime and inject the return codes corresponding to the
        // function being called".  The program calls `read` and `write`
        // exclusively through function pointers; each gets the error code its
        // own plan entry specifies.
        let plan = Plan::new()
            .entry(PlanEntry {
                function: "read".into(),
                trigger: Trigger::on_call(1),
                action: FaultAction::return_value(-1).with_errno(9),
            })
            .entry(PlanEntry {
                function: "write".into(),
                trigger: Trigger::on_call(1),
                action: FaultAction::return_value(-7).with_errno(28),
            });
        let (mut process, injector) = process_with(plan);
        let read_ptr = process.fnptr("read").unwrap();
        let write_ptr = process.fnptr("write").unwrap();

        assert_eq!(process.call_ptr(read_ptr, &[3, 0, 64]).unwrap(), -1);
        assert_eq!(process.state().errno(), 9);
        assert_eq!(process.call_ptr(write_ptr, &[3, 0, 64]).unwrap(), -7);
        assert_eq!(process.state().errno(), 28);
        // Subsequent indirect calls pass through (the triggers already fired).
        assert_eq!(process.call_ptr(read_ptr, &[3, 0, 64]).unwrap(), 64);

        let log = injector.log();
        assert_eq!(log.injection_count(), 2);
        let functions: Vec<&str> = log.injections.iter().map(|r| r.function.as_str()).collect();
        assert_eq!(functions, vec!["read", "write"]);
    }

    #[test]
    fn direct_and_indirect_calls_share_one_call_counter() {
        // A trigger on the 3rd call fires regardless of whether the calls
        // arrived directly or through a pointer.
        let plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(3),
            action: FaultAction::return_value(-1),
        });
        let (mut process, injector) = process_with(plan);
        let ptr = process.fnptr("read").unwrap();
        assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), 8);
        assert_eq!(process.call_ptr(ptr, &[3, 0, 8]).unwrap(), 8);
        assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), -1);
        assert_eq!(injector.log().injections[0].call_number, 3);
    }

    #[test]
    fn probability_trigger_injects_roughly_the_right_fraction() {
        let plan = Plan::new().with_seed(7).entry(PlanEntry {
            function: "write".into(),
            trigger: Trigger::with_probability(0.3),
            action: FaultAction {
                random_choices: vec![ErrorReturn::bare(-1), ErrorReturn::bare(-2)],
                ..FaultAction::default()
            },
        });
        let (mut process, injector) = process_with(plan);
        let mut failures = 0;
        for _ in 0..1000 {
            if process.call("write", &[1, 0, 16]).unwrap() < 0 {
                failures += 1;
            }
        }
        assert!((200..400).contains(&failures), "injected {failures} of 1000");
        assert_eq!(injector.log().injection_count(), failures);
        // Both choices get picked over time.
        let distinct: std::collections::HashSet<i64> =
            injector.log().injections.iter().filter_map(|r| r.retval).collect();
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn runs_are_reproducible_with_the_same_seed() {
        let plan = Plan::new().with_seed(11).entry(PlanEntry {
            function: "write".into(),
            trigger: Trigger::with_probability(0.5),
            action: FaultAction { random_choices: vec![ErrorReturn::bare(-1)], ..FaultAction::default() },
        });
        let run = |plan: Plan| {
            let (mut process, injector) = process_with(plan);
            let results: Vec<i64> = (0..50).map(|_| process.call("write", &[1, 0, 4]).unwrap()).collect();
            (results, injector.log().injection_count())
        };
        assert_eq!(run(plan.clone()), run(plan));
    }

    #[test]
    fn tls_side_effects_reach_process_state_and_errno() {
        let plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(1),
            action: FaultAction {
                retval: Some(-1),
                side_effects: vec![SideEffect::tls("libc.so.6", 0x12fff4, 5)],
                ..FaultAction::default()
            },
        });
        let (mut process, _injector) = process_with(plan);
        assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), -1);
        assert_eq!(process.state().tls("libc.so.6", 0x12fff4), 5);
        assert_eq!(process.state().errno(), 5);
    }

    #[test]
    fn replay_plan_reproduces_a_random_run_exactly() {
        let plan = Plan::new().with_seed(3).entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::with_probability(0.2),
            action: FaultAction {
                random_choices: vec![ErrorReturn::bare(-1), ErrorReturn::bare(-7)],
                ..FaultAction::default()
            },
        });
        let (mut process, injector) = process_with(plan);
        let original: Vec<i64> = (0..40).map(|_| process.call("read", &[3, 0, 32]).unwrap()).collect();
        let replay = injector.replay_plan();

        let (mut process2, injector2) = process_with(replay);
        let replayed: Vec<i64> = (0..40).map(|_| process2.call("read", &[3, 0, 32]).unwrap()).collect();
        assert_eq!(original, replayed);
        assert_eq!(injector.log().injection_count(), injector2.log().injection_count());
    }

    #[test]
    fn interceptors_for_multiple_libraries_coexist() {
        // §6.4: libc, libapr and libaprutil interceptors active at once.
        let apr = NativeLibrary::builder("libapr.so").function("apr_read", |ctx| ctx.arg(1)).build();
        let mut process = Process::new();
        process.load(libc());
        process.load(apr);
        let libc_plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(1),
            action: FaultAction::return_value(-1),
        });
        let apr_plan = Plan::new().entry(PlanEntry {
            function: "apr_read".into(),
            trigger: Trigger::on_call(1),
            action: FaultAction::return_value(-2),
        });
        let libc_injector = Injector::new(libc_plan);
        let apr_injector = Injector::new(apr_plan);
        process.preload(libc_injector.synthesize_interceptor_named("liblfi_libc.so"));
        process.preload(apr_injector.synthesize_interceptor_named("liblfi_apr.so"));
        assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), -1);
        assert_eq!(process.call("apr_read", &[0, 16]).unwrap(), -2);
        assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), 8);
        assert_eq!(libc_injector.log().injection_count(), 1);
        assert_eq!(apr_injector.log().injection_count(), 1);
    }

    #[test]
    fn reset_clears_counters_and_log() {
        let plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(1),
            action: FaultAction::return_value(-1),
        });
        let (mut process, injector) = process_with(plan);
        assert_eq!(process.call("read", &[0, 0, 8]).unwrap(), -1);
        injector.reset();
        assert_eq!(injector.log().injection_count(), 0);
        // After the reset the first call counts as call #1 again, so the
        // trigger fires again.
        assert_eq!(process.call("read", &[0, 0, 8]).unwrap(), -1);
    }

    #[test]
    fn interception_without_an_original_definition_degrades_to_success() {
        let plan = Plan::new().entry(PlanEntry {
            function: "only_in_profile".into(),
            trigger: Trigger::on_call(2),
            action: FaultAction::return_value(-1),
        });
        let mut process = Process::new();
        let injector = Injector::new(plan);
        process.preload(injector.synthesize_interceptor());
        assert_eq!(process.call("only_in_profile", &[]).unwrap(), 0);
        assert_eq!(process.call("only_in_profile", &[]).unwrap(), -1);
    }
}
