//! The runtime half of the LFI controller: interceptor synthesis and trigger
//! evaluation (§5.1).
//!
//! The per-call dispatch path is string-free and sharded: a plan is compiled
//! once into per-function slots ([`lfi_scenario::CompiledPlan`]), each
//! synthesized stub captures its slot index, per-function call counters are
//! lock-free atomics, and RNG streams and observed-return tallies live
//! behind per-slot locks.  The one injector-wide lock guards only the
//! injection log, and is taken only when a trigger actually fires —
//! pass-through traffic on different functions never contends.
//!
//! Stubs are additionally *specialized* at synthesis time: a slot whose plan
//! entries reduce to a single deterministic `(nth-call, retval, errno)` fault
//! (the shape every exploration [`FaultCell`](lfi_scenario::FaultCell)
//! compiles to) gets a stub with those parameters baked in, so its hot
//! pass-through path never walks entries or branches on trigger kinds.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lfi_intern::Symbol;
use lfi_profile::{FaultProfile, SideEffectKind};
use lfi_runtime::{CallContext, NativeLibrary};
use lfi_scenario::{CompiledEntry, CompiledFunction, CompiledSideEffect, Plan, StubSpecialization};

use crate::{InjectionRecord, TestLog};

/// Name given to synthesized interceptor libraries.
pub const INTERCEPTOR_LIBRARY_NAME: &str = "liblfi_interceptor.so";

/// The injection engine: owns the fault scenario (compiled to symbol-keyed
/// per-function slots), the per-function call counters (the `call_count`
/// static of the paper's stub), per-function random number generators for
/// probabilistic triggers, and the test log.
///
/// An [`Injector`] is cheap to clone; clones share the same state, which is
/// how every synthesized stub reaches the shared counters and log.
#[derive(Clone)]
pub struct Injector {
    shared: Arc<InjectorShared>,
}

struct InjectorShared {
    /// The authored plan, kept for [`Injector::intercepted_functions`] and
    /// report rendering; the hot path runs on the compiled slots below.
    plan: Plan,
    seed: u64,
    /// One slot per intercepted function, in first-appearance order; stubs
    /// index this directly (the slot index is baked into each stub at
    /// synthesis time, so dispatch does no lookup at all).
    slots: Vec<FunctionSlot>,
    /// Injections in the order they happened, in compact symbol/index form;
    /// materialized into [`InjectionRecord`]s only when a report is taken.
    log: Mutex<Vec<RawInjection>>,
    /// A shared pool of remaining injections, when the campaign runs under an
    /// [`ExecutionPolicy::injection_budget`](crate::ExecutionPolicy): every
    /// firing trigger first takes one token, and an empty pool demotes the
    /// call to a pass-through.  Shared across the injectors of concurrently
    /// running cases, so parallel workers cannot collectively overshoot.
    budget: Option<Arc<AtomicUsize>>,
}

/// The per-function shard: immutable compiled entries, the call counter, and
/// the remaining mutable trigger state behind its own lock.
struct FunctionSlot {
    function: CompiledFunction,
    /// Calls intercepted so far — the `call_count` static of the paper's
    /// stub.  Hoisted out of the slot lock so specialized stubs (and the
    /// counting half of the general stub) dispatch on a single atomic
    /// increment; each intercepted call still observes a unique ordinal.
    calls: AtomicU64,
    state: Mutex<SlotState>,
}

struct SlotState {
    rng: StdRng,
    /// Return values observed on calls that reached the original definition,
    /// with occurrence counts — the raw material for dynamic profile
    /// refinement.
    observed: BTreeMap<i64, u64>,
}

/// One injection in compact form: slot/entry/choice indices instead of
/// names, stack frames as symbols.  No strings are allocated when this is
/// recorded; names are resolved when the log is materialized.
#[derive(Clone)]
struct RawInjection {
    slot: u32,
    entry: u32,
    choice: Option<u32>,
    call_number: u64,
    retval: Option<i64>,
    errno: Option<i64>,
    call_original: bool,
    stack: Vec<Symbol>,
}

/// An error return value observed at run time that the static fault profile
/// does not list.
///
/// §3.1 notes two ways static profiles can be incomplete: error codes hidden
/// behind indirect calls (false negatives) and the general reliance on what
/// the binary alone reveals.  Related work (Süßkraut & Fetzer, §7) learns
/// error values by observing execution; the LFI controller is in the perfect
/// position to do the same for free, because every pass-through call already
/// flows through its stubs.  A finding is a *candidate* new fault — it still
/// needs the usual vetting before being added to a profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefinementFinding {
    /// The intercepted function.
    pub function: String,
    /// The observed return value missing from the profile.
    pub value: i64,
    /// How many times it was observed.
    pub occurrences: u64,
}

/// What a stub decided to do for one intercepted call: indices into the
/// slot's compiled entries plus the resolved return value/errno.  `Copy`, so
/// carrying it out of the slot lock costs nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Decision {
    entry_index: usize,
    choice_index: Option<usize>,
    retval: Option<i64>,
    errno: Option<i64>,
    call_number: u64,
}

/// Decorrelates sibling slot RNG streams (SplitMix64 finalizer over the slot
/// index) while keeping them a pure function of the plan seed, so runs stay
/// reproducible.
fn slot_seed(seed: u64, slot_index: usize) -> u64 {
    let mut z = seed ^ (slot_index as u64).wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Injector {
    /// Creates an injection engine for a fault scenario, compiling the plan
    /// to symbol-keyed per-function slots (the resolve-once half of the
    /// fast path).  The random seed is taken from the plan (or 0 when
    /// absent) so runs are reproducible.
    pub fn new(plan: Plan) -> Self {
        Self::with_budget(plan, None)
    }

    /// Creates an injection engine that additionally draws every injection
    /// from a shared token pool: each firing trigger consumes one token, and
    /// once the pool is empty every further call passes through uninjected.
    /// The campaign driver hands the *same* pool to every case of a budgeted
    /// campaign, which is what makes the budget a hard global bound even
    /// under `parallelism(n)`.
    pub fn with_budget(plan: Plan, budget: Option<Arc<AtomicUsize>>) -> Self {
        let seed = plan.seed.unwrap_or(0);
        let compiled = plan.compile();
        let slots = compiled
            .functions
            .into_iter()
            .enumerate()
            .map(|(index, function)| FunctionSlot {
                function,
                calls: AtomicU64::new(0),
                state: Mutex::new(SlotState {
                    rng: StdRng::seed_from_u64(slot_seed(seed, index)),
                    observed: BTreeMap::new(),
                }),
            })
            .collect();
        Self { shared: Arc::new(InjectorShared { plan, seed, slots, log: Mutex::new(Vec::new()), budget }) }
    }

    /// Takes one token from the shared injection budget; `true` when no
    /// budget is configured.  Lock-free: a compare-exchange loop over the
    /// shared counter, so concurrent stubs in different worker processes
    /// serialize only on this one atomic.
    fn try_consume_budget(&self) -> bool {
        match &self.shared.budget {
            None => true,
            Some(budget) => budget.fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1)).is_ok(),
        }
    }

    /// The return values observed on calls that reached the original library
    /// (either untriggered calls or pass-through injections), per function,
    /// with occurrence counts.
    pub fn observed_returns(&self) -> BTreeMap<String, BTreeMap<i64, u64>> {
        let mut result = BTreeMap::new();
        for slot in &self.shared.slots {
            let state = slot.state.lock();
            if !state.observed.is_empty() {
                result.insert(slot.function.symbol.as_str().to_owned(), state.observed.clone());
            }
        }
        result
    }

    /// Diffs the observed behaviour against a set of static fault profiles
    /// and returns every *negative* return value seen at run time that no
    /// profile lists for that function — dynamic refinement of the static
    /// analysis (§3.1's indirect-call false negatives are the typical cause).
    pub fn refinement_findings(&self, profiles: &[FaultProfile]) -> Vec<RefinementFinding> {
        let observed = self.observed_returns();
        let mut findings = Vec::new();
        for (function, values) in observed {
            let profiled: Option<std::collections::BTreeSet<i64>> =
                profiles.iter().find_map(|p| p.function(&function)).map(|f| f.error_values());
            for (value, occurrences) in values {
                if value >= 0 {
                    continue;
                }
                let known = profiled.as_ref().is_some_and(|set| set.contains(&value));
                if !known {
                    findings.push(RefinementFinding { function: function.clone(), value, occurrences });
                }
            }
        }
        findings
    }

    /// The functions this injector will intercept.
    pub fn intercepted_functions(&self) -> Vec<String> {
        self.shared.plan.intercepted_functions().into_iter().map(str::to_owned).collect()
    }

    /// Synthesizes the interceptor library: one stub per function named in the
    /// plan.  Load it with [`lfi_runtime::Process::preload`] so it shadows the
    /// original definitions, exactly as `LD_PRELOAD` does for the real tool.
    pub fn synthesize_interceptor(&self) -> NativeLibrary {
        self.synthesize_interceptor_named(INTERCEPTOR_LIBRARY_NAME)
    }

    /// Synthesizes the interceptor library under a custom name.  Interceptors
    /// for multiple plans can coexist in one process (§6.4 runs libc, libapr
    /// and libaprutil interceptors simultaneously); they do not interfere
    /// because stubs are keyed purely by function symbol.  Each stub captures
    /// its slot index, so per-call dispatch performs no name lookup at all.
    ///
    /// Stubs are specialized per slot at synthesis time (see
    /// [`StubSpecialization`]): a function whose entries reduce to one
    /// deterministic `(nth-call, retval, errno)` fault gets a stub with those
    /// parameters baked in, whose miss path is a single counter bump and
    /// compare; every other entry mix gets the general entry-walking stub.
    pub fn synthesize_interceptor_named(&self, library_name: &str) -> NativeLibrary {
        let mut builder = NativeLibrary::builder(library_name);
        for (slot_index, slot) in self.shared.slots.iter().enumerate() {
            let engine = self.clone();
            builder = match slot.function.specialization() {
                StubSpecialization::DeterministicFault { ordinal, retval, errno } => builder
                    .function_sym(slot.function.symbol, move |ctx| {
                        engine.deterministic_stub(slot_index, ordinal, retval, errno, ctx)
                    }),
                StubSpecialization::General => {
                    builder.function_sym(slot.function.symbol, move |ctx| engine.stub_body(slot_index, ctx))
                }
            };
        }
        builder.build()
    }

    /// A snapshot of the log so far (names and side effects are resolved
    /// here, on the report path — never per call).  The intercepted-call
    /// total is the sum of the per-slot counters, so taking a snapshot is
    /// the only place the shards are read together.
    pub fn log(&self) -> TestLog {
        // Snapshot the compact records first (symbol-vec memcpys) so the log
        // lock is not held across the string-allocating materialization —
        // concurrently triggered stubs only ever wait for the memcpy.
        let raw = self.shared.log.lock().clone();
        let injections = raw.iter().map(|record| self.materialize(record)).collect();
        let mut calls_per_function: Vec<(Symbol, u64)> = self
            .shared
            .slots
            .iter()
            .filter_map(|slot| {
                let count = slot.calls.load(Ordering::Relaxed);
                (count > 0).then_some((slot.function.symbol, count))
            })
            .collect();
        calls_per_function.sort_unstable_by_key(|(symbol, _)| symbol.as_str());
        let intercepted_calls = calls_per_function.iter().map(|(_, count)| count).sum();
        TestLog { injections, intercepted_calls, calls_per_function }
    }

    /// The replay script distilled from the log so far (§5.2).
    pub fn replay_plan(&self) -> Plan {
        self.log().replay_plan()
    }

    /// Resets call counters, RNG streams, the log and the observed-return
    /// record, keeping the plan (used between repetitions of a workload).
    pub fn reset(&self) {
        for (index, slot) in self.shared.slots.iter().enumerate() {
            slot.calls.store(0, Ordering::Relaxed);
            let mut state = slot.state.lock();
            state.rng = StdRng::seed_from_u64(slot_seed(self.shared.seed, index));
            state.observed.clear();
        }
        self.shared.log.lock().clear();
    }

    /// Records a return value that came back from the original definition.
    fn record_observed(&self, slot_index: usize, value: i64) {
        let mut state = self.shared.slots[slot_index].state.lock();
        *state.observed.entry(value).or_insert(0) += 1;
    }

    /// Resolves one compact log record into the user-facing form.
    fn materialize(&self, record: &RawInjection) -> InjectionRecord {
        let slot = &self.shared.slots[record.slot as usize];
        let entry = &slot.function.entries[record.entry as usize];
        let side_effects = entry.side_effects_for(record.choice.map(|c| c as usize));
        InjectionRecord {
            function: slot.function.symbol,
            call_number: record.call_number,
            retval: record.retval,
            errno: record.errno,
            side_effects: side_effects.iter().copied().map(CompiledSideEffect::to_side_effect).collect(),
            call_original: record.call_original,
            stack: record.stack.clone(),
        }
    }

    /// The body shared by every synthesized stub.  Touches no state shared
    /// across functions: the slot's own lock covers the call count (from
    /// which the log's intercepted-call total is derived at snapshot time).
    fn stub_body(&self, slot_index: usize, ctx: &mut CallContext<'_>) -> i64 {
        let decision = self.decide(slot_index, ctx);
        match decision {
            None => {
                // No trigger fired: clean up and jump to the original, as the
                // paper's stub does.  If there is no original definition the
                // call degenerates to a no-op success.
                let result = ctx.call_next().unwrap_or(0);
                self.record_observed(slot_index, result);
                result
            }
            Some(decision) => self.apply(slot_index, decision, ctx),
        }
    }

    /// The specialized stub for a [`StubSpecialization::DeterministicFault`]
    /// slot: the trigger parameters are baked in at synthesis time, so the
    /// pass-through path is one atomic counter bump and one compare — no
    /// entry walk, no trigger-kind branching, no slot lock.  Behaviour
    /// (counters, budget, log records, observed returns) is identical to the
    /// general stub running the same single-entry plan.
    fn deterministic_stub(
        &self,
        slot_index: usize,
        ordinal: u64,
        retval: Option<i64>,
        errno: Option<i64>,
        ctx: &mut CallContext<'_>,
    ) -> i64 {
        let slot = &self.shared.slots[slot_index];
        let call_number = slot.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if call_number != ordinal || !self.try_consume_budget() {
            let result = ctx.call_next().unwrap_or(0);
            self.record_observed(slot_index, result);
            return result;
        }
        if let Some(errno) = errno {
            ctx.set_errno(errno);
        }
        let stack = ctx.stack().to_vec();
        self.shared.log.lock().push(RawInjection {
            slot: slot_index as u32,
            entry: 0,
            choice: None,
            call_number,
            retval,
            errno,
            call_original: false,
            stack,
        });
        retval.unwrap_or(0)
    }

    /// Evaluates the slot's triggers for one intercepted call.  Holds only
    /// the slot's own lock; calls to other functions proceed in parallel.
    fn decide(&self, slot_index: usize, ctx: &CallContext<'_>) -> Option<Decision> {
        let slot = &self.shared.slots[slot_index];
        let call_number = slot.calls.fetch_add(1, Ordering::Relaxed) + 1;
        let mut state = slot.state.lock();

        // The stack excluding the frame of the intercepted call itself: what
        // the paper's `<stacktrace>` frames are matched against.  Inspected
        // in place — no snapshot, no allocation — and only when some trigger
        // for this function actually looks at the stack.
        let caller_stack: &[Symbol] = if slot.function.stack_sensitive {
            let stack = ctx.stack();
            &stack[..stack.len().saturating_sub(1)]
        } else {
            &[]
        };

        for (entry_index, entry) in slot.function.entries.iter().enumerate() {
            if !trigger_matches(entry, call_number, caller_stack, &mut state.rng) {
                continue;
            }
            if !self.try_consume_budget() {
                // The campaign-wide injection budget is spent: the trigger
                // matched but no token is left, so the call (and every later
                // one) passes through uninjected.
                return None;
            }
            let (choice_index, retval, errno) = resolve_action(entry, &mut state.rng);
            return Some(Decision { entry_index, choice_index, retval, errno, call_number });
        }
        None
    }

    /// Applies a decision: argument rewrites, errno, side effects,
    /// pass-through and the injected return value; then logs the injection.
    /// The injector-wide lock is taken only for the log append.
    fn apply(&self, slot_index: usize, decision: Decision, ctx: &mut CallContext<'_>) -> i64 {
        let slot = &self.shared.slots[slot_index];
        let entry = &slot.function.entries[decision.entry_index];
        for modification in &entry.arg_modifications {
            let current = ctx.arg(modification.argument as usize);
            ctx.set_arg(modification.argument as usize, modification.op.apply(current, modification.value));
        }
        if let Some(errno) = decision.errno {
            ctx.set_errno(errno);
        }
        for effect in entry.side_effects_for(decision.choice_index) {
            match effect.kind {
                SideEffectKind::Tls => {
                    ctx.state().set_tls_sym(effect.module, effect.offset, effect.value);
                    // errno lives in TLS; reflect the canonical value too so
                    // programs that read errno through the process state see
                    // the injected error.
                    ctx.set_errno(effect.value);
                }
                SideEffectKind::Global => {
                    ctx.state().set_global_sym(effect.module, effect.offset, effect.value);
                }
                SideEffectKind::OutputArg => {
                    // The simulated process has no byte-addressable memory, so
                    // output-argument writes are recorded in the log only.
                }
            }
        }

        let stack = ctx.stack().to_vec();
        let passthrough_result = if entry.call_original { ctx.call_next().ok() } else { None };

        self.shared.log.lock().push(RawInjection {
            slot: slot_index as u32,
            entry: decision.entry_index as u32,
            choice: decision.choice_index.map(|c| c as u32),
            call_number: decision.call_number,
            retval: if entry.call_original { None } else { decision.retval },
            errno: decision.errno,
            call_original: entry.call_original,
            stack,
        });

        if entry.call_original {
            // Pass-through entries (argument modification, overhead runs)
            // return whatever the original returned.
            if let Some(result) = passthrough_result {
                self.record_observed(slot_index, result);
            }
            passthrough_result.unwrap_or_else(|| decision.retval.unwrap_or(0))
        } else {
            decision.retval.unwrap_or(0)
        }
    }
}

impl std::fmt::Debug for Injector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Injector")
            .field("functions", &self.shared.slots.len())
            .field("entries", &self.shared.plan.len())
            .field("seed", &self.shared.seed)
            .finish()
    }
}

fn trigger_matches(entry: &CompiledEntry, call_number: u64, caller_stack: &[Symbol], rng: &mut StdRng) -> bool {
    if let Some(n) = entry.inject_at_call {
        if n != call_number {
            return false;
        }
    }
    if let Some(p) = entry.probability {
        if !rng.gen_bool(p.clamp(0.0, 1.0)) {
            return false;
        }
    }
    // Frame i of the trigger must equal the i-th innermost caller frame —
    // compared by symbol id, in place.
    for (i, &frame) in entry.stack_trace.iter().enumerate() {
        match caller_stack.len().checked_sub(1 + i).map(|index| caller_stack[index]) {
            Some(actual) if actual == frame => {}
            _ => return false,
        }
    }
    true
}

fn resolve_action(entry: &CompiledEntry, rng: &mut StdRng) -> (Option<usize>, Option<i64>, Option<i64>) {
    if entry.random_choices.is_empty() {
        return (None, entry.retval, entry.errno);
    }
    let index = rng.gen_range(0..entry.random_choices.len());
    let choice = &entry.random_choices[index];
    let errno = choice
        .side_effects
        .iter()
        .find(|s| s.kind == SideEffectKind::Tls)
        .map(|s| s.value)
        .or(entry.errno);
    (Some(index), Some(choice.retval), errno)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_profile::{ErrorReturn, SideEffect};
    use lfi_runtime::Process;
    use lfi_scenario::{ArgOp, FaultAction, Plan, PlanEntry, Trigger};

    fn libc() -> NativeLibrary {
        NativeLibrary::builder("libc.so.6")
            .function("read", |ctx| ctx.arg(2))
            .function("write", |ctx| ctx.arg(2))
            .constant("close", 0)
            .build()
    }

    fn process_with(plan: Plan) -> (Process, Injector) {
        let mut process = Process::new();
        process.load(libc());
        let injector = Injector::new(plan);
        process.preload(injector.synthesize_interceptor());
        (process, injector)
    }

    #[test]
    fn call_count_trigger_fires_exactly_once() {
        let plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(3),
            action: FaultAction::return_value(-1).with_errno(9),
        });
        let (mut process, injector) = process_with(plan);
        let results: Vec<i64> = (0..5).map(|_| process.call("read", &[3, 0, 64]).unwrap()).collect();
        assert_eq!(results, vec![64, 64, -1, 64, 64]);
        assert_eq!(process.state().errno(), 9);
        let log = injector.log();
        assert_eq!(log.injection_count(), 1);
        assert_eq!(log.injections[0].call_number, 3);
        assert_eq!(log.intercepted_calls, 5);
    }

    #[test]
    fn uninjected_calls_pass_through_untouched() {
        let plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(100),
            action: FaultAction::return_value(-1),
        });
        let (mut process, injector) = process_with(plan);
        for _ in 0..10 {
            assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), 8);
        }
        // Functions not named in the plan are not intercepted at all.
        assert_eq!(process.call("close", &[5]).unwrap(), 0);
        assert_eq!(injector.log().injection_count(), 0);
        assert_eq!(injector.log().intercepted_calls, 10);
    }

    #[test]
    fn stack_trace_trigger_only_fires_in_matching_context() {
        let plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(1).frame("refresh_files"),
            action: FaultAction::return_value(0).with_errno(9),
        });
        let (mut process, injector) = process_with(plan.clone());
        // Wrong context: no injection.
        assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), 8);
        drop(injector);

        let (mut process, injector) = process_with(plan);
        process.push_frame("refresh_files");
        assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), 0);
        process.pop_frame();
        assert_eq!(injector.log().injection_count(), 1);
        assert_eq!(injector.log().injections[0].stack, vec!["refresh_files", "read"]);
    }

    #[test]
    fn argument_modification_with_passthrough() {
        // The paper's third example: 20th call to read, subtract 10 from the
        // byte count, pass the call on.
        let plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(2),
            action: FaultAction::default().passthrough().modify_arg(2, ArgOp::Sub, 10),
        });
        let (mut process, injector) = process_with(plan);
        assert_eq!(process.call("read", &[3, 0, 64]).unwrap(), 64);
        assert_eq!(process.call("read", &[3, 0, 64]).unwrap(), 54);
        assert_eq!(process.call("read", &[3, 0, 64]).unwrap(), 64);
        let log = injector.log();
        assert_eq!(log.injection_count(), 1);
        assert!(log.injections[0].call_original);
    }

    #[test]
    fn observed_returns_refine_an_incomplete_profile() {
        // The "original" read occasionally fails with -11 (EWOULDBLOCK-style)
        // — a value the static profile below does not list.  A monitoring
        // plan (a trigger that never fires) lets the controller watch the
        // pass-through traffic and report the missing value.
        let flaky = NativeLibrary::builder("libc.so.6")
            .function("read", |ctx| if ctx.arg(0) == 13 { -11 } else { ctx.arg(2) })
            .build();
        let plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(u64::MAX),
            action: FaultAction::return_value(-1),
        });
        let mut process = Process::new();
        process.load(flaky);
        let injector = Injector::new(plan);
        process.preload(injector.synthesize_interceptor());

        for fd in 0..20 {
            let _ = process.call("read", &[fd, 0, 64]).unwrap();
        }

        let observed = injector.observed_returns();
        assert_eq!(observed["read"][&-11], 1);
        assert_eq!(observed["read"][&64], 19);

        // A static profile that only knows about -1 gets refined with -11.
        let mut profile = lfi_profile::FaultProfile::new("libc.so.6");
        profile.push_function(lfi_profile::FunctionProfile {
            name: "read".into(),
            error_returns: vec![ErrorReturn::bare(-1)],
        });
        let findings = injector.refinement_findings(&[profile.clone()]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0], RefinementFinding { function: "read".into(), value: -11, occurrences: 1 });

        // Values the profile already lists, and non-negative values, are not
        // reported.
        profile.functions[0].error_returns.push(ErrorReturn::bare(-11));
        assert!(injector.refinement_findings(&[profile]).is_empty());

        // reset() forgets the observations.
        injector.reset();
        assert!(injector.observed_returns().is_empty());
    }

    #[test]
    fn passthrough_injections_also_feed_the_observation_record() {
        // A pass-through entry (argument modification) still lets the
        // original's return value be observed.
        let plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(1),
            action: FaultAction::default().passthrough().modify_arg(2, ArgOp::Sub, 10),
        });
        let (mut process, injector) = process_with(plan);
        assert_eq!(process.call("read", &[3, 0, 64]).unwrap(), 54);
        let observed = injector.observed_returns();
        assert_eq!(observed["read"][&54], 1);
    }

    #[test]
    fn indirect_calls_are_resolved_at_runtime_and_injected_per_callee() {
        // §3.1: "the LFI controller could dynamically resolve indirect calls
        // at runtime and inject the return codes corresponding to the
        // function being called".  The program calls `read` and `write`
        // exclusively through function pointers; each gets the error code its
        // own plan entry specifies.
        let plan = Plan::new()
            .entry(PlanEntry {
                function: "read".into(),
                trigger: Trigger::on_call(1),
                action: FaultAction::return_value(-1).with_errno(9),
            })
            .entry(PlanEntry {
                function: "write".into(),
                trigger: Trigger::on_call(1),
                action: FaultAction::return_value(-7).with_errno(28),
            });
        let (mut process, injector) = process_with(plan);
        let read_ptr = process.fnptr("read").unwrap();
        let write_ptr = process.fnptr("write").unwrap();

        assert_eq!(process.call_ptr(read_ptr, &[3, 0, 64]).unwrap(), -1);
        assert_eq!(process.state().errno(), 9);
        assert_eq!(process.call_ptr(write_ptr, &[3, 0, 64]).unwrap(), -7);
        assert_eq!(process.state().errno(), 28);
        // Subsequent indirect calls pass through (the triggers already fired).
        assert_eq!(process.call_ptr(read_ptr, &[3, 0, 64]).unwrap(), 64);

        let log = injector.log();
        assert_eq!(log.injection_count(), 2);
        let functions: Vec<&str> = log.injections.iter().map(|r| r.function.as_str()).collect();
        assert_eq!(functions, vec!["read", "write"]);
    }

    #[test]
    fn direct_and_indirect_calls_share_one_call_counter() {
        // A trigger on the 3rd call fires regardless of whether the calls
        // arrived directly or through a pointer.
        let plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(3),
            action: FaultAction::return_value(-1),
        });
        let (mut process, injector) = process_with(plan);
        let ptr = process.fnptr("read").unwrap();
        assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), 8);
        assert_eq!(process.call_ptr(ptr, &[3, 0, 8]).unwrap(), 8);
        assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), -1);
        assert_eq!(injector.log().injections[0].call_number, 3);
    }

    #[test]
    fn probability_trigger_injects_roughly_the_right_fraction() {
        let plan = Plan::new().with_seed(7).entry(PlanEntry {
            function: "write".into(),
            trigger: Trigger::with_probability(0.3),
            action: FaultAction {
                random_choices: vec![ErrorReturn::bare(-1), ErrorReturn::bare(-2)],
                ..FaultAction::default()
            },
        });
        let (mut process, injector) = process_with(plan);
        let mut failures = 0;
        for _ in 0..1000 {
            if process.call("write", &[1, 0, 16]).unwrap() < 0 {
                failures += 1;
            }
        }
        assert!((200..400).contains(&failures), "injected {failures} of 1000");
        assert_eq!(injector.log().injection_count(), failures);
        // Both choices get picked over time.
        let distinct: std::collections::HashSet<i64> =
            injector.log().injections.iter().filter_map(|r| r.retval).collect();
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn runs_are_reproducible_with_the_same_seed() {
        let plan = Plan::new().with_seed(11).entry(PlanEntry {
            function: "write".into(),
            trigger: Trigger::with_probability(0.5),
            action: FaultAction { random_choices: vec![ErrorReturn::bare(-1)], ..FaultAction::default() },
        });
        let run = |plan: Plan| {
            let (mut process, injector) = process_with(plan);
            let results: Vec<i64> = (0..50).map(|_| process.call("write", &[1, 0, 4]).unwrap()).collect();
            (results, injector.log().injection_count())
        };
        assert_eq!(run(plan.clone()), run(plan));
    }

    #[test]
    fn tls_side_effects_reach_process_state_and_errno() {
        let plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(1),
            action: FaultAction {
                retval: Some(-1),
                side_effects: vec![SideEffect::tls("libc.so.6", 0x12fff4, 5)],
                ..FaultAction::default()
            },
        });
        let (mut process, _injector) = process_with(plan);
        assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), -1);
        assert_eq!(process.state().tls("libc.so.6", 0x12fff4), 5);
        assert_eq!(process.state().errno(), 5);
    }

    #[test]
    fn replay_plan_reproduces_a_random_run_exactly() {
        let plan = Plan::new().with_seed(3).entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::with_probability(0.2),
            action: FaultAction {
                random_choices: vec![ErrorReturn::bare(-1), ErrorReturn::bare(-7)],
                ..FaultAction::default()
            },
        });
        let (mut process, injector) = process_with(plan);
        let original: Vec<i64> = (0..40).map(|_| process.call("read", &[3, 0, 32]).unwrap()).collect();
        let replay = injector.replay_plan();

        let (mut process2, injector2) = process_with(replay);
        let replayed: Vec<i64> = (0..40).map(|_| process2.call("read", &[3, 0, 32]).unwrap()).collect();
        assert_eq!(original, replayed);
        assert_eq!(injector.log().injection_count(), injector2.log().injection_count());
    }

    #[test]
    fn interceptors_for_multiple_libraries_coexist() {
        // §6.4: libc, libapr and libaprutil interceptors active at once.
        let apr = NativeLibrary::builder("libapr.so").function("apr_read", |ctx| ctx.arg(1)).build();
        let mut process = Process::new();
        process.load(libc());
        process.load(apr);
        let libc_plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(1),
            action: FaultAction::return_value(-1),
        });
        let apr_plan = Plan::new().entry(PlanEntry {
            function: "apr_read".into(),
            trigger: Trigger::on_call(1),
            action: FaultAction::return_value(-2),
        });
        let libc_injector = Injector::new(libc_plan);
        let apr_injector = Injector::new(apr_plan);
        process.preload(libc_injector.synthesize_interceptor_named("lfi_libc.so"));
        process.preload(apr_injector.synthesize_interceptor_named("lfi_apr.so"));
        assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), -1);
        assert_eq!(process.call("apr_read", &[0, 16]).unwrap(), -2);
        assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), 8);
        assert_eq!(libc_injector.log().injection_count(), 1);
        assert_eq!(apr_injector.log().injection_count(), 1);
    }

    #[test]
    fn reset_clears_counters_and_log() {
        let plan = Plan::new().entry(PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(1),
            action: FaultAction::return_value(-1),
        });
        let (mut process, injector) = process_with(plan);
        assert_eq!(process.call("read", &[0, 0, 8]).unwrap(), -1);
        injector.reset();
        assert_eq!(injector.log().injection_count(), 0);
        // After the reset the first call counts as call #1 again, so the
        // trigger fires again.
        assert_eq!(process.call("read", &[0, 0, 8]).unwrap(), -1);
    }

    #[test]
    fn interception_without_an_original_definition_degrades_to_success() {
        let plan = Plan::new().entry(PlanEntry {
            function: "only_in_profile".into(),
            trigger: Trigger::on_call(2),
            action: FaultAction::return_value(-1),
        });
        let mut process = Process::new();
        let injector = Injector::new(plan);
        process.preload(injector.synthesize_interceptor());
        assert_eq!(process.call("only_in_profile", &[]).unwrap(), 0);
        assert_eq!(process.call("only_in_profile", &[]).unwrap(), -1);
    }

    #[test]
    fn plan_entries_for_unknown_functions_pass_through_for_the_rest() {
        // A plan that names a function no library defines does not disturb
        // injection (or pass-through) on the functions that do exist.
        let plan = Plan::new()
            .entry(PlanEntry {
                function: "no_such_function_anywhere".into(),
                trigger: Trigger::on_call(1),
                action: FaultAction::return_value(-1),
            })
            .entry(PlanEntry {
                function: "read".into(),
                trigger: Trigger::on_call(2),
                action: FaultAction::return_value(-9),
            });
        let (mut process, injector) = process_with(plan);
        assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), 8);
        assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), -9);
        assert_eq!(injector.log().injection_count(), 1);
    }

    #[test]
    fn specialized_and_general_stubs_are_observably_identical() {
        // The same deterministic fault, expressed two ways: alone (compiles
        // to the specialized stub) and alongside a never-firing second entry
        // (defeats specialization, runs the general entry walk).  Results,
        // errno, logs and observed returns must not differ.
        let fault = PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(3),
            action: FaultAction::return_value(-1).with_errno(9),
        };
        let never = PlanEntry {
            function: "read".into(),
            trigger: Trigger::on_call(u64::MAX),
            action: FaultAction::return_value(-2),
        };
        let specialized = Plan::new().entry(fault.clone());
        let general = Plan::new().entry(fault).entry(never);
        assert_ne!(
            specialized.compile().functions[0].specialization(),
            general.compile().functions[0].specialization(),
            "the two plans must exercise different stub shapes"
        );

        let drive = |plan: Plan| {
            let (mut process, injector) = process_with(plan);
            let results: Vec<i64> = (0..6).map(|_| process.call("read", &[3, 0, 64]).unwrap()).collect();
            (results, process.state().errno(), injector.log(), injector.observed_returns())
        };
        let (results_s, errno_s, log_s, observed_s) = drive(specialized);
        let (results_g, errno_g, log_g, observed_g) = drive(general);
        assert_eq!(results_s, results_g);
        assert_eq!(errno_s, errno_g);
        assert_eq!(log_s.injections, log_g.injections);
        assert_eq!(log_s.intercepted_calls, log_g.intercepted_calls);
        assert_eq!(log_s.calls_per_function, log_g.calls_per_function);
        assert_eq!(observed_s, observed_g);
    }

    #[test]
    fn specialized_stub_honours_the_shared_budget_and_reset() {
        // One token across two deterministic single-entry plans: only the
        // first trigger to fire injects; the other call passes through.
        let budget = Arc::new(AtomicUsize::new(1));
        let plan_for = |function: &str| {
            Plan::new().entry(PlanEntry {
                function: function.into(),
                trigger: Trigger::on_call(1),
                action: FaultAction::return_value(-1).with_errno(9),
            })
        };
        let read_injector = Injector::with_budget(plan_for("read"), Some(Arc::clone(&budget)));
        let write_injector = Injector::with_budget(plan_for("write"), Some(Arc::clone(&budget)));
        let mut process = Process::new();
        process.load(libc());
        process.preload(read_injector.synthesize_interceptor_named("lfi_read.so"));
        process.preload(write_injector.synthesize_interceptor_named("lfi_write.so"));
        assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), -1);
        assert_eq!(process.call("write", &[1, 0, 8]).unwrap(), 8, "budget spent: pass through");
        assert_eq!(read_injector.log().injection_count(), 1);
        assert_eq!(write_injector.log().injection_count(), 0);
        // The pass-through miss still fed the observation record.
        assert_eq!(write_injector.observed_returns()["write"][&8], 1);

        // reset() rewinds the specialized stub's atomic counter too.
        read_injector.reset();
        assert_eq!(read_injector.log().intercepted_calls, 0);
        budget.store(1, Ordering::SeqCst);
        assert_eq!(process.call("read", &[3, 0, 8]).unwrap(), -1, "ordinal 1 fires again after reset");
    }

    #[test]
    fn sharded_state_keeps_per_function_counters_independent_under_threads() {
        // Two functions hammered from two threads: each slot counts its own
        // calls, and the call-count triggers fire at exactly the right
        // ordinal on both, no matter how the threads interleave.
        let plan = Plan::new()
            .entry(PlanEntry {
                function: "read".into(),
                trigger: Trigger::on_call(500),
                action: FaultAction::return_value(-1),
            })
            .entry(PlanEntry {
                function: "write".into(),
                trigger: Trigger::on_call(300),
                action: FaultAction::return_value(-2),
            });
        let injector = Injector::new(plan);
        let interceptor = injector.synthesize_interceptor();
        let mut template = Process::new();
        template.load(libc());
        template.preload(interceptor);

        std::thread::scope(|scope| {
            let mut read_process = template.clone();
            let mut write_process = template.clone();
            scope.spawn(move || {
                for _ in 0..1000 {
                    let _ = read_process.call("read", &[3, 0, 8]);
                }
            });
            scope.spawn(move || {
                for _ in 0..1000 {
                    let _ = write_process.call("write", &[1, 0, 8]);
                }
            });
        });

        let log = injector.log();
        assert_eq!(log.intercepted_calls, 2000);
        assert_eq!(log.injection_count(), 2);
        let mut fired: Vec<(&str, u64)> = log.injections.iter().map(|r| (r.function.as_str(), r.call_number)).collect();
        fired.sort_unstable();
        assert_eq!(fired, vec![("read", 500), ("write", 300)]);
    }
}
