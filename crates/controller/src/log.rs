use std::fmt;

use lfi_intern::Symbol;
use lfi_profile::SideEffect;
use serde::{Deserialize, Serialize};

use lfi_scenario::{FaultAction, Plan, PlanEntry, Trigger};

/// One injection performed by the controller, as recorded in the LFI log
/// (§5.2: "a text file that records each injection, the applied side effects,
/// and the events that triggered that injection").
///
/// Function and stack-frame names are stored as interned [`Symbol`]s — the
/// hot path that records them never allocates a string; names are resolved
/// when a report is rendered ([`TestLog::to_text`]) or via
/// [`InjectionRecord::function_name`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// Intercepted function.
    pub function: Symbol,
    /// Which call to the function this was (1-based).
    pub call_number: u64,
    /// Return value injected, if the call was not passed through.
    pub retval: Option<i64>,
    /// errno value injected, if any.
    pub errno: Option<i64>,
    /// Side effects applied.
    pub side_effects: Vec<SideEffect>,
    /// Whether the original function was still invoked.
    pub call_original: bool,
    /// The call stack at injection time, innermost frame last.
    pub stack: Vec<Symbol>,
}

impl InjectionRecord {
    /// The intercepted function's name.
    pub fn function_name(&self) -> &'static str {
        self.function.as_str()
    }

    /// The call stack resolved to names, innermost frame last.
    pub fn stack_names(&self) -> Vec<&'static str> {
        self.stack.iter().map(|frame| frame.as_str()).collect()
    }
}

/// The log produced by one fault-injection run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TestLog {
    /// Every injection, in the order it happened.
    pub injections: Vec<InjectionRecord>,
    /// Total number of intercepted calls (with or without injection).
    pub intercepted_calls: u64,
    /// Intercepted-call totals per function, sorted by function *name* so the
    /// listing is reproducible across processes.  This is the per-case
    /// reached-how-far data exploration engines prune on: a planned
    /// nth-call fault whose function shows fewer than `n` calls here was
    /// never reached.
    pub calls_per_function: Vec<(Symbol, u64)>,
}

impl TestLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of injections performed.
    pub fn injection_count(&self) -> usize {
        self.injections.len()
    }

    /// The injections performed on one function.
    pub fn injections_for<'a>(&'a self, function: &str) -> impl Iterator<Item = &'a InjectionRecord> + 'a {
        let symbol = Symbol::lookup(function);
        self.injections.iter().filter(move |r| Some(r.function) == symbol)
    }

    /// How many intercepted calls reached `function` during the run (0 when
    /// the function was never called, or not intercepted at all).
    pub fn calls_to(&self, function: &str) -> u64 {
        let Some(symbol) = Symbol::lookup(function) else {
            return 0;
        };
        self.calls_to_sym(symbol)
    }

    /// Symbol-keyed twin of [`TestLog::calls_to`].
    pub fn calls_to_sym(&self, function: Symbol) -> u64 {
        self.calls_per_function
            .iter()
            .find(|(symbol, _)| *symbol == function)
            .map_or(0, |(_, count)| *count)
    }

    /// Renders the log as the human-readable text file the paper describes
    /// (names are resolved here, on the report path).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# LFI test log: {} intercepted calls, {} injections\n",
            self.intercepted_calls,
            self.injections.len()
        ));
        for (index, record) in self.injections.iter().enumerate() {
            out.push_str(&format!(
                "[{index}] {} call #{}: retval={} errno={} calloriginal={}\n",
                record.function_name(),
                record.call_number,
                record.retval.map_or_else(|| "-".to_owned(), |v| v.to_string()),
                record.errno.map_or_else(|| "-".to_owned(), |v| v.to_string()),
                record.call_original,
            ));
            if !record.side_effects.is_empty() {
                for effect in &record.side_effects {
                    out.push_str(&format!(
                        "      side-effect {} {}@{:#x} = {}\n",
                        effect.kind, effect.module, effect.offset, effect.value
                    ));
                }
            }
            if !record.stack.is_empty() {
                out.push_str(&format!("      stack: {}\n", record.stack_names().join(" <- ")));
            }
        }
        out
    }

    /// Distills a deterministic replay script from the log (§5.2): each
    /// recorded injection becomes a call-count trigger with the exact fault
    /// that was applied, so the test case can be reproduced and attached to a
    /// regression suite.
    pub fn replay_plan(&self) -> Plan {
        let mut plan = Plan::new();
        for record in &self.injections {
            plan.entries.push(PlanEntry {
                function: record.function_name().to_owned(),
                trigger: Trigger::on_call(record.call_number),
                action: FaultAction {
                    retval: record.retval,
                    errno: record.errno,
                    side_effects: record.side_effects.clone(),
                    call_original: record.call_original,
                    arg_modifications: Vec::new(),
                    random_choices: Vec::new(),
                },
            });
        }
        plan
    }
}

impl fmt::Display for TestLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} injections over {} intercepted calls", self.injections.len(), self.intercepted_calls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfi_profile::SideEffect;

    fn sample_log() -> TestLog {
        TestLog {
            injections: vec![
                InjectionRecord {
                    function: Symbol::intern("read"),
                    call_number: 5,
                    retval: Some(-1),
                    errno: Some(4),
                    side_effects: vec![SideEffect::tls("libc.so.6", 0x12fff4, 4)],
                    call_original: false,
                    stack: vec![Symbol::intern("resolver_child"), Symbol::intern("read")],
                },
                InjectionRecord {
                    function: Symbol::intern("write"),
                    call_number: 2,
                    retval: None,
                    errno: None,
                    side_effects: Vec::new(),
                    call_original: true,
                    stack: Vec::new(),
                },
            ],
            intercepted_calls: 40,
            calls_per_function: vec![(Symbol::intern("read"), 30), (Symbol::intern("write"), 10)],
        }
    }

    #[test]
    fn text_rendering_mentions_every_injection() {
        let log = sample_log();
        let text = log.to_text();
        assert!(text.contains("read call #5"));
        assert!(text.contains("write call #2"));
        assert!(text.contains("side-effect"));
        assert!(text.contains("resolver_child <- read"));
        assert!(log.to_string().contains("2 injections"));
        assert_eq!(log.injections[0].function_name(), "read");
        assert_eq!(log.injections[0].stack_names(), vec!["resolver_child", "read"]);
    }

    #[test]
    fn replay_plan_reproduces_each_injection_deterministically() {
        let log = sample_log();
        let replay = log.replay_plan();
        assert_eq!(replay.len(), 2);
        assert_eq!(replay.entries[0].function, "read");
        assert_eq!(replay.entries[0].trigger.inject_at_call, Some(5));
        assert_eq!(replay.entries[0].action.retval, Some(-1));
        assert_eq!(replay.entries[0].action.errno, Some(4));
        assert!(replay.entries[1].action.call_original);
        // The replay plan survives the XML round trip so it can be stored in
        // regression suites.
        assert_eq!(Plan::from_xml(&replay.to_xml()).unwrap(), replay);
    }

    #[test]
    fn per_function_filtering() {
        let log = sample_log();
        assert_eq!(log.injections_for("read").count(), 1);
        assert_eq!(log.injections_for("close_never_seen").count(), 0);
        assert_eq!(log.injection_count(), 2);
    }

    #[test]
    fn per_function_call_totals() {
        let log = sample_log();
        assert_eq!(log.calls_to("read"), 30);
        assert_eq!(log.calls_to("write"), 10);
        assert_eq!(log.calls_to_sym(Symbol::intern("read")), 30);
        assert_eq!(log.calls_to("close_never_seen"), 0);
        assert_eq!(log.calls_to("never-even-interned-\u{1}"), 0);
    }
}
