//! # lfi-controller — the LFI controller (§5 of the paper)
//!
//! The controller takes fault profiles plus a fault scenario and drives the
//! injection: it synthesizes an interceptor library with one stub per
//! intercepted function, shims it in front of the original libraries
//! (`LD_PRELOAD` in the paper, [`lfi_runtime::Process::preload`] here),
//! evaluates triggers on every call, injects return values / errno / side
//! effects / argument modifications, and records a log from which replay
//! scripts are distilled.
//!
//! * [`Injector`] — trigger evaluation and injection engine, plus interceptor
//!   synthesis.
//! * [`TestLog`] / [`InjectionRecord`] — the §5.2 log and its replay plan.
//! * [`run_campaign`] — the driver that runs a workload under each test case
//!   and collects outcomes.
//! * [`stubsrc`] — the generated C stub text, for parity with the paper's
//!   Figure 3 pipeline.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod injector;
mod log;
pub mod stubsrc;

pub use campaign::{run_campaign, CampaignReport, TestCase, TestOutcome};
pub use injector::{Injector, RefinementFinding, INTERCEPTOR_LIBRARY_NAME};
pub use log::{InjectionRecord, TestLog};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Injector>();
        assert_send_sync::<TestLog>();
        assert_send_sync::<CampaignReport>();
        assert_send_sync::<TestCase>();
    }
}
