//! # lfi-controller — the LFI controller (§5 of the paper)
//!
//! The controller takes fault profiles plus a fault scenario and drives the
//! injection: it synthesizes an interceptor library with one stub per
//! intercepted function, shims it in front of the original libraries
//! (`LD_PRELOAD` in the paper, [`lfi_runtime::Process::preload`] here),
//! evaluates triggers on every call, injects return values / errno / side
//! effects / argument modifications, and records a log from which replay
//! scripts are distilled.
//!
//! * [`Injector`] — trigger evaluation and injection engine, plus interceptor
//!   synthesis.
//! * [`TestLog`] / [`InjectionRecord`] — the §5.2 log and its replay plan.
//! * [`Workload`] — the application under test as a first-class object
//!   (§5's start script + workload pair), with the [`FnWorkload`] closure
//!   adapter and the [`WorkloadRegistry`] for named lookup.
//! * [`Campaign`] — the fluent campaign builder: test cases (hand-made or
//!   from a [`lfi_scenario::generator::ScenarioGenerator`]),
//!   [`CampaignObserver`] hooks, an [`ExecutionPolicy`], and parallel
//!   test-case execution over independent processes.  [`Campaign::start`]
//!   returns a streaming [`CampaignRun`] session of [`CaseEvent`]s with a
//!   [`CancelHandle`] and live [`RunProgress`] counters; the blocking
//!   `run*` entry points are thin wrappers over it.
//! * [`stubsrc`] — the generated C stub text, for parity with the paper's
//!   Figure 3 pipeline.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod injector;
mod log;
mod session;
pub mod stubsrc;
mod workload;

pub use campaign::{Campaign, CampaignObserver, CampaignReport, CaseWorkload, ExecutionPolicy, TestCase, TestOutcome};
pub use injector::{Injector, RefinementFinding, INTERCEPTOR_LIBRARY_NAME};
pub use log::{InjectionRecord, TestLog};
pub use session::{CampaignRun, CancelHandle, CaseEvent, ProgressSnapshot, RunProgress, SkipReason};
pub use workload::{FnWorkload, Workload, WorkloadRegistry};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Injector>();
        assert_send_sync::<TestLog>();
        assert_send_sync::<CampaignReport>();
        assert_send_sync::<TestCase>();
        assert_send_sync::<Campaign>();
        assert_send_sync::<ExecutionPolicy>();
        fn assert_send<T: Send>() {}
        // The session handle owns the event receiver, so it is Send (movable
        // to a consumer thread) but not Sync; the cancel handle is both.
        assert_send::<CampaignRun>();
        assert_send_sync::<CancelHandle>();
        assert_send_sync::<CaseEvent>();
        assert_send_sync::<WorkloadRegistry>();
    }
}
